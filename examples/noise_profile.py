#!/usr/bin/env python3
"""Selfish-Detour noise study (the Fig. 3 experiment, interactively).

Runs the detour sampler against every Covirt configuration and prints
the detour histograms, then demonstrates what the profile would look
like if interrupt virtualization *did* add periodic work — the negative
result that makes Fig. 3 meaningful.
"""

from repro.harness.experiments import run_fig3_selfish
from repro.hw.clock import CYCLES_PER_SECOND
from repro.perf.sampling import DetourSampler, NoiseSource
from repro.workloads.selfish import SelfishDetour

BINS_US = [0.5, 1.0, 2.0, 5.0, 20.0]


def main() -> None:
    print(run_fig3_selfish(duration_seconds=10.0).render())

    print("\nDetour histograms (10 s run):")
    workload = SelfishDetour(duration_seconds=10.0)
    for label in ("native", "covirt-none", "covirt-mem", "covirt-mem+ipi"):
        trace = workload.sample(label)
        hist = trace.histogram(BINS_US)
        cells = "  ".join(f"{k}:{v}" for k, v in hist.items() if v)
        print(f"  {label:15s} {cells}")

    print("\nCounter-factual: a hypervisor that polled its command queue"
          " at 1 kHz instead of using NMI doorbells:")
    sampler = DetourSampler()
    bad = sampler.run(
        10 * CYCLES_PER_SECOND,
        [
            NoiseSource("kitten-tick", 170_000_000, 2_250),
            NoiseSource("hypervisor-poll", 1_700_000, 2_000),
        ],
    )
    good = workload.sample("covirt-mem+ipi")
    print(f"  covirt (event-driven): {good.count:6d} detours, "
          f"{good.noise_fraction * 100:.5f}% of cycles lost")
    print(f"  polling hypervisor:    {bad.count:6d} detours, "
          f"{bad.noise_fraction * 100:.5f}% of cycles lost")

    print("\nContext: the same loop on a general-purpose Linux core"
          " (250 Hz tick, RCU callbacks, kworkers):")
    linux = sampler.run(
        10 * CYCLES_PER_SECOND,
        [
            NoiseSource("linux-tick", CYCLES_PER_SECOND // 250, 6_000),
            NoiseSource("rcu+kworker", 23_000_000, 30_000),
            NoiseSource("irq-balance", 970_000_000, 120_000),
        ],
    )
    print(f"  linux host core:       {linux.count:6d} detours, "
          f"{linux.noise_fraction * 100:.5f}% of cycles lost "
          f"(~{linux.count // max(good.count, 1)}x the LWK's events)")
    print("\nCovirt's asynchronous, NMI-signalled design adds no periodic"
          " noise sources — a protected LWK keeps its LWK noise profile,"
          " which is the whole reason these kernels exist.")


if __name__ == "__main__":
    main()
