#!/usr/bin/env python3
"""The Section-V bug gallery: every fault class the paper discusses,
each injected twice — into a native enclave and into a Covirt enclave —
so the blast radius difference is visible side by side.

Faults covered:
  1. stale XEMEM segment   (the paper's large-scale crash anecdote)
  2. memory-map misconfiguration (access outside the enclave)
  3. errant IPI             (spoofed interrupt at another OS/R)
  4. sensitive MSR write    (IA32_APIC_BASE)
  5. host-owned I/O port write (RTC index)
  6. double fault           (abort-class exception)
"""

from repro import CovirtConfig, CovirtEnvironment
from repro.core.faults import EnclaveFaultError
from repro.harness.env import Layout
from repro.hw.interrupts import ExceptionVector
from repro.hw.ioports import RTC_INDEX
from repro.hw.msr import MSR
from repro.kitten.syscalls import Syscall
from repro.linuxhost.host import HostPanic

GiB = 1 << 30
MiB = 1 << 20
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def outcome(env, enclave, what_happened: str) -> None:
    print(f"  outcome: {what_happened}")
    print(f"  enclave: {enclave.state.value:10s}  host alive: {env.host.alive}"
          f"  host integrity: {'ok' if env.host.verify_integrity() else 'CORRUPTED'}")


def stale_segment(env, protected: bool):
    config = CovirtConfig.memory_only() if protected else None
    owner = env.launch(LAYOUT, config, name="owner")
    attacher = env.launch(LAYOUT, config, name="attacher")
    task = owner.kernel.spawn("exporter", mem_bytes=MiB)
    segid = owner.kernel.syscall(
        task, Syscall.XEMEM_MAKE, "shared", task.slices[0].start, MiB
    )
    env.mcp.xemem.attach(attacher.enclave_id, segid)
    addr = task.slices[0].start
    core = attacher.assignment.core_ids[0]
    attacher.kernel.touch(core, addr, 8)  # warm: the segment works
    # The buggy cleanup: host reclaims, attacher's memmap stays stale.
    env.mcp.xemem.force_remove_buggy(segid)
    try:
        attacher.kernel.touch(core, addr, 8, write=True)
        outcome(env, attacher,
                "stale access WROTE INTO RECLAIMED HOST MEMORY (silent corruption)")
    except EnclaveFaultError as fault:
        outcome(env, attacher, f"terminated cleanly: {fault.fault.kind.value}")


def wild_access(env, protected: bool):
    config = CovirtConfig.memory_only() if protected else None
    enclave = env.launch(LAYOUT, config, name="wild")
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.write(bsp, env.machine.topology.zones[1].mem_start
                           + 16 * 4096, b"\x00" * 8)
        outcome(env, enclave, "wild write LANDED ON A HOST CANARY PAGE")
    except EnclaveFaultError as fault:
        outcome(env, enclave, f"terminated cleanly: {fault.fault.kind.value}")


def errant_ipi(env, protected: bool):
    config = CovirtConfig.memory_ipi() if protected else None
    attacker = env.launch(LAYOUT, config, name="attacker")
    victim = env.launch(LAYOUT, None, name="victim")
    vcore = victim.assignment.core_ids[0]
    delivered = attacker.port.send_ipi(
        attacker.assignment.core_ids[0], vcore, 150
    )
    spoofed = 150 in {i.vector for i in victim.kernel.irq_log[vcore]}
    if spoofed:
        outcome(env, attacker, "victim RECEIVED A SPOOFED INTERRUPT")
    else:
        ctx = attacker.virt_context
        outcome(env, attacker,
                f"IPI dropped by whitelist ({ctx.whitelist.dropped[-1].reason})")


def msr_abuse(env, protected: bool):
    config = CovirtConfig.full() if protected else None
    enclave = env.launch(LAYOUT, config, name="msr")
    bsp = enclave.assignment.core_ids[0]
    enclave.port.wrmsr(bsp, MSR.IA32_APIC_BASE, 0xDEAD000)
    landed = env.machine.core(bsp).msrs.peek(MSR.IA32_APIC_BASE) == 0xDEAD000
    outcome(env, enclave,
            "IA32_APIC_BASE CLOBBERED (interrupt routing destroyed)"
            if landed else "sensitive WRMSR denied and logged")


def port_abuse(env, protected: bool):
    config = CovirtConfig.full() if protected else None
    enclave = env.launch(LAYOUT, config, name="io")
    bsp = enclave.assignment.core_ids[0]
    before = env.machine.ioports.peek(RTC_INDEX)
    enclave.port.io_out(bsp, RTC_INDEX, 0x8F)
    landed = env.machine.ioports.peek(RTC_INDEX) != before
    outcome(env, enclave,
            "host RTC index register CLOBBERED" if landed
            else "OUT to host-owned port swallowed")


def double_fault(env, protected: bool):
    config = CovirtConfig.full() if protected else None
    enclave = env.launch(LAYOUT, config, name="df")
    bsp = enclave.assignment.core_ids[0]
    try:
        enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
        outcome(env, enclave, "nothing happened (?)")
    except EnclaveFaultError as fault:
        outcome(env, enclave, f"abort contained: {fault.fault.kind.value}")
    except HostPanic as panic:
        print(f"  outcome: NODE DOWN — {panic}")
        print(f"  enclave: -          host alive: {env.host.alive}")


SCENARIOS = [
    ("stale XEMEM segment", stale_segment),
    ("memory-map misconfiguration", wild_access),
    ("errant IPI", errant_ipi),
    ("sensitive MSR write", msr_abuse),
    ("host-owned I/O port write", port_abuse),
    ("double fault", double_fault),
]


def main() -> None:
    for name, scenario in SCENARIOS:
        banner(f"{name} — WITHOUT Covirt")
        scenario(CovirtEnvironment(), protected=False)
        banner(f"{name} — WITH Covirt")
        scenario(CovirtEnvironment(), protected=True)
    print("\nEvery fault class: native = corruption or node death;"
          " Covirt = one enclave terminated, node intact.")


if __name__ == "__main__":
    main()
