#!/usr/bin/env python3
"""Porting a second co-kernel framework under Covirt.

The paper closes Section III-A with the claim that Covirt "represents a
unique capability that could be adapted to suit the full range of
co-kernel approaches", and Section V describes how developing new ports
under Covirt turned months into weeks because crashes were contained
from day one.

This example is that story: the IHK/McKernel framework — proxy
processes, address-space replication, OS instances instead of enclaves
— is brought up under Covirt protection via the same three seams Pisces
uses (boot protocol, control hooks, ioctl ABI).  The port's
"development bugs" (a wild early-boot pointer, a replica desync) are
contained, and the crash dossier shows what the developer gets to work
with.
"""

from repro import CovirtConfig, CovirtEnvironment
from repro.core.faults import EnclaveFaultError
from repro.ihk import IhkModule
from repro.ihk.module import IhkIoctl
from repro.kitten.syscalls import Syscall

GiB = 1 << 30
MiB = 1 << 20


def main() -> None:
    env = CovirtEnvironment()
    # The one-line port: interpose Covirt on the new framework.
    ihk = IhkModule(env.machine, env.host)
    env.controller.interpose_on(ihk)
    print("IHK module loaded; Covirt interposed on its boot/control paths\n")

    # -- a protected McKernel instance, end to end -----------------------
    os_index = ihk.ioctl(IhkIoctl.RESERVE, ({0: 1, 1: 1}, {0: GiB, 1: GiB}))
    mcos = env.controller.launch_via(
        lambda: ihk.ioctl(IhkIoctl.BOOT, os_index), CovirtConfig.memory_only()
    )
    print(f"mcos{os_index} booted: {mcos.kernel.console[0]}")
    print(f"covirt status: {ihk.ioctl(200, mcos.enclave_id)}\n")

    # Proxy-process delegation works under protection.
    kernel = mcos.kernel
    process = kernel.spawn_process("lwk-app", mem_bytes=MiB)
    fd = kernel.syscall(process, Syscall.OPEN, "/etc/hostname")
    data = kernel.syscall(process, Syscall.READ, fd, 64)
    print(f"delegated open/read via proxy pid {process.proxy.pid}: "
          f"{data.decode().strip()!r} "
          f"({process.proxy.delegations} delegations)\n")

    # -- the porting-era bug: an early wild pointer ------------------------
    print("simulating a porting bug: McKernel dereferences an unmapped gpa...")
    try:
        kernel.touch(mcos.assignment.core_ids[0], 60 * GiB, 8)
    except Exception:
        pass
    try:
        mcos.port.read(mcos.assignment.core_ids[0], 60 * GiB, 8)
    except EnclaveFaultError as fault:
        print(f"contained: {fault}\n")

    print(ihk.ioctl(203, mcos.enclave_id).render())  # the dossier
    print(f"\nhost alive: {env.host.alive}; machine pristine: "
          f"{env.host.is_pristine()}")
    print("The developer keeps working on real hardware — no node reboot,"
          " no lost state.")


if __name__ == "__main__":
    main()
