#!/usr/bin/env python3
"""Errant-IPI filtering under load.

A misbehaving co-kernel sprays IPIs across the whole machine — at host
cores, at another enclave, at unallocated vectors.  Without Covirt,
every one of them lands (spoofed interrupts, scrambled device-driver
state).  With IPI protection, only the legitimately granted channel
gets through, every drop is logged with enough context to debug, and
the enclave keeps running (errant IPIs are dropped, not fatal).
"""

from repro import CovirtConfig, CovirtEnvironment
from repro.harness.env import Layout
from repro.hobbes.registry import FIRST_DYNAMIC_VECTOR

GiB = 1 << 30
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


def spray(env, attacker, targets, vectors):
    """Fire an IPI at every (core, vector) pair; return delivery count."""
    src = attacker.assignment.core_ids[0]
    delivered = 0
    for dest in targets:
        for vector in vectors:
            if attacker.port.send_ipi(src, dest, vector):
                delivered += 1
    return delivered


def main() -> None:
    for protected in (False, True):
        env = CovirtEnvironment()
        mode = "WITH Covirt IPI protection" if protected else "WITHOUT Covirt"
        config = CovirtConfig.memory_ipi() if protected else None
        attacker = env.launch(LAYOUT, config, "attacker")
        bystander = env.launch(LAYOUT, None, "bystander")

        # One legitimate channel: attacker may signal the bystander's BSP.
        legit_core = bystander.assignment.core_ids[0]
        grant = env.mcp.vectors.allocate(
            dest_core=legit_core,
            dest_enclave_id=bystander.enclave_id,
            allowed_senders={attacker.enclave_id},
            purpose="legitimate channel",
        )

        host_cores = sorted(env.host.online_cores)[:4]
        vectors = [FIRST_DYNAMIC_VECTOR + i * 16 for i in range(8)]
        targets = host_cores + list(bystander.assignment.core_ids)

        sent = len(targets) * len(vectors) + 1
        delivered = spray(env, attacker, targets, vectors)
        # ... plus the one legitimate doorbell:
        legit_ok = attacker.port.send_ipi(
            attacker.assignment.core_ids[0], legit_core, grant.vector
        )
        delivered += int(legit_ok)

        print(f"\n=== {mode} ===")
        print(f"IPIs sent: {sent}, delivered: {delivered}, "
              f"legitimate doorbell delivered: {legit_ok}")
        spoofed = [
            irq.vector
            for irq in bystander.kernel.irq_log[legit_core]
            if irq.vector != grant.vector
        ]
        print(f"spoofed interrupts at the bystander: {len(spoofed)}")
        if protected:
            ctx = attacker.virt_context
            counters = ctx.aggregate_counters()
            print(f"whitelist drops logged: {len(ctx.whitelist.dropped)} "
                  f"(forwarded: {counters.ipis_forwarded})")
            first = ctx.whitelist.dropped[0]
            print(f"  first drop: core {first.msg.dest_core} vector "
                  f"{first.msg.vector} @ tsc {first.tsc} — {first.reason}")
            print(f"attacker still running: {attacker.is_running} "
                  "(errant IPIs are dropped, not fatal)")
        assert legit_ok, "the granted channel must always work"


if __name__ == "__main__":
    main()
