#!/usr/bin/env python3
"""A Hobbes-style composed application: simulation + analytics.

This is the workload pattern that motivates co-kernels (Fig. 1a of the
paper): a bulk-synchronous simulation runs in one LWK enclave, an
analytics consumer in another, coupled by XEMEM shared memory and
IPI doorbells, with heavyweight I/O delegated to the host Linux via
system-call forwarding.  Both enclaves run under Covirt, and the whole
pipeline works unchanged — the transparency claim, demonstrated.

The simulation itself is real: a small heat-diffusion stencil whose
frames are written into the shared segment; the analytics side computes
statistics over each frame it is signalled about.
"""

import numpy as np

from repro import CovirtConfig, CovirtEnvironment
from repro.harness.env import Layout
from repro.kitten.syscalls import Syscall

GiB = 1 << 30
MiB = 1 << 20

FRAME_CELLS = 64 * 64
FRAME_BYTES = FRAME_CELLS * 8
FRAMES = 8


def main() -> None:
    env = CovirtEnvironment()
    sim = env.launch(
        Layout("sim", {0: 2}, {0: 2 * GiB}), CovirtConfig.memory_ipi(), "sim"
    )
    analytics = env.launch(
        Layout("analytics", {1: 2}, {1: 2 * GiB}),
        CovirtConfig.memory_ipi(),
        "analytics",
    )
    print(f"simulation enclave {sim.enclave_id} on cores "
          f"{sim.assignment.core_ids}; analytics enclave "
          f"{analytics.enclave_id} on cores {analytics.assignment.core_ids}")

    # -- wire the pipeline up through the Hobbes runtime ------------------
    producer = sim.kernel.spawn("heat-sim", mem_bytes=2 * MiB)
    consumer = analytics.kernel.spawn("stats", mem_bytes=MiB)
    frame_addr = producer.slices[0].start
    segid = sim.kernel.syscall(
        producer, Syscall.XEMEM_MAKE, "frames", frame_addr, 2 * MiB
    )
    attach_addr = analytics.kernel.syscall(
        consumer, Syscall.XEMEM_ATTACH, segid
    )
    acore = analytics.assignment.core_ids[0]
    score = sim.assignment.core_ids[0]
    doorbell = env.mcp.vectors.allocate(
        dest_core=acore,
        dest_enclave_id=analytics.enclave_id,
        allowed_senders={sim.enclave_id},
        purpose="frame-ready doorbell",
    )
    frames_seen = []
    analytics.kernel.register_irq_handler(
        doorbell.vector,
        lambda core, irq: frames_seen.append(irq.source_core),
        "frame-ready",
    )
    print(f"segment {segid:#x} attached at {attach_addr:#x}; doorbell "
          f"vector {doorbell.vector} granted")

    # -- run the composed application ----------------------------------
    rng = np.random.default_rng(0)
    field = rng.random((64, 64))
    stats = []
    for frame in range(FRAMES):
        # Simulation step (explicit heat diffusion).
        for _ in range(10):
            field = field + 0.1 * (
                np.roll(field, 1, 0) + np.roll(field, -1, 0)
                + np.roll(field, 1, 1) + np.roll(field, -1, 1)
                - 4 * field
            )
        # Publish the frame through the *protected* port.
        sim.port.write(score, frame_addr, field.tobytes())
        sim.port.send_ipi(score, acore, doorbell.vector)
        # Analytics wakes on the doorbell and reads the shared frame.
        raw = analytics.port.read(acore, attach_addr, FRAME_BYTES)
        data = np.frombuffer(raw, dtype=np.float64)
        stats.append((float(data.mean()), float(data.std())))

    print(f"frames produced: {FRAMES}, doorbells received: {len(frames_seen)}")
    for i, (mean, std) in enumerate(stats):
        print(f"  frame {i}: mean={mean:.6f} std={std:.6f}")
    # Diffusion conserves the mean and shrinks the variance.
    assert abs(stats[0][0] - stats[-1][0]) < 1e-9
    assert stats[-1][1] < stats[0][1]
    print("analytics verified: mean conserved, variance decreasing")

    # -- analytics archives results via syscall forwarding ----------------
    fd = analytics.kernel.syscall(consumer, Syscall.OPEN, "/etc/hostname")
    node = analytics.kernel.syscall(consumer, Syscall.READ, fd, 64)
    analytics.kernel.syscall(consumer, Syscall.CLOSE, fd)
    print(f"forwarded I/O to host {node.decode().strip()!r} "
          f"({env.mcp.forwarder.stats.round_trips} round trips)")

    counters = sim.virt_context.aggregate_counters()
    print(f"covirt cost of the whole pipeline on the sim enclave: "
          f"{counters.total_exits} exits, "
          f"{counters.ipis_forwarded} IPIs forwarded, "
          f"{counters.ipis_filtered} filtered")

    env.mcp.shutdown_enclave(sim.enclave_id)
    env.mcp.shutdown_enclave(analytics.enclave_id)
    print(f"teardown clean: {env.host.owner_summary()}")


if __name__ == "__main__":
    main()
