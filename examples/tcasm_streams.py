#!/usr/bin/env python3
"""Versioned data streams between composed components.

Combines the two high-level Hobbes facilities this library provides on
top of XEMEM:

* the **composition API** places a three-stage application —
  simulation → filter → analytics — across protected enclaves
  (adapting the topology if the machine is short on cores);
* a **TCASM-style versioned stream** carries snapshots between stages:
  the producer publishes whole versions, consumers always read
  consistent data, nobody blocks anybody.

Then the simulation stage crashes mid-run, and the pipeline degrades
the way the paper promises: one enclave dies, everything else —
including the last published version of the data — survives.
"""

import numpy as np

from repro import CovirtConfig, CovirtEnvironment
from repro.core.faults import EnclaveFaultError
from repro.hobbes.composition import ComponentSpec, Composition
from repro.hobbes.tcasm import StreamReader, VersionedStream

GiB = 1 << 30
MiB = 1 << 20


def main() -> None:
    env = CovirtEnvironment()
    protection = CovirtConfig.memory_ipi()
    app = (
        Composition("weather")
        .add_component(ComponentSpec(
            "sim", {0: 2}, {0: 2 * GiB}, task_mem_bytes=4 * MiB,
            protection=protection))
        .add_component(ComponentSpec(
            "filter", {1: 1}, {1: GiB}, task_mem_bytes=4 * MiB,
            protection=protection))
        .add_component(ComponentSpec(
            "analytics", {1: 1}, {1: GiB}, task_mem_bytes=MiB,
            protection=protection))
    )
    deployed = app.deploy(env.controller)
    print("placement:", {
        name: f"enclave {p.enclave.enclave_id} cores {p.enclave.assignment.core_ids}"
        for name, p in deployed.placements.items()
    })

    # A versioned stream from sim, read independently by both consumers.
    sim = deployed.enclave_of("sim")
    stream = VersionedStream(
        env.mcp, sim, deployed.task_of("sim"), "state", slot_bytes=128 * 1024
    )
    readers = {
        name: StreamReader(
            env.mcp, deployed.enclave_of(name), deployed.task_of(name), "state"
        )
        for name in ("filter", "analytics")
    }

    rng = np.random.default_rng(1)
    state = rng.random(4096)
    latest: dict[str, np.ndarray] = {}
    for step in range(6):
        state = np.convolve(state, [0.25, 0.5, 0.25], mode="same")
        stream.publish(state.astype(np.float32).tobytes())
        for name, reader in readers.items():
            version, payload = reader.read_latest()
            data = np.frombuffer(payload, dtype=np.float32)
            latest[name] = data.copy()  # consumers own their snapshots
            print(f"  step {step}: {name} read v{version} "
                  f"(mean={data.mean():.4f}, std={data.std():.4f})")

    # The simulation goes off the rails.
    print("\nsimulation dereferences a stale pointer...")
    try:
        sim.port.read(sim.assignment.core_ids[0], 60 * GiB, 8)
    except EnclaveFaultError as fault:
        print(f"contained: {fault}")
    print("component states:", deployed.component_states())

    # The MCP severed every dependency on the dead producer: consumers
    # were notified, their mappings revoked — and the snapshots they
    # already consumed remain theirs.
    for note in env.mcp.notifications:
        print(f"  notification → enclave {note.enclave_id}: {note.what}")
    for name, data in latest.items():
        enclave = deployed.enclave_of(name)
        print(f"{name}: enclave {enclave.state.value}, last snapshot intact "
              f"(mean={data.mean():.4f}, {data.nbytes} bytes)")
    print(f"host alive: {env.host.alive}; torn reads prevented: "
          f"{sum(r.stats.torn_reads_prevented for r in readers.values())}")


if __name__ == "__main__":
    main()
