#!/usr/bin/env python3
"""Quickstart: boot a protected co-kernel enclave, run a workload,
contain a fault.

This walks the full arc of the paper in ~60 lines of API:

1. build the simulated testbed (dual-socket, 2 NUMA zones, 64 GiB);
2. boot a Covirt-protected Kitten enclave and a native one;
3. run HPCG on both and compare the overhead (~1%);
4. inject the classic stale-mapping bug into the protected enclave and
   watch Covirt terminate it while the host and the native enclave
   keep running.
"""

from repro import CovirtConfig, CovirtEnvironment
from repro.core.faults import EnclaveFaultError
from repro.harness.env import EVALUATION_LAYOUTS
from repro.workloads import Hpcg

GiB = 1 << 30


def main() -> None:
    env = CovirtEnvironment()
    layout = EVALUATION_LAYOUTS[1]  # 4 cores across 2 NUMA zones
    print(f"machine: {env.machine}")

    protected = env.launch(layout, CovirtConfig.memory_ipi(), name="protected")
    native = env.launch(layout, None, name="native")
    print(f"booted enclave {protected.enclave_id} (Covirt mem+ipi) "
          f"and enclave {native.enclave_id} (native)")

    status = env.mcp.kmod.ioctl(200, protected.enclave_id)  # COVIRT_STATUS
    print(f"covirt status: ipi_mode={status['ipi_mode']}, "
          f"ept={status['ept_mapped_bytes'] >> 30} GiB identity-mapped")

    r_protected = env.engine.run(Hpcg(), protected)
    r_native = env.engine.run(Hpcg(), native)
    print(f"HPCG: native {r_native.fom:.2f} GFLOP/s, "
          f"protected {r_protected.fom:.2f} GFLOP/s "
          f"({r_protected.overhead_vs(r_native) * 100:+.2f}%)")

    # The bug: a cleanup path forgets to retire a mapping, so the
    # co-kernel believes it still owns memory the host reclaimed.
    kernel = protected.kernel
    kernel.inject_stale_mapping(63 * GiB, 1 << 20)  # stale belief about host memory
    bsp = protected.assignment.core_ids[0]
    try:
        kernel.touch(bsp, 63 * GiB, 8)
        raise SystemExit("BUG: the access should have been contained")
    except EnclaveFaultError as fault:
        print(f"contained: {fault}")

    print(f"protected enclave: {protected.state.value}")
    print(f"native enclave:    {native.state.value}")
    print(f"host alive:        {env.host.alive} "
          f"(integrity {'ok' if env.host.verify_integrity() else 'BROKEN'})")
    print(f"resources reclaimed: {env.host.owner_summary()}")


if __name__ == "__main__":
    main()
