"""MTTR for supervised enclave recovery across the fault gallery.

Measures detection→RUNNING recovery time (in simulated cycles) for each
terminating fault class under restart-with-backoff, plus the steady-state
checkpoint overhead the supervision costs while nothing is failing.
"""

from __future__ import annotations

from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig, Feature
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.interrupts import ExceptionVector
from repro.recovery import RecoveryMetrics, RecoveryPhase, RestartWithBackoff

GiB = 1 << 30
LAYOUT = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})


def _policy() -> RestartWithBackoff:
    return RestartWithBackoff(base_delay_cycles=100_000, jitter_fraction=0.0)


def _inject_wild_read(env: CovirtEnvironment, svc) -> None:
    bsp = svc.enclave.assignment.core_ids[0]
    try:
        svc.enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass


def _inject_double_fault(env: CovirtEnvironment, svc) -> None:
    bsp = svc.enclave.assignment.core_ids[0]
    try:
        svc.enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
    except EnclaveFaultError:
        pass


SCENARIOS = [
    ("ept_violation", CovirtConfig.full(), _inject_wild_read),
    ("abort_exception", CovirtConfig.full(), _inject_double_fault),
    ("triple_fault", CovirtConfig(features=Feature.MEMORY), _inject_double_fault),
]


def bench_target() -> RecoveryMetrics:
    combined = RecoveryMetrics()
    for name, config, inject in SCENARIOS:
        env = CovirtEnvironment()
        svc = env.launch_supervised(LAYOUT, config, _policy(), name=name)
        for _ in range(3):
            inject(env, svc)
            assert svc.phase is RecoveryPhase.RUNNING, name
        for rec in env.recovery.metrics.records:
            combined.record(rec)
        combined.counters.checkpoints_taken += (
            env.recovery.metrics.counters.checkpoints_taken
        )
        combined.counters.checkpoint_cycles += (
            env.recovery.metrics.counters.checkpoint_cycles
        )
    return combined


def test_recovery_mttr(benchmark, show):
    metrics = bench_target()
    show(metrics.render())
    kinds = metrics.by_fault_kind()
    assert set(kinds) == {"ept_violation", "abort_exception", "triple_fault"}
    for summary in kinds.values():
        assert summary.recovered == summary.attempts == 3
        assert summary.mean_mttr_cycles > 0
    benchmark(bench_target)
