#!/usr/bin/env python3
"""Perf-regression sentinel, executable form.

Thin wrapper over :mod:`repro.obs.sentinel` so CI (and developers who
live in ``benchmarks/``) can run the comparison without the package
entry point::

    PYTHONPATH=src python benchmarks/sentinel.py BASELINE_DIR CANDIDATE_DIR \
        [--tolerances benchmarks/tolerances.json] [--out report.md]

Exit status: 0 in-tolerance, 1 regression, 2 usage/configuration error.
The same logic backs ``python -m repro bench-compare``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import bench_compare_main  # noqa: E402


if __name__ == "__main__":
    sys.exit(bench_compare_main(sys.argv[1:]))
