"""Sensitivity of the headline result to the cost-model calibration."""

from repro.harness.experiments import run_sensitivity


def bench_target():
    return run_sensitivity()


def test_sensitivity(benchmark, show):
    result = bench_target()
    show(result.render())
    assert all(row[-1] == "yes" for row in result.rows)
    benchmark(bench_target)
