"""Fig. 7: HPCG scaling over CPU-core/NUMA-zone layouts."""

from repro.harness.experiments import run_fig7_hpcg


def bench_target():
    return run_fig7_hpcg()


def test_fig7_hpcg(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 16
    benchmark(bench_target)
