"""Ablation: asynchronous (command-queue) vs synchronous config updates."""

from repro.harness.experiments import run_ablation_async_config


def bench_target():
    return run_ablation_async_config(attaches=16)


def test_ablation_async_config(benchmark, show):
    result = bench_target()
    show(result.render())
    async_row, sync_row = result.rows
    # The synchronous controller interrupts guests more.
    assert sync_row[3] > async_row[3]
    benchmark(bench_target)
