#!/usr/bin/env python3
"""Telemetry-plane overhead microbenchmark: ``BENCH_telemetry.json``.

Pins the zero-overhead contract the serving daemon's telemetry plane
makes: instrumentation left in hot simulation loops must cost (almost)
nothing when nobody is watching.  Four modes run the same hot
span-close + counter-inc loop:

* ``off``          — the observability bundle is quiesced
  (:meth:`repro.obs.Observability.quiesce`): the span tracer's
  ``enabled`` gate is clear and no metric hooks are installed, so each
  op collapses to a predicate test plus a counter bump;
* ``flight``       — the default serving configuration: the flight
  recorder observes every span close and metric delta (**the
  denominator**: every ratio is relative to this mode);
* ``subscribed``   — a telemetry subscriber is attached through a real
  :class:`~repro.serve.telemetry.TelemetryHub` tap, so every op also
  builds and enqueues wire frames;
* ``slow-subscriber`` — same, but the subscriber's bounded queue is
  tiny, so most frames drop.  The drop count is **deterministic**
  (frames generated minus queue capacity) — drops are accounted, never
  a stall.

The regression sentinel is ``ratio_vs_flight``: wall-clock ns/op is
machine-speed noise, but the *ratio* between modes is stable, and a
broken fast-path gate moves ``off`` from ~0.1x to ~1x — far outside
the tolerance band in ``benchmarks/tolerances.json``, so
``repro bench-compare`` trips.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
        [--quick] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.clock import Clock
from repro.obs import MetricsRegistry, Observability
from repro.obs.scenario import protection_probe
from repro.obs.schema import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    validate_bench,
)
from repro.serve.telemetry import MAX_QUEUE_FRAMES, TelemetryHub

DEFAULT_SEED = 0xC0517

#: Ops per timed loop.  Sized so the ``subscribed`` mode's frame volume
#: (2 frames per op, warmup included, + hello) stays inside one
#: maximum-size subscriber queue — the subscribed row measures tap
#: cost, not drop cost.
OPS_FULL = 6_000
OPS_QUICK = 2_000

#: The slow subscriber's queue; everything beyond it must drop.
SLOW_QUEUE = 256


def _hot_loop(obs: Observability, ops: int) -> float:
    """The measured op: one completed span + one counter increment —
    the instrumentation shape of the simulator's exit path.  Returns
    ns/op (wall clock)."""
    tracer = obs.tracer
    counter = obs.metrics.counter("bench.telemetry_ops", "bench ops")
    # Warm caches and code paths outside the timed window.
    for i in range(ops // 10 + 1):
        tracer.complete("bench.warm", i, i + 10, track="bench")
        counter.inc(kind="warm")
    t0 = time.perf_counter_ns()
    for i in range(ops):
        tracer.complete("bench.op", i, i + 10, category="bench", track="bench")
        counter.inc(kind="op")
    elapsed = time.perf_counter_ns() - t0
    return elapsed / ops


def _fresh_obs() -> Observability:
    return Observability(Clock())


def measure_rows(quick: bool) -> list[dict[str, Any]]:
    """One row per mode; ``ratio_vs_flight`` is the sentinel metric."""
    ops = OPS_QUICK if quick else OPS_FULL

    timings: dict[str, float] = {}
    frame_stats: dict[str, dict[str, int]] = {}
    elapsed_s: dict[str, float] = {}

    # -- off: quiesced bundle, the fast path ----------------------------
    obs = _fresh_obs()
    obs.quiesce()
    t0 = time.perf_counter()
    timings["off"] = _hot_loop(obs, ops)
    elapsed_s["off"] = time.perf_counter() - t0
    assert len(obs.tracer) == 0, "quiesced tracer must record nothing"

    # -- flight: the default serving configuration (denominator) --------
    obs = _fresh_obs()
    t0 = time.perf_counter()
    timings["flight"] = _hot_loop(obs, ops)
    elapsed_s["flight"] = time.perf_counter() - t0

    # -- subscribed / slow-subscriber: a real hub tap -------------------
    for mode, max_queue in (
        ("subscribed", MAX_QUEUE_FRAMES),  # roomy: no drops, pure tap cost
        ("slow-subscriber", SLOW_QUEUE),
    ):
        obs = _fresh_obs()
        hub = TelemetryHub(MetricsRegistry())
        hub.subscribe(None, max_queue=max_queue)
        hub.attach_obs("bench", obs, tenant="bench", session_id="bench-0")
        t0 = time.perf_counter()
        timings[mode] = _hot_loop(obs, ops)
        elapsed_s[mode] = time.perf_counter() - t0
        stats = hub.unsubscribe(None)
        frame_stats[mode] = {
            "frames": stats["enqueued"] + stats["dropped"],
            "dropped": stats["dropped"],
        }

    rows = []
    for mode in ("off", "flight", "subscribed", "slow-subscriber"):
        frames = frame_stats.get(mode, {}).get("frames", 0)
        dropped = frame_stats.get(mode, {}).get("dropped", 0)
        rows.append(
            {
                "mode": mode,
                "ops": ops,
                "ns_per_op": round(timings[mode], 1),
                "ratio_vs_flight": round(
                    timings[mode] / timings["flight"], 4
                ),
                "frames": frames,
                "frames_per_sec": round(frames / elapsed_s[mode], 1)
                if frames
                else 0.0,
                "dropped": dropped,
                "drop_rate": round(dropped / frames, 4) if frames else 0.0,
            }
        )
    return rows


def build_doc(quick: bool, seed: int = DEFAULT_SEED) -> dict[str, Any]:
    """The standalone covirt-bench artifact (no ``wall_seconds``: the
    rows carry wall-clock figures already, and the runner stamps its
    own when it wraps this scenario)."""
    rows = measure_rows(quick)
    # A probe env supplies the simulator-side schema fields (exit
    # counts, populated histograms) every covirt-bench doc must carry.
    env = CovirtEnvironment()
    enclave = env.launch(
        Layout("probe-1c/1n", {0: 1}, {0: 256 << 20}),
        CovirtConfig.full(),
        name="probe",
    )
    protection_probe(env, enclave)
    env.teardown(enclave)
    registry = env.machine.obs.metrics
    return {
        "schema": BENCH_SCHEMA_NAME,
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "telemetry",
        "title": "Telemetry-plane overhead: off / flight / subscribed",
        "quick": quick,
        "seed": seed,
        "sim_cycles": max(
            env.machine.clock.now,
            max(
                env.machine.core(i).read_tsc()
                for i in range(env.machine.num_cores)
            ),
        ),
        "exits_by_reason": registry.exit_counts_by_reason(),
        "metrics": registry.to_dict(),
        "results": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark telemetry-plane overhead; "
        "write BENCH_telemetry.json."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller op counts for the CI smoke job",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_telemetry.json")
    )
    parser.add_argument(
        "--seed", type=lambda s: int(s, 0), default=DEFAULT_SEED
    )
    args = parser.parse_args(argv)

    doc = build_doc(args.quick, args.seed)
    problems = validate_bench(doc)
    path = Path(args.out)
    path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
    by_mode = {row["mode"]: row for row in doc["results"]}
    print(
        f"[telemetry] {path.name}: off {by_mode['off']['ratio_vs_flight']}x, "
        f"subscribed {by_mode['subscribed']['ratio_vs_flight']}x vs flight "
        f"({by_mode['flight']['ns_per_op']} ns/op); "
        f"slow-subscriber dropped {by_mode['slow-subscriber']['dropped']}"
        f"/{by_mode['slow-subscriber']['frames']} frames"
    )
    if problems:
        for problem in problems:
            print(f"[telemetry]   INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
