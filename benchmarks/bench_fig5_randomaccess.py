"""Fig. 5b: RandomAccess across Covirt configurations."""

from repro.harness.experiments import run_fig5_randomaccess


def bench_target():
    return run_fig5_randomaccess()


def test_fig5_randomaccess(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 4
    benchmark(bench_target)
