"""Fig. 6: MiniFE scaling over CPU-core/NUMA-zone layouts."""

from repro.harness.experiments import run_fig6_minife


def bench_target():
    return run_fig6_minife()


def test_fig6_minife(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 16  # 4 layouts × 4 configs
    benchmark(bench_target)
