"""Fig. 4: XEMEM attach delay vs region size, Covirt on/off."""

from repro.harness.experiments import run_fig4_xemem


def bench_target():
    return run_fig4_xemem(sizes_mb=[1, 4, 16, 64, 256, 1024])


def test_fig4_xemem_attach(benchmark, show):
    result = bench_target()
    show(result.render())
    latencies = result.column("no covirt (us)")
    assert latencies == sorted(latencies)
    benchmark(bench_target)
