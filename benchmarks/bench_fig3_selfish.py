"""Fig. 3: Selfish-Detour noise profile across Covirt configurations."""

from repro.harness.experiments import run_fig3_selfish


def bench_target():
    return run_fig3_selfish(duration_seconds=10.0)


def test_fig3_selfish(benchmark, show):
    result = bench_target()
    show(result.render())
    # The paper's observation: configurations show little variation.
    counts = result.column("detours")
    assert len(set(counts)) == 1
    benchmark(bench_target)
