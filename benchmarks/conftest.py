"""Benchmark-suite helpers.

Every bench target runs its experiment driver once to print the
paper-shaped table (through the captured-output bypass so it lands in
the terminal / tee'd log), then hands the driver to pytest-benchmark
for timing.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print straight through pytest's capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _show
