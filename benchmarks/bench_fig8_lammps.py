"""Fig. 8: LAMMPS loop times (lj, eam, chain, chute) at 8c/2n."""

from repro.harness.experiments import run_fig8_lammps


def bench_target():
    return run_fig8_lammps()


def test_fig8_lammps(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 16  # 4 problems × 4 configs
    benchmark(bench_target)
