#!/usr/bin/env python3
"""The BENCH_*.json pipeline.

Runs each paper scenario on its own instrumented
:class:`~repro.harness.env.CovirtEnvironment`, collects the machine's
metrics registry (``env.machine.obs.metrics``), and writes one
schema-versioned ``BENCH_<name>.json`` per scenario at the repo root.

Every artifact carries the machine-wide exit counts by reason plus at
least one populated latency histogram (the probe's ``covirt.exit_cycles``
at minimum), and validates against
:func:`repro.obs.schema.validate_bench` — the same validator
``python -m repro bench-validate`` and CI's ``bench-smoke`` job run.

Usage::

    PYTHONPATH=src python benchmarks/runner.py [--quick] [--only fig3 ...]

``--quick`` trims sweeps (fewer configs / layouts / sizes) for the CI
smoke job; the artifact schema is identical either way.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Callable

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.features import CovirtConfig, EVALUATION_CONFIGS
from repro.fuzz.rng import DEFAULT_SEED
from repro.harness.env import (
    CovirtEnvironment,
    EVALUATION_LAYOUTS,
    MICROBENCH_LAYOUT,
    Layout,
)
from repro.hw.clock import CYCLES_PER_US
from repro.hw.memory import page_align_up
from repro.obs import metric_names
from repro.obs.scenario import WILD_ADDR, protection_probe
from repro.obs.schema import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    validate_bench,
)
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.hpcg import Hpcg
from repro.workloads.lammps import LAMMPS_PROBLEMS, Lammps
from repro.workloads.minife import MiniFE
from repro.workloads.randomaccess import RandomAccess
from repro.workloads.selfish import SelfishDetour
from repro.workloads.stream import Stream

MiB = 1 << 20
GiB = 1 << 30

#: Attach-latency histogram recorded by the fig4 scenario (cycles).
ATTACH_CYCLES = "bench.attach_cycles"

#: Small fully-protected enclave every scenario probes once, so each
#: artifact's ``exits_by_reason`` covers the whole protection surface.
PROBE_LAYOUT = Layout("probe-1c/1n", {0: 1}, {0: 256 * MiB})


def _probe(env: CovirtEnvironment) -> None:
    enclave = env.launch(PROBE_LAYOUT, CovirtConfig.full(), name="probe")
    protection_probe(env, enclave)
    env.teardown(enclave)


def _row(res: WorkloadResult) -> dict[str, Any]:
    return {
        "workload": res.workload,
        "config": res.config_label,
        "layout": res.layout_label,
        "ncores": res.ncores,
        "elapsed_cycles": res.elapsed_cycles,
        "fom": round(res.fom, 4),
        "fom_name": res.fom_name,
        "higher_is_better": res.higher_is_better,
    }


def _configs(quick: bool) -> list[tuple[str, CovirtConfig | None]]:
    if quick:
        return [EVALUATION_CONFIGS[0], EVALUATION_CONFIGS[3]]
    return list(EVALUATION_CONFIGS)


def _sweep(
    env: CovirtEnvironment,
    workload_factory: Callable[[], Workload],
    layout: Layout,
    quick: bool,
) -> list[dict[str, Any]]:
    """One workload x the evaluation configs, on this env's machine."""
    rows = []
    for label, config in _configs(quick):
        workload = workload_factory()
        enclave = env.launch(layout, config, name=f"{workload.name}-{label}")
        rows.append(_row(env.engine.run(workload, enclave)))
        env.teardown(enclave)
    return rows


# -- scenarios --------------------------------------------------------------


def bench_fig3(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fig. 3: Selfish-Detour noise profile across configurations."""
    duration = 0.5 if quick else 10.0
    rows = _sweep(env, lambda: SelfishDetour(duration), MICROBENCH_LAYOUT, quick)
    workload = SelfishDetour(duration)
    for row in rows:
        trace = workload.sample(row["config"])
        row["detours"] = trace.count
        row["max_detour_us"] = round(trace.max_detour_us(), 3)
        row["noise_fraction"] = trace.noise_fraction
    _probe(env)
    return rows


def bench_fig4(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fig. 4: XEMEM attach latency vs region size, Covirt on/off."""
    sizes_mb = [1, 16, 256] if quick else [1, 4, 16, 64, 256, 1024]
    attach_hist = env.machine.obs.metrics.histogram(
        ATTACH_CYCLES, "XEMEM attach latency (cycles)"
    )
    rows = []
    for mode, config in [
        ("covirt-off", None),
        ("covirt-on", CovirtConfig.memory_only()),
    ]:
        owner = env.launch(
            Layout("owner", {0: 1}, {0: 4 * GiB}), config, name=f"owner-{mode}"
        )
        attacher = env.launch(
            Layout("attacher", {1: 1}, {1: 2 * GiB}), config,
            name=f"attacher-{mode}",
        )
        task = owner.kernel.spawn(
            "exporter", mem_bytes=page_align_up(1100 * MiB)
        )
        base = task.slices[0].start
        attach_core = attacher.assignment.core_ids[0]
        core = env.machine.core(attach_core)
        for i, size_mb in enumerate(sizes_mb):
            seg = env.mcp.xemem.make(
                owner.enclave_id, f"{mode}-region-{i}", base, size_mb * MiB
            )
            t0 = core.read_tsc()
            env.mcp.xemem.attach(
                attacher.enclave_id, seg.segid, core_hint=attach_core
            )
            cycles = core.read_tsc() - t0
            attach_hist.observe(cycles, mode=mode)
            env.mcp.xemem.detach(
                attacher.enclave_id, seg.segid, core_hint=attach_core
            )
            env.mcp.xemem.remove(seg.segid)
            rows.append(
                {
                    "region_mb": size_mb,
                    "mode": mode,
                    "attach_us": round(cycles / CYCLES_PER_US, 3),
                }
            )
        env.teardown(attacher)
        env.teardown(owner)
    _probe(env)
    return rows


def bench_fig5(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fig. 5: STREAM and RandomAccess microbenchmarks across configs."""
    rows = _sweep(env, Stream, MICROBENCH_LAYOUT, quick)
    rows += _sweep(env, RandomAccess, MICROBENCH_LAYOUT, quick)
    _probe(env)
    return rows


def _scaling(
    env: CovirtEnvironment, workload_factory, quick: bool
) -> list[dict[str, Any]]:
    layouts = EVALUATION_LAYOUTS[:1] if quick else EVALUATION_LAYOUTS
    rows = []
    for layout in layouts:
        rows += _sweep(env, workload_factory, layout, quick)
    _probe(env)
    return rows


def bench_fig6(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fig. 6: MiniFE scaling over CPU-core/NUMA-zone layouts."""
    return _scaling(env, MiniFE, quick)


def bench_fig7(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fig. 7: HPCG scaling over CPU-core/NUMA-zone layouts."""
    return _scaling(env, Hpcg, quick)


def bench_fig8(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fig. 8: LAMMPS loop times on the 8c/2n layout."""
    problems = sorted(LAMMPS_PROBLEMS)
    if quick:
        problems = problems[:1]
    layout = EVALUATION_LAYOUTS[3]
    rows = []
    for problem in problems:
        rows += _sweep(env, lambda: Lammps(problem), layout, quick)
    _probe(env)
    return rows


def bench_recovery(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Fault-containment MTTR: wild reads -> terminate -> recover."""
    from repro.core.faults import EnclaveFaultError
    from repro.recovery.policy import RestartWithBackoff

    faults = 2 if quick else 4
    service = env.launch_supervised(
        Layout("bench-2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}),
        CovirtConfig.full(),
        RestartWithBackoff(base_delay_cycles=100_000),
        name="bench-recovery",
    )
    protection_probe(env, service.enclave)
    for _ in range(faults):
        bsp = service.enclave.assignment.core_ids[0]
        try:
            service.enclave.port.read(bsp, WILD_ADDR, 8)
        except EnclaveFaultError:
            pass
    env.recovery.checkpoint_now("bench-recovery")

    rows: list[dict[str, Any]] = [{"faults_injected": faults}]
    mttr = env.machine.obs.metrics.get(metric_names.MTTR_CYCLES)
    if mttr is not None:
        for labels, stats in mttr.samples():
            rows.append(
                {
                    "fault_kind": labels.get("kind", ""),
                    "recoveries": stats["count"],
                    "mean_mttr_us": round(
                        stats["sum"] / stats["count"] / CYCLES_PER_US, 2
                    ),
                }
            )
    return rows


def bench_fuzz(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Coverage-guided vs pure-random fuzzing throughput and reach.

    One row per mode with the campaign's deterministic outputs (edge
    count, corpus size, distilled size).  Wall-clock figures are *not*
    row data — the scenario body must stay a pure function of
    (quick, seed); throughput lands in the artifact's ``wall_seconds``.
    """
    from repro.fuzz import FuzzCampaign, replay_run

    budget, steps = (16, 30) if quick else (48, 60)
    rows = []
    for mode, guided in (("guided", True), ("random", False)):
        result = FuzzCampaign(
            budget, workers=1, steps=steps, guided=guided
        ).run()
        distilled = result.distilled()
        rows.append(
            {
                "mode": mode,
                "executions": result.executions,
                "edges": result.edges,
                "corpus_entries": len(result.corpus),
                "distilled_entries": len(distilled.kept),
                "findings": len(result.findings),
            }
        )
        if guided:
            # Replay one distilled entry end-to-end: the corpus the
            # nightly farm uploads must actually reproduce.
            entry = distilled.kept[0]
            assert replay_run(entry).matches, "distilled entry diverged"
    _probe(env)
    return rows


def bench_sweep(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Scenario sweep: per-cell medians across the adaptation grid.

    The sweep itself runs on worker-private environments (workers=1
    here, so inline); this scenario's own env carries one
    representative cell re-run plus the probe, so the artifact's exit
    counts and metrics describe the same machine surface the sweep
    exercises.  Rows are the per-cell aggregate stats — identical to
    what ``repro sweep`` emits in its BENCH_sweep.json.
    """
    from repro.sweep import SweepExecutor, aggregate, full_spec, quick_spec
    from repro.sweep.runner import run_cell

    spec = quick_spec() if quick else full_spec()
    result = SweepExecutor(spec, workers=1).run()
    if result.failures:
        cell_id, run = result.failures[0]
        raise AssertionError(
            f"sweep cell {cell_id} seed={run.seed} failed: {run.failure}"
        )
    cells = spec.cells()
    run_cell(cells[0], spec.seed_for(cells[0], 0), env=env)
    _probe(env)
    return aggregate(result)


def bench_telemetry(env: CovirtEnvironment, quick: bool) -> list[dict[str, Any]]:
    """Telemetry-plane overhead: off / flight / subscribed / slow-subscriber.

    Delegates to ``benchmarks/bench_telemetry_overhead.py`` (the
    standalone artifact and the runner row set must be the same code
    path).  The sentinel metric is ``ratio_vs_flight`` — wall-clock
    ns/op is machine noise, the between-mode ratio is not, and a broken
    fast-path gate moves the ``off`` row far outside its band.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_telemetry_overhead",
        Path(__file__).resolve().parent / "bench_telemetry_overhead.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    rows = module.measure_rows(quick)
    _probe(env)
    return rows


SCENARIOS: dict[str, tuple[str, Callable]] = {
    "fig3": ("Fig. 3: Selfish-Detour noise profile", bench_fig3),
    "fig4": ("Fig. 4: XEMEM attach delay", bench_fig4),
    "fig5": ("Fig. 5: STREAM / RandomAccess microbenchmarks", bench_fig5),
    "fig6": ("Fig. 6: MiniFE scaling over layouts", bench_fig6),
    "fig7": ("Fig. 7: HPCG scaling over layouts", bench_fig7),
    "fig8": ("Fig. 8: LAMMPS loop times (8c/2n)", bench_fig8),
    "recovery": ("Fault-containment MTTR and checkpoint costs", bench_recovery),
    "fuzz": ("Coverage-guided vs random fuzzing reach", bench_fuzz),
    "sweep": ("Scenario sweep: per-cell medians across the grid", bench_sweep),
    "telemetry": (
        "Telemetry-plane overhead: off / flight / subscribed",
        bench_telemetry,
    ),
}


def run_scenario(
    name: str, quick: bool, seed: int = DEFAULT_SEED, costs: Any = None
) -> dict[str, Any]:
    """Run one scenario on a fresh environment; return its BENCH doc.

    ``costs`` overrides the environment's :class:`CostModel` — the
    regression-sentinel tests use a perturbed model to prove
    ``bench-compare`` actually trips on drift.
    """
    title, fn = SCENARIOS[name]
    env = CovirtEnvironment() if costs is None else CovirtEnvironment(costs=costs)
    results = fn(env, quick)
    registry = env.machine.obs.metrics
    return {
        "schema": BENCH_SCHEMA_NAME,
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": name,
        "title": title,
        "quick": quick,
        "seed": seed,
        # Cores run ahead of the global clock while executing workloads;
        # the furthest TSC is the scenario's true extent of simulated time.
        "sim_cycles": max(
            env.machine.clock.now,
            max(
                env.machine.core(i).read_tsc()
                for i in range(env.machine.num_cores)
            ),
        ),
        "exits_by_reason": registry.exit_counts_by_reason(),
        "metrics": registry.to_dict(),
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run bench scenarios and write BENCH_*.json artifacts."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="trimmed sweeps for the CI smoke job",
    )
    parser.add_argument(
        "--out-dir", default=str(REPO_ROOT),
        help="directory for BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--only", nargs="*", choices=sorted(SCENARIOS), metavar="NAME",
        help="run a subset of scenarios",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=DEFAULT_SEED)
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = args.only or sorted(SCENARIOS)
    failures = 0
    for name in names:
        # Wall time is stamped here, not in run_scenario(): the scenario
        # body must stay a deterministic function of (name, quick, seed)
        # — the pipeline tests byte-compare repeated run_scenario() docs.
        t0 = time.perf_counter()
        doc = run_scenario(name, args.quick, args.seed)
        doc["wall_seconds"] = round(time.perf_counter() - t0, 3)
        problems = validate_bench(doc)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
        exits = sum(doc["exits_by_reason"].values())
        print(
            f"[{name}] {path.name}: {len(doc['results'])} results, "
            f"{exits} exits over {len(doc['exits_by_reason'])} reasons, "
            f"{doc['sim_cycles']} sim cycles, {doc['wall_seconds']}s wall"
        )
        if problems:
            failures += 1
            for problem in problems:
                print(f"[{name}]   INVALID: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
