"""Integration spectrum: delegation cost across co-kernel architectures."""

from repro.harness.experiments import run_integration_spectrum


def bench_target():
    return run_integration_spectrum()


def test_integration_spectrum(benchmark, show):
    result = bench_target()
    show(result.render())
    native = [r for r in result.rows if r[0] == "native"]
    latencies = [r[2] for r in native]
    # Hobbes channel > IHK proxy > mOS trampoline.
    assert latencies[0] > latencies[1] > latencies[2]
    benchmark(bench_target)
