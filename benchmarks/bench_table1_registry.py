"""Table I: benchmark registry."""

from repro.harness.experiments import run_table1


def bench_target():
    return run_table1()


def test_table1(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 6
    benchmark(bench_target)
