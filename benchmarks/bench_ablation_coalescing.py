"""Ablation: EPT 2M/1G coalescing vs 4K-only tables."""

from repro.harness.experiments import run_ablation_coalescing


def bench_target():
    return run_ablation_coalescing()


def test_ablation_coalescing(benchmark, show):
    result = bench_target()
    show(result.render())
    coalesced, flat = result.rows
    assert coalesced[3] < flat[3]  # far fewer 4K entries
    benchmark(bench_target)
