"""Performance isolation under co-running enclaves."""

from repro.harness.experiments import run_isolation_corun


def bench_target():
    return run_isolation_corun()


def test_isolation_corun(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 6
    benchmark(bench_target)
