"""Fig. 5a: STREAM across Covirt configurations."""

from repro.harness.experiments import run_fig5_stream


def bench_target():
    return run_fig5_stream()


def test_fig5_stream(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 4
    benchmark(bench_target)
