"""Ablation: trap-mode vs posted-interrupt IPI protection."""

from repro.harness.experiments import run_ablation_ipi_mode


def bench_target():
    return run_ablation_ipi_mode()


def test_ablation_ipi_mode(benchmark, show):
    result = bench_target()
    show(result.render())
    assert {"posted", "trap"} <= set(result.column("mode"))
    benchmark(bench_target)
