#!/usr/bin/env python3
"""Serving-layer throughput: ``BENCH_serve.json``.

Boots a covirt-serve daemon (or targets an external one with
``--connect``), drives it with N concurrent client threads — each owning
one session and issuing a fixed step/run/inspect/trace request mix — and
reports requests/sec plus p50/p99 request latency in the same
schema-versioned covirt-bench artifact the figure benchmarks use.

The latency distribution here is *wall clock* (a real daemon, real
sockets, real scheduling), unlike the figure benchmarks' simulated
cycles; that is the point — this artifact tracks the serving layer's
own overhead, not the simulator's cost model.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py [--quick]
        [--clients N] [--requests N] [--out FILE] [--connect SPEC]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation convenience
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.schema import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    validate_bench,
)
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.registry import TenantQuota

DEFAULT_SEED = 0xC0517


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _client_worker(
    endpoint: str,
    tenant: str,
    seed: int,
    requests: int,
    latencies: list[float],
    errors: list[str],
) -> None:
    """One tenant: launch a session, drive the request mix, kill it."""
    try:
        with ServeClient(endpoint, tenant=tenant) as client:
            sid = client.launch(scenario="baseline", seed=seed)["session_id"]
            for i in range(requests):
                t0 = time.perf_counter()
                mix = i % 4
                if mix == 0:
                    client.step(sid, steps=2)
                elif mix == 1:
                    client.run(sid, cycles=20_000_000)
                elif mix == 2:
                    client.inspect(sid)
                else:
                    client.trace(sid, cursor=0, limit=16)
                latencies.append(time.perf_counter() - t0)
            client.kill(sid)
    except Exception as exc:  # noqa: BLE001 - reported, fails the bench
        errors.append(f"{tenant}: {type(exc).__name__}: {exc}")


def run_bench(
    clients: int,
    requests: int,
    seed: int,
    endpoint: str | None = None,
    quick: bool = False,
) -> dict:
    """Drive the bench; return the covirt-bench document."""
    daemon = None
    if endpoint is None:
        daemon = ServeDaemon(
            tcp=("127.0.0.1", 0),
            quota=TenantQuota(max_sessions=2),
            max_total_sessions=max(16, clients + 2),
        )
        daemon.start()
        endpoint = daemon.endpoint
    try:
        per_client: list[list[float]] = [[] for _ in range(clients)]
        errors: list[str] = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(endpoint, f"bench-{i}", seed + i, requests,
                      per_client[i], errors),
                daemon=True,
            )
            for i in range(clients)
        ]
        wall0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        wall = time.perf_counter() - wall0
        if errors:
            raise RuntimeError("bench clients failed: " + "; ".join(errors))

        # One more (unmeasured) probe session supplies the simulator-side
        # schema fields: exit counts and the machine metrics registry.
        with ServeClient(endpoint, tenant="bench-probe") as probe:
            sid = probe.launch(scenario="baseline", seed=seed)["session_id"]
            probe.step(sid, steps=40)
            inspected = probe.inspect(sid, metrics=True)
            probe.kill(sid)
    finally:
        if daemon is not None:
            daemon.stop()

    latencies = sorted(lat for bucket in per_client for lat in bucket)
    total_requests = len(latencies)
    rps = total_requests / wall if wall > 0 else 0.0
    return {
        "schema": BENCH_SCHEMA_NAME,
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "serve",
        "title": "covirt-serve request throughput and latency",
        "quick": quick,
        "seed": seed,
        "sim_cycles": int(inspected["sim_cycles"]),
        "exits_by_reason": inspected["exits_by_reason"],
        "metrics": inspected["metrics"],
        "wall_seconds": round(wall, 3),
        "results": [
            {
                "clients": clients,
                "requests": total_requests,
                "requests_per_sec": round(rps, 1),
                "p50_ms": round(1e3 * _percentile(latencies, 0.50), 3),
                "p99_ms": round(1e3 * _percentile(latencies, 0.99), 3),
                "requests_per_client": requests,
            }
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark covirt-serve throughput; write BENCH_serve.json."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small fleet for the CI smoke job",
    )
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per client")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_serve.json"))
    parser.add_argument(
        "--connect", metavar="SPEC", default=None,
        help="benchmark an external daemon (unix:PATH or tcp:HOST:PORT) "
        "instead of self-hosting one",
    )
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=DEFAULT_SEED)
    args = parser.parse_args(argv)

    clients = args.clients or (2 if args.quick else 4)
    requests = args.requests or (12 if args.quick else 60)
    doc = run_bench(
        clients, requests, args.seed, endpoint=args.connect, quick=args.quick
    )
    problems = validate_bench(doc)
    path = Path(args.out)
    path.write_text(json.dumps(doc, indent=1, sort_keys=False) + "\n")
    row = doc["results"][0]
    print(
        f"[serve] {path.name}: {row['clients']} clients, "
        f"{row['requests']} requests, {row['requests_per_sec']} req/s, "
        f"p50 {row['p50_ms']}ms, p99 {row['p99_ms']}ms, "
        f"{doc['wall_seconds']}s wall"
    )
    if problems:
        for problem in problems:
            print(f"[serve]   INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
