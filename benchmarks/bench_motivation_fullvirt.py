"""Motivation: Covirt vs a conventional full-virtualization VMM."""

from repro.harness.experiments import run_motivation_fullvirt


def bench_target():
    return run_motivation_fullvirt()


def test_motivation_fullvirt(benchmark, show):
    result = bench_target()
    show(result.render())
    assert len(result.rows) == 5
    benchmark(bench_target)
