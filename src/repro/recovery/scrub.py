"""Pre-relaunch resource scrubbing.

Before a failed enclave's service is relaunched, the scrubber proves
that everything the dead incarnation held really went back where it
belongs: memory to the host pool, cores back online, IPI vector grants
revoked, XEMEM segments unregistered, channels closed, and the Covirt
controller context gone.  Covirt's whole value proposition is that a
fault never leaks protected resources — so a recovery layer that
silently relaunched over a leak would launder a protection bug into a
"successful" restart.  The scrubber exists to make that impossible:
any violation aborts the recovery with a :class:`ScrubError` and the
supervisor parks the service instead of relaunching it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.controller import covirt_owner
from repro.pisces.resources import enclave_owner

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import CovirtController
    from repro.hobbes.master import MasterControlProcess
    from repro.hw.machine import Machine
    from repro.linuxhost.host import LinuxHost


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    enclave_id: int
    checks_run: int = 0
    violations: list[str] = field(default_factory=list)
    cost_cycles: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "CLEAN" if self.clean else "DIRTY"
        lines = [
            f"scrub enclave {self.enclave_id}: {status} "
            f"({self.checks_run} checks, {self.cost_cycles} cycles)"
        ]
        lines.extend(f"  VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)


class ScrubError(Exception):
    """Raised when a relaunch is refused because resources leaked."""

    def __init__(self, report: ScrubReport) -> None:
        self.report = report
        super().__init__(
            f"scrub rejected relaunch of enclave {report.enclave_id}: "
            + "; ".join(report.violations)
        )


class ResourceScrubber:
    """Verifies a dead enclave left no residue before relaunch."""

    def __init__(
        self,
        machine: "Machine",
        host: "LinuxHost",
        mcp: "MasterControlProcess",
        controller: "CovirtController | None",
        scrub_per_check: int = 1_500,
    ) -> None:
        self.machine = machine
        self.host = host
        self.mcp = mcp
        self.controller = controller
        self.scrub_per_check = scrub_per_check

    def scrub(
        self, enclave_id: int, old_core_ids: tuple[int, ...] = ()
    ) -> ScrubReport:
        """Run every residue check for a dead enclave.  Returns the
        report; callers that must not proceed on violations should use
        :meth:`scrub_or_raise`."""
        report = ScrubReport(enclave_id)

        def check(ok: bool, violation: str) -> None:
            report.checks_run += 1
            if not ok:
                report.violations.append(violation)

        memory = self.machine.memory
        leaked = memory.owned_by(enclave_owner(enclave_id))
        check(
            not leaked,
            f"{sum(r.size for r in leaked)} bytes still owned by "
            f"{enclave_owner(enclave_id)!r}",
        )
        private = memory.owned_by(covirt_owner(enclave_id))
        check(
            not private,
            f"{sum(r.size for r in private)} bytes of Covirt private "
            f"region still owned by {covirt_owner(enclave_id)!r}",
        )
        missing_cores = [
            c for c in old_core_ids if c not in self.host.online_cores
        ]
        check(
            not missing_cores,
            f"cores {missing_cores} never returned to the host",
        )
        grants = self.mcp.vectors.grants_involving(enclave_id)
        check(
            not grants,
            f"{len(grants)} vector grant(s) still name enclave {enclave_id}",
        )
        owned_segs = self.mcp.xemem.names.segments_owned_by(enclave_id)
        check(
            not owned_segs,
            f"XEMEM segments still registered to enclave {enclave_id}: "
            f"{[s.name for s in owned_segs]}",
        )
        attached_segs = self.mcp.xemem.names.segments_attached_by(enclave_id)
        check(
            not attached_segs,
            f"enclave {enclave_id} still attached to segments "
            f"{[s.name for s in attached_segs]}",
        )
        check(
            enclave_id not in self.mcp.channels,
            f"command channel for enclave {enclave_id} still open",
        )
        if self.controller is not None:
            check(
                enclave_id not in self.controller.contexts,
                f"Covirt controller context for enclave {enclave_id} "
                "still present",
            )
        check(self.host.alive, "host kernel is not alive")
        check(self.host.verify_integrity(), "host memory canaries corrupted")

        report.cost_cycles = report.checks_run * self.scrub_per_check
        self.machine.clock.advance(report.cost_cycles)
        return report

    def scrub_or_raise(
        self, enclave_id: int, old_core_ids: tuple[int, ...] = ()
    ) -> ScrubReport:
        report = self.scrub(enclave_id, old_core_ids)
        if not report.clean:
            raise ScrubError(report)
        return report
