"""Recovery policies: what to do when a supervised enclave dies.

A policy is a pure decision function — it never touches the machine.
The supervisor hands it the fault (as a stable :class:`FaultKey`), the
service's fault history, and placement context; the policy answers with
a :class:`RecoveryDecision`.  Keeping policies side-effect free makes
the backoff schedules and give-up thresholds unit-testable without
booting a single enclave.

Four policies ship with the reproduction, in the lineage of ReHype's
in-place recovery and Quest-V's sandbox restarts:

* :class:`RestartAlways` — immediate unconditional restart.
* :class:`RestartWithBackoff` — exponential backoff with deterministic
  jitter (derived from the simulated TSC, so runs are reproducible) and
  a give-up threshold.
* :class:`Failover` — restart on a *different* NUMA zone, rotating
  through zones on repeated faults.
* :class:`Quarantine` — wraps another policy; if the same fault
  signature repeats too often, stop restarting and leave the dossier
  for a human.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum

from repro.core.faults import FaultKey
from repro.pisces.resources import ResourceSpec


class RecoveryAction(enum.Enum):
    RESTART = "restart"
    GIVE_UP = "give-up"
    QUARANTINE = "quarantine"


@dataclass(frozen=True)
class RecoveryDecision:
    """The policy's verdict for one fault."""

    action: RecoveryAction
    #: Simulated cycles to wait before relaunching (backoff).
    delay_cycles: int = 0
    #: Replacement resource spec (failover); None keeps the original.
    respec: ResourceSpec | None = None
    reason: str = ""


@dataclass
class PolicyContext:
    """Everything a policy may consult, supplied by the supervisor."""

    key: FaultKey
    #: Every fault this *service* has taken, oldest first, including
    #: the current one (so ``len(history)`` is the attempt number).
    history: list[FaultKey]
    #: Detection timestamp (simulated TSC) — jitter seed.
    detection_tsc: int
    #: The spec the service is currently shaped as.
    spec: ResourceSpec
    #: NUMA zones on the machine (failover placement domain).
    num_zones: int = 1

    @property
    def attempt(self) -> int:
        return len(self.history)

    def repeats_of(self, signature: tuple[str, str]) -> int:
        return sum(1 for k in self.history if k.signature == signature)


class RecoveryPolicy:
    """Base class; subclasses override :meth:`decide`."""

    name = "abstract"

    def decide(self, ctx: PolicyContext) -> RecoveryDecision:
        raise NotImplementedError


class RestartAlways(RecoveryPolicy):
    """Restart immediately, forever.  The paper's containment story
    makes this safe (the host survives every fault) but it can spin on
    a deterministic crash — pair with :class:`Quarantine` in anger."""

    name = "restart-always"

    def decide(self, ctx: PolicyContext) -> RecoveryDecision:
        return RecoveryDecision(
            RecoveryAction.RESTART,
            reason=f"restart-always: attempt {ctx.attempt}",
        )


#: Multiplier for the deterministic jitter hash (Fibonacci hashing
#: constant — spreads consecutive TSCs uniformly over the jitter span).
_JITTER_MULT = 0x9E3779B1


@dataclass
class RestartWithBackoff(RecoveryPolicy):
    """Exponential backoff with deterministic jitter and a retry cap."""

    base_delay_cycles: int = 1_000_000
    factor: int = 2
    max_delay_cycles: int = 64_000_000
    #: Jitter span as a fraction of the computed delay (0 disables).
    jitter_fraction: float = 0.25
    max_retries: int = 8

    name = "restart-with-backoff"

    def delay_for(self, attempt: int, detection_tsc: int) -> int:
        """Backoff schedule: base·factor^(attempt-1), capped, plus
        jitter derived from the detection TSC (not wall-clock random —
        the simulation must replay identically)."""
        raw = self.base_delay_cycles * (self.factor ** max(attempt - 1, 0))
        delay = min(raw, self.max_delay_cycles)
        span = int(delay * self.jitter_fraction)
        if span > 0:
            delay += (detection_tsc * _JITTER_MULT) % span
        return delay

    def decide(self, ctx: PolicyContext) -> RecoveryDecision:
        if ctx.attempt > self.max_retries:
            return RecoveryDecision(
                RecoveryAction.GIVE_UP,
                reason=(
                    f"backoff: gave up after {self.max_retries} retries"
                    f" ({ctx.key.describe()})"
                ),
            )
        delay = self.delay_for(ctx.attempt, ctx.detection_tsc)
        return RecoveryDecision(
            RecoveryAction.RESTART,
            delay_cycles=delay,
            reason=f"backoff: attempt {ctx.attempt}, delay {delay} cycles",
        )


@dataclass
class Failover(RecoveryPolicy):
    """Relaunch on different NUMA zones: rotate every zone's allocation
    by ``attempt`` positions, away from the (possibly bad) hardware the
    failed incarnation ran on."""

    max_retries: int = 8

    name = "failover"

    def placement_for(self, spec: ResourceSpec, attempt: int, num_zones: int) -> ResourceSpec:
        if num_zones <= 1:
            return spec
        shift = attempt % num_zones
        if shift == 0:
            return spec
        return ResourceSpec(
            cores_per_zone={
                (zone + shift) % num_zones: count
                for zone, count in spec.cores_per_zone.items()
            },
            mem_per_zone={
                (zone + shift) % num_zones: size
                for zone, size in spec.mem_per_zone.items()
            },
            name=spec.name,
            kernel_type=spec.kernel_type,
        )

    def decide(self, ctx: PolicyContext) -> RecoveryDecision:
        if ctx.attempt > self.max_retries:
            return RecoveryDecision(
                RecoveryAction.GIVE_UP,
                reason=f"failover: gave up after {self.max_retries} retries",
            )
        respec = self.placement_for(ctx.spec, ctx.attempt, ctx.num_zones)
        moved = respec is not ctx.spec
        return RecoveryDecision(
            RecoveryAction.RESTART,
            respec=respec,
            reason=(
                f"failover: attempt {ctx.attempt}, "
                + ("re-placed across zones" if moved else "placement unchanged")
            ),
        )


@dataclass
class Quarantine(RecoveryPolicy):
    """Wrap another policy; stop restarting when the same fault
    signature (kind + detail class, enclave-id independent) keeps
    coming back — a deterministic bug restarting won't fix."""

    inner: RecoveryPolicy = field(default_factory=RestartAlways)
    max_repeats: int = 3

    name = "quarantine"

    def decide(self, ctx: PolicyContext) -> RecoveryDecision:
        repeats = ctx.repeats_of(ctx.key.signature)
        if repeats >= self.max_repeats:
            return RecoveryDecision(
                RecoveryAction.QUARANTINE,
                reason=(
                    f"quarantine: {ctx.key.describe()} repeated "
                    f"{repeats}× (limit {self.max_repeats}); dossier retained"
                ),
            )
        return self.inner.decide(ctx)
