"""Periodic, incremental enclave checkpoints.

A checkpoint is everything the recovery supervisor needs to rebuild an
enclave's *service* after Covirt terminates it: the resource assignment
(cores and NUMA memory per zone), the Kitten task table, the XEMEM
export records (with their attachers), the vector grants the enclave
participated in, and the unacknowledged controller command queue.

Checkpointing is **incremental** in the copy-on-write style: each
section carries a fingerprint, and a new checkpoint only re-copies (and
only pays cycles for) sections whose fingerprint changed since the last
one.  All costs are charged to the simulated clock through the cycle
cost model, so checkpoint overhead shows up in MTTR and counter reports
exactly like every other control-path cost in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.commands import CommandType
from repro.hw.machine import Machine
from repro.perf.costs import CostModel
from repro.pisces.resources import ResourceSpec
from repro.xemem.segment import HOST_ENCLAVE_ID

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import EnclaveVirtContext
    from repro.hobbes.master import MasterControlProcess
    from repro.pisces.enclave import Enclave

#: Sentinel used in grant records for "the supervised enclave itself",
#: so the record survives the id change a relaunch brings.
SERVICE = -1


@dataclass(frozen=True)
class TaskRecord:
    """One live task in the Kitten task table."""

    tid: int
    name: str
    mem_bytes: int
    #: Index into the enclave's core list (absolute core ids change on
    #: relaunch/failover; indexes are stable).
    core_index: int | None


@dataclass(frozen=True)
class SegmentRecord:
    """One XEMEM segment the enclave had exported."""

    name: str
    size: int
    #: Name of the task whose memory backed the export ("" = kernel).
    owner_task: str
    #: Enclave ids attached at checkpoint time (HOST_ENCLAVE_ID included).
    attachers: tuple[int, ...]


@dataclass(frozen=True)
class GrantRecord:
    """One vector grant involving the enclave (channel doorbells are
    excluded — the relaunch path re-wires those itself)."""

    dest_core_index: int | None  #: index if the service owned the dest core
    dest_core: int  #: absolute core id (used when index is None)
    dest_enclave: int  #: SERVICE or a foreign enclave id
    senders: tuple[int, ...]  #: SERVICE markers mixed with foreign ids
    purpose: str


@dataclass(frozen=True)
class ResourceRecord:
    """Zone-shaped view of the enclave's assignment at checkpoint time
    (captures hot-added memory the original spec never knew about)."""

    cores_per_zone: tuple[tuple[int, int], ...]
    mem_per_zone: tuple[tuple[int, int], ...]
    core_ids: tuple[int, ...]
    kernel_type: str
    name: str

    def to_spec(self) -> ResourceSpec:
        return ResourceSpec(
            cores_per_zone=dict(self.cores_per_zone),
            mem_per_zone=dict(self.mem_per_zone),
            name=self.name,
            kernel_type=self.kernel_type,
        )


@dataclass
class EnclaveCheckpoint:
    """One complete restorable snapshot."""

    enclave_id: int
    tsc: int
    generation: int
    resources: ResourceRecord
    tasks: tuple[TaskRecord, ...]
    segments: tuple[SegmentRecord, ...]
    grants: tuple[GrantRecord, ...]
    #: core index → pending command types, oldest first.
    pending_commands: tuple[tuple[int, tuple[CommandType, ...]], ...] = ()
    console_tail: tuple[str, ...] = ()
    #: Sections actually copied (vs. reused) when this was taken.
    dirty_sections: tuple[str, ...] = ()
    cost_cycles: int = 0

    @property
    def approx_bytes(self) -> int:
        """Deterministic estimate of the serialized snapshot size, fed
        to the ``recovery.checkpoint_bytes`` histogram.  Nominal record
        sizes, not Python object sizes, so the number is stable across
        interpreter versions."""
        return (
            256  # header + resource record
            + 16 * len(self.resources.core_ids)
            + 64 * len(self.tasks)
            + 96 * len(self.segments)
            + 64 * len(self.grants)
            + sum(16 * (1 + len(cmds)) for _, cmds in self.pending_commands)
            + sum(len(line) for line in self.console_tail)
        )


class CheckpointManager:
    """Takes and stores per-enclave incremental checkpoints."""

    def __init__(
        self,
        machine: Machine,
        mcp: "MasterControlProcess",
        costs: CostModel,
        interval_cycles: int = 50_000_000,
    ) -> None:
        self.machine = machine
        self.mcp = mcp
        self.costs = costs
        self.interval_cycles = interval_cycles
        self.latest: dict[int, EnclaveCheckpoint] = {}
        self._generation: dict[int, int] = {}
        self.total_cost_cycles = 0
        self.total_taken = 0

    # -- section capture -------------------------------------------------

    def _resources(self, enclave: "Enclave") -> ResourceRecord:
        cores_per_zone: dict[int, int] = {}
        for core_id in enclave.assignment.core_ids:
            zone = self.machine.core(core_id).zone
            cores_per_zone[zone] = cores_per_zone.get(zone, 0) + 1
        mem_per_zone: dict[int, int] = {}
        for region in enclave.assignment.regions:
            mem_per_zone[region.zone] = mem_per_zone.get(region.zone, 0) + region.size
        return ResourceRecord(
            cores_per_zone=tuple(sorted(cores_per_zone.items())),
            mem_per_zone=tuple(sorted(mem_per_zone.items())),
            core_ids=tuple(enclave.assignment.core_ids),
            kernel_type=enclave.spec.kernel_type,
            name=enclave.name,
        )

    def _tasks(self, enclave: "Enclave") -> tuple[TaskRecord, ...]:
        kernel = enclave.kernel
        if kernel is None or not hasattr(kernel, "tasks"):
            return ()
        from repro.kitten.task import TaskState

        records = []
        core_ids = list(enclave.assignment.core_ids)
        for task in kernel.tasks.values():
            if task.state in (TaskState.EXITED, TaskState.KILLED):
                continue
            core_index = (
                core_ids.index(task.bound_core)
                if task.bound_core in core_ids
                else None
            )
            records.append(
                TaskRecord(task.tid, task.name, task.memory_bytes, core_index)
            )
        return tuple(records)

    def _segments(self, enclave: "Enclave") -> tuple[SegmentRecord, ...]:
        kernel = enclave.kernel
        records = []
        for segment in self.mcp.xemem.names.segments_owned_by(enclave.enclave_id):
            owner_task = ""
            if kernel is not None and hasattr(kernel, "tasks"):
                for task in kernel.tasks.values():
                    if task.owns_addr(segment.start, segment.size):
                        owner_task = task.name
                        break
            records.append(
                SegmentRecord(
                    name=segment.name,
                    size=segment.size,
                    owner_task=owner_task,
                    attachers=tuple(sorted(segment.attachments)),
                )
            )
        return tuple(records)

    def _grants(self, enclave: "Enclave") -> tuple[GrantRecord, ...]:
        eid = enclave.enclave_id
        core_ids = list(enclave.assignment.core_ids)
        records = []
        for grant in self.mcp.vectors.grants_involving(eid):
            if grant.purpose.startswith("channel doorbell"):
                continue  # _wire_runtime recreates these on relaunch
            dest_index = (
                core_ids.index(grant.dest_core)
                if grant.dest_core in core_ids
                else None
            )
            senders = tuple(
                sorted(SERVICE if s == eid else s for s in grant.allowed_senders)
            )
            records.append(
                GrantRecord(
                    dest_core_index=dest_index,
                    dest_core=grant.dest_core,
                    dest_enclave=SERVICE if grant.dest_enclave_id == eid else grant.dest_enclave_id,
                    senders=senders,
                    purpose=grant.purpose,
                )
            )
        return tuple(sorted(records, key=lambda r: r.purpose))

    def _pending(
        self, ctx: "EnclaveVirtContext | None", enclave: "Enclave"
    ) -> tuple[tuple[int, tuple[CommandType, ...]], ...]:
        if ctx is None:
            return ()
        core_ids = list(enclave.assignment.core_ids)
        snap = []
        for core_id, queue in ctx.queues.items():
            pending = tuple(cmd.type for cmd in queue.snapshot_pending())
            if pending:
                snap.append((core_ids.index(core_id), pending))
        return tuple(snap)

    # -- checkpoint ------------------------------------------------------

    def checkpoint(self, enclave: "Enclave") -> EnclaveCheckpoint:
        """Take an incremental checkpoint of a running enclave."""
        eid = enclave.enclave_id
        ctx = getattr(enclave, "virt_context", None)
        previous = self.latest.get(eid)
        sections = {
            "resources": (self._resources(enclave), self.costs.checkpoint_per_region),
            "tasks": (self._tasks(enclave), self.costs.checkpoint_per_task),
            "segments": (self._segments(enclave), self.costs.checkpoint_per_segment),
            "grants": (self._grants(enclave), self.costs.checkpoint_per_grant),
            "commands": (self._pending(ctx, enclave), self.costs.checkpoint_per_command),
        }
        cost = self.costs.checkpoint_base
        dirty: list[str] = []
        for name, (captured, per_record) in sections.items():
            prior = getattr(previous, self._attr(name), None) if previous else None
            if previous is None or prior != captured:
                dirty.append(name)
                records = len(captured) if isinstance(captured, tuple) else 1
                cost += self.costs.checkpoint_section_cost(per_record, records)
        kernel = enclave.kernel
        console_tail = (
            tuple(kernel.console[-8:])
            if kernel is not None and hasattr(kernel, "console")
            else ()
        )
        generation = self._generation.get(eid, 0) + 1
        self._generation[eid] = generation
        # The honest part: checkpointing takes time on the host control
        # path, and that time is visible to every core on the machine.
        self.machine.clock.advance(cost)
        cp = EnclaveCheckpoint(
            enclave_id=eid,
            tsc=self.machine.clock.now,
            generation=generation,
            resources=sections["resources"][0],
            tasks=sections["tasks"][0],
            segments=sections["segments"][0],
            grants=sections["grants"][0],
            pending_commands=sections["commands"][0],
            console_tail=console_tail,
            dirty_sections=tuple(dirty),
            cost_cycles=cost,
        )
        self.latest[eid] = cp
        self.total_cost_cycles += cost
        self.total_taken += 1
        return cp

    @staticmethod
    def _attr(section: str) -> str:
        return {"commands": "pending_commands"}.get(section, section)

    def due(self, enclave_id: int) -> bool:
        """Has the periodic interval elapsed since the last checkpoint?"""
        previous = self.latest.get(enclave_id)
        if previous is None:
            return True
        return self.machine.clock.now - previous.tsc >= self.interval_cycles

    def rebase(self, old_enclave_id: int, new_enclave: "Enclave") -> EnclaveCheckpoint:
        """After a recovery, move the service's checkpoint chain onto
        the successor enclave and take its baseline."""
        self.latest.pop(old_enclave_id, None)
        self._generation.pop(old_enclave_id, None)
        return self.checkpoint(new_enclave)

    def drop(self, enclave_id: int) -> None:
        self.latest.pop(enclave_id, None)
        self._generation.pop(enclave_id, None)


def attachers_still_running(
    record: SegmentRecord, mcp: "MasterControlProcess"
) -> list[int]:
    """Which of a segment's checkpointed attachers can be re-attached."""
    alive = []
    for attacher_id in record.attachers:
        if attacher_id == HOST_ENCLAVE_ID:
            alive.append(attacher_id)
            continue
        enclave = mcp.kmod.enclaves.get(attacher_id)
        if enclave is not None and enclave.is_running:
            alive.append(attacher_id)
    return alive
