"""Recovery metrics: MTTR accounting and reporting.

Every recovery attempt produces one :class:`RecoveryRecord` spanning
fault detection (the TSC at which the supervisor saw the failure) to
the service being back in RUNNING.  The aggregator groups records by
fault kind so the recovery demo can print a per-fault-class MTTR table,
and folds totals into :class:`~repro.perf.counters.PerfCounters` so
recovery cost appears next to every other cost the reproduction
tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.faults import FaultKey
from repro.hw.clock import cycles_to_us
from repro.perf.counters import PerfCounters


@dataclass
class RecoveryRecord:
    """One fault → recovery (or terminal parking) episode."""

    service: str
    key: FaultKey
    policy: str
    outcome: str  # "recovered", "quarantined", "gave-up", "scrub-failed"
    detection_tsc: int
    completion_tsc: int
    incarnation: int
    backoff_cycles: int = 0
    scrub_cycles: int = 0
    replay_length: int = 0
    replay_cycles: int = 0
    checkpoint_cycles: int = 0
    commands_replayed: int = 0

    @property
    def recovered(self) -> bool:
        return self.outcome == "recovered"

    @property
    def mttr_cycles(self) -> int:
        return self.completion_tsc - self.detection_tsc


@dataclass
class MttrSummary:
    """Aggregate over one fault kind (or everything)."""

    kind: str
    attempts: int = 0
    recovered: int = 0
    total_mttr_cycles: int = 0
    total_backoff_cycles: int = 0
    total_replay_length: int = 0

    @property
    def mean_mttr_cycles(self) -> float:
        return self.total_mttr_cycles / self.recovered if self.recovered else 0.0

    @property
    def mean_mttr_us(self) -> float:
        return cycles_to_us(self.mean_mttr_cycles)


class RecoveryMetrics:
    """Collects :class:`RecoveryRecord`\\ s and renders summaries."""

    def __init__(self) -> None:
        self.records: list[RecoveryRecord] = []
        self.counters = PerfCounters()

    def record(self, rec: RecoveryRecord) -> None:
        self.records.append(rec)
        if rec.recovered:
            self.counters.recoveries += 1
            self.counters.recovery_cycles += rec.mttr_cycles
        self.counters.commands_replayed += rec.commands_replayed

    def record_checkpoint(self, cost_cycles: int) -> None:
        self.counters.checkpoints_taken += 1
        self.counters.checkpoint_cycles += cost_cycles

    # -- aggregation -----------------------------------------------------

    def by_fault_kind(self) -> dict[str, MttrSummary]:
        summaries: dict[str, MttrSummary] = {}
        for rec in self.records:
            summary = summaries.setdefault(rec.key.kind, MttrSummary(rec.key.kind))
            summary.attempts += 1
            if rec.recovered:
                summary.recovered += 1
                summary.total_mttr_cycles += rec.mttr_cycles
                summary.total_backoff_cycles += rec.backoff_cycles
                summary.total_replay_length += rec.replay_length
        return summaries

    def retries_by_signature(self) -> dict[tuple[str, str], int]:
        counts: dict[tuple[str, str], int] = {}
        for rec in self.records:
            counts[rec.key.signature] = counts.get(rec.key.signature, 0) + 1
        return counts

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        if not self.records:
            return "recovery metrics: no recoveries recorded"
        lines = [
            "recovery metrics (MTTR = detection → back to RUNNING):",
            f"  {'fault kind':<24s} {'n':>3s} {'recovered':>9s} "
            f"{'mean MTTR (cyc)':>16s} {'mean MTTR (µs)':>15s}",
        ]
        for kind in sorted(self.by_fault_kind()):
            s = self.by_fault_kind()[kind]
            lines.append(
                f"  {kind:<24s} {s.attempts:>3d} {s.recovered:>9d} "
                f"{s.mean_mttr_cycles:>16,.0f} {s.mean_mttr_us:>15,.1f}"
            )
        c = self.counters
        lines.append(
            f"  checkpoints: {c.checkpoints_taken} "
            f"({c.checkpoint_cycles:,} cycles); "
            f"commands replayed: {c.commands_replayed}"
        )
        return "\n".join(lines)
