"""State replay: rebuild a relaunched enclave from its checkpoint.

A relaunch gives the service a *fresh* enclave — new enclave id, new
Kitten kernel, new Covirt context, new channel doorbells (the MCP's
launch path wires those itself).  Replay then restores everything the
checkpoint captured on top of it:

1. re-spawn the checkpointed tasks (same names, sizes, core indexes);
2. re-export the XEMEM segments under their old names and re-attach
   every checkpointed attacher that is still running;
3. restore the non-doorbell vector grants, rewriting the dead enclave's
   id to the successor's;
4. re-issue the commands that were enqueued-but-unacknowledged at the
   checkpoint (TERMINATE is never replayed — replaying the command that
   killed you is not recovery);
5. re-notify every dependent the MCP told about the failure that the
   service is back.

All of it is charged to the simulated clock so replay length shows up
in MTTR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.commands import CommandType
from repro.recovery.checkpoint import (
    SERVICE,
    EnclaveCheckpoint,
    attachers_still_running,
)
from repro.xemem.segment import HOST_ENCLAVE_ID, SegmentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import CovirtController
    from repro.hobbes.master import MasterControlProcess
    from repro.pisces.enclave import Enclave


@dataclass
class ReplayReport:
    """What the replay engine managed to restore."""

    old_enclave_id: int
    new_enclave_id: int
    tasks_respawned: list[str] = field(default_factory=list)
    segments_reexported: list[str] = field(default_factory=list)
    attachments_restored: list[tuple[str, int]] = field(default_factory=list)
    grants_restored: list[str] = field(default_factory=list)
    commands_replayed: list[str] = field(default_factory=list)
    commands_skipped: list[str] = field(default_factory=list)
    dependents_notified: list[int] = field(default_factory=list)
    cost_cycles: int = 0

    @property
    def replay_length(self) -> int:
        return (
            len(self.tasks_respawned)
            + len(self.segments_reexported)
            + len(self.attachments_restored)
            + len(self.grants_restored)
            + len(self.commands_replayed)
            + len(self.dependents_notified)
        )


class ReplayEngine:
    """Applies a checkpoint to a freshly relaunched enclave."""

    def __init__(
        self,
        mcp: "MasterControlProcess",
        controller: "CovirtController | None",
        replay_per_command: int = 400,
    ) -> None:
        self.mcp = mcp
        self.controller = controller
        self.replay_per_command = replay_per_command

    def replay(
        self, checkpoint: EnclaveCheckpoint, new_enclave: "Enclave"
    ) -> ReplayReport:
        report = ReplayReport(checkpoint.enclave_id, new_enclave.enclave_id)
        self._respawn_tasks(checkpoint, new_enclave, report)
        self._reexport_segments(checkpoint, new_enclave, report)
        self._restore_grants(checkpoint, new_enclave, report)
        self._replay_commands(checkpoint, new_enclave, report)
        self._renotify_dependents(checkpoint, new_enclave, report)
        report.cost_cycles = report.replay_length * self.replay_per_command
        self.mcp.machine.clock.advance(report.cost_cycles)
        return report

    # -- stages ----------------------------------------------------------

    def _respawn_tasks(
        self,
        checkpoint: EnclaveCheckpoint,
        enclave: "Enclave",
        report: ReplayReport,
    ) -> None:
        kernel = enclave.kernel
        if kernel is None:
            return
        core_ids = list(enclave.assignment.core_ids)
        for record in checkpoint.tasks:
            core_id = None
            if record.core_index is not None and record.core_index < len(core_ids):
                core_id = core_ids[record.core_index]
            kernel.spawn(record.name, record.mem_bytes, core_id)
            report.tasks_respawned.append(record.name)

    def _reexport_segments(
        self,
        checkpoint: EnclaveCheckpoint,
        enclave: "Enclave",
        report: ReplayReport,
    ) -> None:
        kernel = enclave.kernel
        eid = enclave.enclave_id
        for record in checkpoint.segments:
            start = None
            if kernel is not None and record.owner_task:
                # Back the export with the respawned task's memory when
                # it is big enough (same layout the service had built).
                for task in kernel.tasks.values():
                    if task.name == record.owner_task:
                        for s in task.slices:
                            if s.size >= record.size:
                                start = s.start
                                break
                        break
            if start is None and kernel is not None:
                start = kernel.kmalloc(record.size).start
            if start is None:  # pragma: no cover - kernel-less enclave
                continue
            try:
                segment = self.mcp.xemem.make(eid, record.name, start, record.size)
            except SegmentError:
                continue  # name raced back into use; dossier has the record
            report.segments_reexported.append(record.name)
            for attacher_id in attachers_still_running(record, self.mcp):
                if attacher_id in (checkpoint.enclave_id, eid):
                    continue  # the dead incarnation; nothing to re-attach
                try:
                    self.mcp.xemem.attach(attacher_id, segment.segid)
                except SegmentError:
                    continue
                report.attachments_restored.append((record.name, attacher_id))

    def _restore_grants(
        self,
        checkpoint: EnclaveCheckpoint,
        enclave: "Enclave",
        report: ReplayReport,
    ) -> None:
        eid = enclave.enclave_id
        core_ids = list(enclave.assignment.core_ids)
        for record in checkpoint.grants:
            if record.dest_core_index is not None and record.dest_core_index < len(
                core_ids
            ):
                dest_core = core_ids[record.dest_core_index]
            else:
                dest_core = record.dest_core
            dest_enclave = eid if record.dest_enclave == SERVICE else record.dest_enclave
            senders = {eid if s == SERVICE else s for s in record.senders}
            self.mcp.vectors.allocate(
                dest_core=dest_core,
                dest_enclave_id=dest_enclave,
                allowed_senders=senders,
                purpose=record.purpose,
            )
            report.grants_restored.append(record.purpose)

    def _replay_commands(
        self,
        checkpoint: EnclaveCheckpoint,
        enclave: "Enclave",
        report: ReplayReport,
    ) -> None:
        if self.controller is None:
            return
        ctx = self.controller.context_for(enclave.enclave_id)
        if ctx is None:
            return
        core_ids = list(enclave.assignment.core_ids)
        for core_index, types in checkpoint.pending_commands:
            if core_index >= len(core_ids):
                continue
            core_id = core_ids[core_index]
            for ctype in types:
                label = f"{ctype.name}@core{core_id}"
                if ctype is CommandType.TERMINATE:
                    report.commands_skipped.append(label)
                    continue
                self.controller.issue_command_to(ctx, core_id, ctype)
                report.commands_replayed.append(label)

    def _renotify_dependents(
        self,
        checkpoint: EnclaveCheckpoint,
        enclave: "Enclave",
        report: ReplayReport,
    ) -> None:
        old_id = checkpoint.enclave_id
        for dependent in self.mcp.dependents_notified_about(old_id):
            if dependent == old_id:
                continue
            if dependent != HOST_ENCLAVE_ID:
                holder = self.mcp.kmod.enclaves.get(dependent)
                if holder is None or not holder.is_running:
                    continue
            self.mcp.notify_recovered(
                dependent,
                old_id,
                f"service {enclave.name!r} recovered as enclave "
                f"{enclave.enclave_id}",
            )
            report.dependents_notified.append(dependent)
