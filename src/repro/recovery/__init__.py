"""repro.recovery — enclave supervision, checkpoint/restart, and
recovery policies on top of Covirt containment.

Covirt's contribution (the paper's Section IV) is *containment*: an
abort-class fault kills the enclave, never the host.  This package adds
the layer the paper leaves to the system integrator: getting the dead
service **back**.  A :class:`RecoverySupervisor` watches every
supervised enclave, and on termination consults a pluggable
:class:`RecoveryPolicy`, scrubs the host for leaked resources, relaunches
through the same Pisces/Hobbes/Covirt path as a first boot, and replays
the checkpointed state (tasks, XEMEM exports, vector grants, pending
controller commands, dependent notifications).
"""

from repro.recovery.checkpoint import (
    CheckpointManager,
    EnclaveCheckpoint,
    GrantRecord,
    ResourceRecord,
    SegmentRecord,
    TaskRecord,
)
from repro.recovery.metrics import MttrSummary, RecoveryMetrics, RecoveryRecord
from repro.recovery.policy import (
    Failover,
    PolicyContext,
    Quarantine,
    RecoveryAction,
    RecoveryDecision,
    RecoveryPolicy,
    RestartAlways,
    RestartWithBackoff,
)
from repro.recovery.replay import ReplayEngine, ReplayReport
from repro.recovery.scrub import ResourceScrubber, ScrubError, ScrubReport
from repro.recovery.supervisor import (
    RecoveryPhase,
    RecoverySupervisor,
    SupervisedService,
)

__all__ = [
    "CheckpointManager",
    "EnclaveCheckpoint",
    "Failover",
    "GrantRecord",
    "MttrSummary",
    "PolicyContext",
    "Quarantine",
    "RecoveryAction",
    "RecoveryDecision",
    "RecoveryMetrics",
    "RecoveryPhase",
    "RecoveryPolicy",
    "RecoveryRecord",
    "RecoverySupervisor",
    "ReplayEngine",
    "ReplayReport",
    "ResourceRecord",
    "ResourceScrubber",
    "RestartAlways",
    "RestartWithBackoff",
    "ScrubError",
    "ScrubReport",
    "SegmentRecord",
    "SupervisedService",
    "TaskRecord",
]
