"""The per-enclave recovery supervisor.

The supervisor tracks a *service* — a named workload that survives
across enclave incarnations (a relaunch mints a fresh enclave id, so
the id cannot be the identity).  It subscribes to both fault sources:

* the Covirt controller's fault hooks, fired after a hypervisor
  terminates a guest and the dossier is collected; and
* the MCP's ``on_enclave_failed`` hooks, fired after dependencies are
  severed and resources reclaimed (this also catches terminations that
  never passed through a Covirt hypervisor).

Both funnel into the same state machine:

    RUNNING → TERMINATED → SCRUBBING → RELAUNCHING → REPLAYING → RUNNING

with three terminal parks: QUARANTINED (policy: same bug keeps
recurring), GIVEN_UP (policy: retry budget exhausted), and
SCRUB_FAILED (a released resource never returned to the host pool —
relaunching would launder a protection bug, so we refuse).

The hooks fire *inside* Covirt's fault path, before the
``EnclaveFaultError`` reaches the guest's caller — so in auto mode the
supervisor must never raise: every failure of recovery itself is
recorded and parked, not thrown.  The manual :meth:`recover` entry
point, by contrast, raises :class:`ScrubError` so tests (and
operators) can assert rejection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.faults import CovirtFault, FaultKey, key_from_record
from repro.core.features import CovirtConfig
from repro.obs import metric_names
from repro.perf.trace import EventTrace, TraceKind
from repro.pisces.enclave import Enclave, EnclaveState, FaultRecord
from repro.pisces.resources import ResourceSpec
from repro.recovery.checkpoint import CheckpointManager, EnclaveCheckpoint
from repro.recovery.metrics import RecoveryMetrics, RecoveryRecord
from repro.recovery.policy import (
    PolicyContext,
    RecoveryAction,
    RecoveryPolicy,
    RestartWithBackoff,
)
from repro.recovery.replay import ReplayEngine, ReplayReport
from repro.recovery.scrub import ResourceScrubber, ScrubError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import CovirtController
    from repro.hobbes.master import MasterControlProcess
    from repro.hw.machine import Machine
    from repro.linuxhost.host import LinuxHost

#: Event-trace depth for the supervisor's own recovery timeline.
SUPERVISOR_TRACE_DEPTH = 512


class RecoveryPhase(enum.Enum):
    RUNNING = "running"
    TERMINATED = "terminated"
    SCRUBBING = "scrubbing"
    RELAUNCHING = "relaunching"
    REPLAYING = "replaying"
    # terminal parks:
    QUARANTINED = "quarantined"
    GIVEN_UP = "given-up"
    SCRUB_FAILED = "scrub-failed"

    @property
    def terminal(self) -> bool:
        return self in (
            RecoveryPhase.QUARANTINED,
            RecoveryPhase.GIVEN_UP,
            RecoveryPhase.SCRUB_FAILED,
        )


@dataclass
class SupervisedService:
    """A logical workload tracked across enclave incarnations."""

    name: str
    spec: ResourceSpec
    config: CovirtConfig | None
    policy: RecoveryPolicy
    enclave: Enclave
    phase: RecoveryPhase = RecoveryPhase.RUNNING
    incarnation: int = 1
    #: Every fault this service has taken, across incarnations.
    history: list[FaultKey] = field(default_factory=list)
    #: Set when a failure was observed but recovery hasn't run
    #: (auto=False, or a scrub rejection awaiting operator action).
    pending_key: FaultKey | None = None
    #: ids of every dead incarnation, oldest first.
    past_enclave_ids: list[int] = field(default_factory=list)
    last_replay: ReplayReport | None = None

    @property
    def enclave_id(self) -> int:
        return self.enclave.enclave_id


class RecoverySupervisor:
    """Supervises enclaves and drives the recovery state machine."""

    def __init__(
        self,
        machine: "Machine",
        host: "LinuxHost",
        mcp: "MasterControlProcess",
        controller: "CovirtController | None" = None,
        *,
        auto: bool = True,
        checkpoint_interval_cycles: int = 50_000_000,
    ) -> None:
        self.machine = machine
        self.host = host
        self.mcp = mcp
        self.controller = controller
        self.auto = auto
        costs = controller.costs if controller is not None else None
        from repro.perf.costs import DEFAULT_COSTS

        self.costs = costs if costs is not None else DEFAULT_COSTS
        self.checkpoints = CheckpointManager(
            machine, mcp, self.costs, interval_cycles=checkpoint_interval_cycles
        )
        self.scrubber = ResourceScrubber(
            machine, host, mcp, controller, self.costs.scrub_per_check
        )
        self.replayer = ReplayEngine(mcp, controller, self.costs.replay_per_command)
        self.metrics = RecoveryMetrics()
        self.trace = EventTrace(capacity=SUPERVISOR_TRACE_DEPTH)
        self.services: dict[str, SupervisedService] = {}
        #: Observers fired on every phase transition, after the phase is
        #: assigned.  The fuzz engine uses this seam to inject faults
        #: *mid-recovery* (a sibling enclave dying while another is being
        #: scrubbed/relaunched); hooks that provoke guest faults must
        #: swallow the resulting ``EnclaveFaultError`` themselves.
        self.phase_hooks: list = []
        mcp.on_enclave_failed.append(self._on_enclave_failed)
        if controller is not None:
            controller.fault_hooks.append(self._on_covirt_fault)
        machine.obs.flight.register_context("recovery", self.flight_summary)

    def flight_summary(self) -> dict:
        """Deterministic service-state summary for post-mortem bundles."""
        return {
            name: {
                "phase": service.phase.value,
                "incarnation": service.incarnation,
                "enclave_id": service.enclave.enclave_id,
                "faults": [key.describe() for key in service.history],
                "policy": service.policy.name,
            }
            for name, service in sorted(self.services.items())
        }

    def _set_phase(self, service: SupervisedService, phase: RecoveryPhase) -> None:
        """Single funnel for phase transitions, so observers see every
        step of the state machine in order."""
        service.phase = phase
        flight = self.machine.obs.flight
        flight.note(
            "recovery-phase",
            f"{service.name!r} → {phase.value}",
            incarnation=service.incarnation,
        )
        for hook in list(self.phase_hooks):
            hook(service, phase)
        if phase.terminal:
            # A terminal park is the recovery layer's containment event:
            # snapshot why the service will not come back.
            flight.postmortem(
                "recovery-parked",
                f"service {service.name!r} parked in {phase.value}",
                service=service.name,
                phase=phase.value,
                incarnation=service.incarnation,
            )

    # -- registration ----------------------------------------------------

    def supervise(
        self,
        enclave: Enclave,
        policy: RecoveryPolicy | None = None,
        config: CovirtConfig | None = None,
        name: str | None = None,
    ) -> SupervisedService:
        """Put an already-launched enclave under supervision and take
        its baseline checkpoint."""
        service_name = name or enclave.name
        if service_name in self.services:
            raise ValueError(f"service {service_name!r} already supervised")
        if config is None and self.controller is not None:
            ctx = self.controller.context_for(enclave.enclave_id)
            config = ctx.config if ctx is not None else None
        service = SupervisedService(
            name=service_name,
            spec=enclave.spec,
            config=config,
            policy=policy or RestartWithBackoff(),
            enclave=enclave,
        )
        self.services[service_name] = service
        cp = self.checkpoints.checkpoint(enclave)
        self._note_checkpoint(cp, service_name)
        self._trace(
            TraceKind.CHECKPOINT,
            f"baseline gen {cp.generation} for {service_name!r}",
        )
        return service

    def service_for_enclave(self, enclave_id: int) -> SupervisedService | None:
        for service in self.services.values():
            if service.enclave.enclave_id == enclave_id:
                return service
        return None

    # -- periodic checkpointing ------------------------------------------

    def tick(self) -> list[EnclaveCheckpoint]:
        """Take a checkpoint of every RUNNING service whose interval
        elapsed.  Call from the workload driver's housekeeping loop."""
        taken = []
        for service in self.services.values():
            if service.phase is not RecoveryPhase.RUNNING:
                continue
            if not self.checkpoints.due(service.enclave_id):
                continue
            taken.append(self.checkpoint_now(service.name))
        return taken

    def checkpoint_now(self, name: str) -> EnclaveCheckpoint:
        service = self.services[name]
        cp = self.checkpoints.checkpoint(service.enclave)
        self._note_checkpoint(cp, name)
        self._trace(
            TraceKind.CHECKPOINT,
            f"gen {cp.generation} for {name!r} "
            f"(dirty: {','.join(cp.dirty_sections) or 'none'})",
        )
        return cp

    # -- fault subscriptions ---------------------------------------------

    def _on_covirt_fault(self, fault: CovirtFault) -> None:
        """Controller hook: fires after dossier collection + reclaim.
        Normally a no-op — the MCP hook below has already recovered the
        service by the time this runs — but it catches Covirt faults on
        frameworks that bypass the MCP's failure path."""
        service = self.service_for_enclave(fault.enclave_id)
        if service is None or service.phase is not RecoveryPhase.RUNNING:
            return
        self._observe_failure(service, fault.key())

    def _on_enclave_failed(self, enclave_id: int, record: FaultRecord) -> None:
        """MCP hook: fires inside ``enclave_failed`` once dependencies
        are severed and resources reclaimed — the earliest moment a
        relaunch can safely allocate."""
        service = self.service_for_enclave(enclave_id)
        if service is None or service.phase is not RecoveryPhase.RUNNING:
            return
        self._observe_failure(service, key_from_record(enclave_id, record))

    def _observe_failure(self, service: SupervisedService, key: FaultKey) -> None:
        detection_tsc = self.machine.clock.now
        self.machine.obs.tracer.instant(
            "recovery.detected",
            category="recovery",
            track="recovery",
            service=service.name,
            kind=key.kind,
        )
        self._set_phase(service, RecoveryPhase.TERMINATED)
        service.history.append(key)
        service.pending_key = key
        self._trace(
            TraceKind.RECOVER,
            f"{service.name!r} down: {key.describe()} "
            f"(incarnation {service.incarnation})",
        )
        if not self.auto:
            return
        try:
            self._recover(service, key, detection_tsc, raise_on_scrub=False)
        except Exception as exc:  # recovery must never poison the fault path
            self._set_phase(service, RecoveryPhase.GIVEN_UP)
            self._trace(
                TraceKind.RECOVER,
                f"{service.name!r} recovery aborted: {exc}",
            )
            self.metrics.record(
                RecoveryRecord(
                    service=service.name,
                    key=key,
                    policy=service.policy.name,
                    outcome="gave-up",
                    detection_tsc=detection_tsc,
                    completion_tsc=self.machine.clock.now,
                    incarnation=service.incarnation,
                )
            )

    # -- manual entry point ----------------------------------------------

    def recover(self, name: str) -> SupervisedService:
        """Operator-driven recovery of a parked service.  Unlike the
        auto path this *raises* :class:`ScrubError` on a dirty scrub."""
        service = self.services[name]
        if service.phase is RecoveryPhase.RUNNING:
            raise ValueError(f"service {name!r} is running; nothing to recover")
        key = service.pending_key or (service.history[-1] if service.history else None)
        if key is None:
            raise ValueError(f"service {name!r} has no recorded fault")
        self._recover(service, key, self.machine.clock.now, raise_on_scrub=True)
        return service

    # -- the state machine -----------------------------------------------

    def _recover(
        self,
        service: SupervisedService,
        key: FaultKey,
        detection_tsc: int,
        *,
        raise_on_scrub: bool,
    ) -> None:
        with self.machine.obs.tracer.span(
            "recovery.recover",
            category="recovery",
            track="recovery",
            service=service.name,
            kind=key.kind,
        ):
            self._recover_inner(
                service, key, detection_tsc, raise_on_scrub=raise_on_scrub
            )

    def _recover_inner(
        self,
        service: SupervisedService,
        key: FaultKey,
        detection_tsc: int,
        *,
        raise_on_scrub: bool,
    ) -> None:
        tracer = self.machine.obs.tracer
        old_id = service.enclave.enclave_id
        old_cores = tuple(service.enclave.assignment.core_ids)
        checkpoint = self.checkpoints.latest.get(old_id)
        base_spec = (
            checkpoint.resources.to_spec() if checkpoint is not None else service.spec
        )

        decision = service.policy.decide(
            PolicyContext(
                key=key,
                history=list(service.history),
                detection_tsc=detection_tsc,
                spec=base_spec,
                num_zones=self.machine.topology.num_zones,
            )
        )
        self._trace(TraceKind.RECOVER, f"{service.name!r}: {decision.reason}")

        def park(phase: RecoveryPhase, outcome: str, **extra) -> None:
            self._set_phase(service, phase)
            self.metrics.record(
                RecoveryRecord(
                    service=service.name,
                    key=key,
                    policy=service.policy.name,
                    outcome=outcome,
                    detection_tsc=detection_tsc,
                    completion_tsc=self.machine.clock.now,
                    incarnation=service.incarnation,
                    **extra,
                )
            )

        if decision.action is RecoveryAction.QUARANTINE:
            park(RecoveryPhase.QUARANTINED, "quarantined")
            return
        if decision.action is RecoveryAction.GIVE_UP:
            park(RecoveryPhase.GIVEN_UP, "gave-up")
            return

        # Backoff: wall-clock delay on the simulated clock (advance, not
        # elapse — the machine is idle, no timers should fire for us).
        if decision.delay_cycles:
            before = self.machine.clock.now
            self.machine.clock.advance(decision.delay_cycles)
            tracer.complete(
                "recovery.backoff",
                before,
                self.machine.clock.now,
                category="recovery",
                track="recovery",
            )

        # SCRUBBING — refuse to relaunch over leaked resources.
        self._set_phase(service, RecoveryPhase.SCRUBBING)
        with tracer.span(
            "recovery.scrub", category="recovery", track="recovery"
        ):
            scrub_report = self.scrubber.scrub(old_id, old_cores)
        if not scrub_report.clean:
            self._set_phase(service, RecoveryPhase.SCRUB_FAILED)
            self._trace(
                TraceKind.RECOVER,
                f"{service.name!r} scrub rejected relaunch: "
                + "; ".join(scrub_report.violations),
            )
            self.metrics.record(
                RecoveryRecord(
                    service=service.name,
                    key=key,
                    policy=service.policy.name,
                    outcome="scrub-failed",
                    detection_tsc=detection_tsc,
                    completion_tsc=self.machine.clock.now,
                    incarnation=service.incarnation,
                    backoff_cycles=decision.delay_cycles,
                    scrub_cycles=scrub_report.cost_cycles,
                )
            )
            if raise_on_scrub:
                raise ScrubError(scrub_report)
            return

        # RELAUNCHING — same create → boot → wire path as a first launch.
        self._set_phase(service, RecoveryPhase.RELAUNCHING)
        spec = decision.respec or base_spec
        with tracer.span(
            "recovery.relaunch", category="recovery", track="recovery"
        ):
            if self.controller is not None and service.config is not None:
                new_enclave = self.controller.launch(spec, service.config)
            else:
                new_enclave = self.mcp.relaunch_enclave(spec)

        # REPLAYING — restore exports, grants, tasks, pending commands.
        self._set_phase(service, RecoveryPhase.REPLAYING)
        with tracer.span(
            "recovery.replay", category="recovery", track="recovery"
        ):
            if checkpoint is not None:
                replay_report = self.replayer.replay(checkpoint, new_enclave)
            else:
                replay_report = ReplayReport(old_id, new_enclave.enclave_id)
        service.last_replay = replay_report

        # Back to RUNNING under the service's identity.
        old_enclave = self.mcp.kmod.enclaves.get(old_id)
        if old_enclave is not None:
            old_enclave.state = EnclaveState.RECOVERED
            old_enclave.successor_id = new_enclave.enclave_id
        service.past_enclave_ids.append(old_id)
        service.enclave = new_enclave
        service.spec = spec
        service.incarnation += 1
        new_enclave.incarnation = service.incarnation
        self._set_phase(service, RecoveryPhase.RUNNING)
        service.pending_key = None

        completion_tsc = self.machine.clock.now
        self.machine.obs.metrics.histogram(
            metric_names.MTTR_CYCLES,
            "detection → RUNNING recovery latency (cycles)",
        ).observe(completion_tsc - detection_tsc, kind=key.kind)
        self.metrics.record(
            RecoveryRecord(
                service=service.name,
                key=key,
                policy=service.policy.name,
                outcome="recovered",
                detection_tsc=detection_tsc,
                completion_tsc=completion_tsc,
                incarnation=service.incarnation,
                backoff_cycles=decision.delay_cycles,
                scrub_cycles=scrub_report.cost_cycles,
                replay_length=replay_report.replay_length,
                replay_cycles=replay_report.cost_cycles,
                commands_replayed=len(replay_report.commands_replayed),
            )
        )
        self._trace(
            TraceKind.RECOVER,
            f"{service.name!r} recovered as enclave {new_enclave.enclave_id} "
            f"(incarnation {service.incarnation}, "
            f"MTTR {completion_tsc - detection_tsc} cycles)",
        )
        # Fresh baseline for the new incarnation.
        cp = self.checkpoints.rebase(old_id, new_enclave)
        self._note_checkpoint(cp, service.name)

    # -- helpers ---------------------------------------------------------

    def _trace(self, kind: TraceKind, detail: str) -> None:
        self.trace.record(self.machine.clock.now, kind, detail)

    def _note_checkpoint(self, cp: EnclaveCheckpoint, name: str) -> None:
        """Fold one checkpoint into both metric systems: the recovery
        report and the machine-wide observability registry."""
        self.metrics.record_checkpoint(cp.cost_cycles)
        obs = self.machine.obs
        obs.tracer.complete(
            "recovery.checkpoint",
            cp.tsc - cp.cost_cycles,
            cp.tsc,
            category="recovery",
            track="recovery",
            service=name,
            generation=cp.generation,
        )
        obs.metrics.histogram(
            metric_names.CHECKPOINT_CYCLES, "per-checkpoint cost (cycles)"
        ).observe(cp.cost_cycles)
        obs.metrics.histogram(
            metric_names.CHECKPOINT_BYTES,
            "approximate serialized checkpoint size (bytes)",
            buckets=(256, 512, 1024, 2048, 4096, 8192, 16384, 65536),
        ).observe(cp.approx_bytes)
