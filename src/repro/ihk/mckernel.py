"""McKernel: IHK's lightweight kernel, with proxy-process delegation.

McKernel offloads nearly every system call to Linux through a *proxy
process*: a host-side twin of each McKernel process whose address space
mirrors (a replica of) the LWK process's mappings, so the host kernel
can dereference syscall arguments directly.  The replica must be kept
in sync as the LWK process maps and unmaps memory — one more piece of
cross-OS/R shared state that can (and in the paper's experience, does)
go stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.hw.interrupts import Interrupt, InterruptKind
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, PAGE_SIZE, page_align_up
from repro.kitten.memmap import GuestMemoryMap
from repro.kitten.pagetable import GuestPageTable
from repro.kitten.syscalls import (
    DELEGATED_SYSCALLS,
    ENOMEM,
    ENOSYS,
    Syscall,
    SyscallError,
)
from repro.pisces.bootparams import PiscesBootParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.hobbes.forwarding import SyscallForwarder
    from repro.pisces.enclave import Enclave

#: McKernel's image + early allocations.
KERNEL_RESERVED_BYTES = 1 << 20

#: Cost of waking the proxy, switching it in on the host, and returning
#: the result — cheaper than a Hobbes channel round trip (the replica
#: lets the host dereference arguments directly) but far costlier than
#: mOS's in-kernel trampoline.
PROXY_DELEGATION_CYCLES = 3_400


@dataclass
class ProxyProcess:
    """The host-side twin of one McKernel process."""

    pid: int
    mck_pid: int
    #: Replicated address-space view: (start, size) ranges the proxy
    #: believes the LWK process has mapped.
    replica: list[tuple[int, int]] = field(default_factory=list)
    delegations: int = 0

    def covers(self, addr: int, length: int) -> bool:
        return any(
            start <= addr and addr + length <= start + size
            for start, size in self.replica
        )

    def replicate(self, start: int, size: int) -> None:
        self.replica.append((start, size))

    def unreplicate(self, start: int, size: int) -> None:
        self.replica.remove((start, size))


@dataclass
class MckProcess:
    """One McKernel process."""

    pid: int
    name: str
    ranges: list[tuple[int, int]] = field(default_factory=list)
    proxy: ProxyProcess | None = None

    def owns(self, addr: int, length: int = 1) -> bool:
        return any(
            start <= addr and addr + length <= start + size
            for start, size in self.ranges
        )


class McKernel:
    """The LWK half of IHK/McKernel."""

    def __init__(
        self, machine: Machine, enclave: "Enclave", params: PiscesBootParams
    ) -> None:
        self.machine = machine
        self.enclave = enclave
        self.params = params
        self.memmap = GuestMemoryMap()
        self.pgtable = GuestPageTable()
        for region in params.regions:
            self.memmap.add_region(region)
            self.pgtable.map(region.start, region.start, region.size)
        self.online_cores: list[int] = [params.core_ids[0]]
        self.console: list[str] = []
        self.running = True
        self.buggy_cleanup = False
        self.hobbes_client: Any = None  # not used by IHK, kept for surface
        #: Host-side services, wired by the IHK module.
        self.forwarder: "SyscallForwarder | None" = None
        self.processes: dict[int, MckProcess] = {}
        self._next_pid = 1
        self._next_proxy_pid = 20_000
        self._alloc = params.regions[0].start + KERNEL_RESERVED_BYTES
        self.irq_log: dict[int, list[Interrupt]] = {c: [] for c in params.core_ids}
        self._irq_handlers: dict[int, Callable[[int, Interrupt], None]] = {}
        self._configure_core(params.core_ids[0])

    # -- guest-kernel surface (shared with Kitten/Nautilus) ----------------

    @classmethod
    def boot(cls, machine: Machine, enclave: "Enclave") -> "McKernel":
        assert enclave.boot_params is not None
        params = PiscesBootParams.read_from(
            machine.memory, enclave.boot_params.address
        )
        params.address = enclave.boot_params.address
        kernel = cls(machine, enclave, params)
        kernel.console.append(
            f"McKernel booting on IHK: os instance {params.enclave_id}, "
            f"{len(params.core_ids)} cpus"
        )
        return kernel

    def _configure_core(self, core_id: int) -> None:
        from repro.hw.cpu import CpuMode

        core = self.machine.core(core_id)
        assert core.apic is not None
        # McKernel also minimises timer noise (1 Hz housekeeping).
        core.apic.configure_timer(1_700_000_000)
        if core.mode is not CpuMode.GUEST:
            core.apic.delivery_hook = lambda irq, c=core_id: self.inject_interrupt(
                c, irq
            )

    def join_secondary_core(self, core_id: int) -> None:
        if core_id in self.online_cores:
            raise ValueError(f"cpu {core_id} already online")
        self.online_cores.append(core_id)
        self.irq_log.setdefault(core_id, [])
        self._configure_core(core_id)

    def shutdown(self) -> None:
        self.running = False

    def register_irq_handler(
        self, vector: int, handler: Callable[[int, Interrupt], None], desc: str = ""
    ) -> None:
        self._irq_handlers[vector] = handler

    def inject_interrupt(self, core_id: int, interrupt: Interrupt) -> None:
        if not self.running:
            return
        self.irq_log.setdefault(core_id, []).append(interrupt)
        handler = self._irq_handlers.get(interrupt.vector)
        if handler is not None:
            handler(core_id, interrupt)
        apic = self.machine.core(core_id).apic
        if apic is not None and interrupt.kind is not InterruptKind.NMI:
            apic.ack(interrupt.vector)

    def memory_hotplug_add(self, region: MemoryRegion) -> None:
        self.memmap.add_region(region)
        self.pgtable.map(region.start, region.start, region.size)
        self.params.regions.append(region)

    def memory_hotplug_remove(self, region: MemoryRegion) -> bool:
        if region in self.params.regions:
            self.params.regions.remove(region)
        if not self.buggy_cleanup:
            self.memmap.remove_region(region)
            self.pgtable.unmap(region.start, region.size)
        return True

    def map_shared(self, region: MemoryRegion) -> None:
        self.memmap.add_region(region)
        self.pgtable.map(region.start, region.start, region.size)

    def unmap_shared(self, region: MemoryRegion) -> None:
        self.memmap.remove_region(region)
        self.pgtable.unmap(region.start, region.size)

    def touch(
        self, core_id: int, addr: int, length: int = 8, *, write: bool = False
    ) -> bytes | None:
        if not self.pgtable.covers(addr, length):
            raise SyscallError(ENOMEM, f"mckernel: {addr:#x} unmapped")
        assert self.enclave.port is not None
        if write:
            self.enclave.port.write(core_id, addr, b"\xcc" * length)
            return None
        return self.enclave.port.read(core_id, addr, length)

    # -- processes & the proxy mechanism --------------------------------

    def spawn_process(self, name: str, mem_bytes: int = PAGE_SIZE) -> MckProcess:
        """Create an LWK process *and its host-side proxy twin* — the
        IHK/McKernel signature (Section III-A: "a 'proxy process' on the
        host OS that requires address space replication")."""
        process = MckProcess(self._next_pid, name)
        self._next_pid += 1
        proxy = ProxyProcess(self._next_proxy_pid, process.pid)
        self._next_proxy_pid += 1
        process.proxy = proxy
        self.processes[process.pid] = process
        if mem_bytes:
            self.mmap_process(process, mem_bytes)
        return process

    def mmap_process(self, process: MckProcess, size: int) -> int:
        """Map memory into an LWK process and replicate into its proxy."""
        size = page_align_up(size)
        region = self.params.regions[0]
        if self._alloc + size > region.end:
            raise SyscallError(ENOMEM, "mckernel: out of memory")
        start = self._alloc
        self._alloc += size
        process.ranges.append((start, size))
        assert process.proxy is not None
        process.proxy.replicate(start, size)  # keep the twin in sync
        return start

    def munmap_process(
        self, process: MckProcess, start: int, size: int, *, buggy: bool = False
    ) -> None:
        """Unmap; with ``buggy`` the proxy replica is *not* updated —
        the replication-desync bug class."""
        process.ranges.remove((start, size))
        if not buggy:
            assert process.proxy is not None
            process.proxy.unreplicate(start, size)

    def syscall(self, process: MckProcess, nr: int, *args: Any) -> Any:
        """McKernel handles almost nothing locally; everything else goes
        to the proxy."""
        try:
            syscall = Syscall(nr)
        except ValueError:
            raise SyscallError(ENOSYS, f"unknown syscall {nr}") from None
        if syscall is Syscall.GETPID:
            return process.pid
        if syscall is Syscall.UNAME:
            return "McKernel on IHK (repro)"
        if syscall in DELEGATED_SYSCALLS or syscall in (
            Syscall.WRITE, Syscall.STAT
        ):
            return self._delegate(process, syscall, args)
        raise SyscallError(ENOSYS, f"{syscall.name} unsupported on McKernel")

    def _delegate(self, process: MckProcess, syscall: Syscall, args: tuple) -> Any:
        """Ship the syscall to the proxy process.

        Argument buffers must be resident in the proxy's replicated
        address space — a desynced replica fails here, exactly how real
        IHK/McKernel delegation breaks.
        """
        if self.forwarder is None:
            raise SyscallError(ENOSYS, "no host proxy service")
        proxy = process.proxy
        assert proxy is not None
        self.machine.core(self.online_cores[0]).advance(PROXY_DELEGATION_CYCLES)
        # Pointer-carrying syscalls validate their buffers against the
        # replica (modelled: WRITE's buffer address argument).
        if syscall is Syscall.WRITE and isinstance(args[1], int):
            addr, length = args[1], args[2]
            if not proxy.covers(addr, length):
                raise SyscallError(
                    14, f"proxy replica desync: {addr:#x} not replicated"
                )  # EFAULT
            assert self.enclave.port is not None
            data = self.enclave.port.read(
                self.online_cores[0], addr, length
            )
            proxy.delegations += 1
            self.console.append(data.decode(errors="replace"))
            return length
        proxy.delegations += 1
        return self.forwarder.execute(syscall, args)
