"""The IHK host module: reserve / boot / destroy OS instances.

Architecturally parallel to :class:`repro.pisces.kmod.PiscesKmod` but
with IHK's idioms: resources are *reserved* from Linux, kernels are
*OS instances* addressed by index, and the host side carries the proxy
syscall service.  It exposes the same integration surface
(``hooks`` / ``boot_protocol`` / ``register_ioctl``), which is all
Covirt needs to protect it.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.hobbes.forwarding import SyscallForwarder
from repro.hw.machine import Machine
from repro.hw.memory import page_align_up
from repro.linuxhost.host import LinuxHost, OFFLINE_OWNER
from repro.pisces.bootparams import PiscesBootParams
from repro.pisces.enclave import Enclave, EnclaveState, FaultRecord, NativeAccessPort
from repro.pisces.kmod import ControlHooks
from repro.pisces.resources import ResourceAssignment, ResourceSpec, enclave_owner
from repro.pisces.trampoline import NativeBootProtocol, boot_params_address_for

#: OS-instance enclave ids live in their own range so a Covirt
#: controller can protect Pisces enclaves and IHK instances side by side.
IHK_ID_BASE = 1000


class IhkError(Exception):
    pass


class IhkIoctl(enum.IntEnum):
    RESERVE = 150
    BOOT = 151
    DESTROY = 152
    QUERY_STATUS = 153


class IhkModule:
    """The IHK driver stack loaded into the host."""

    MODULE_NAME = "ihk"

    def __init__(self, machine: Machine, host: LinuxHost) -> None:
        self.machine = machine
        self.host = host
        self.instances: dict[int, Enclave] = {}
        self._next_index = 0
        self.hooks = ControlHooks()
        self.boot_protocol = NativeBootProtocol(machine)
        #: The host-side proxy syscall service shared by all instances.
        self.proxy_service = SyscallForwarder()
        self._ioctl_extensions: dict[int, Callable[[Any], Any]] = {}
        host.load_module(self.MODULE_NAME, self)

    # -- ioctl ABI ---------------------------------------------------------

    def register_ioctl(self, cmd: int, handler: Callable[[Any], Any]) -> None:
        if cmd in self._ioctl_extensions:
            raise IhkError(f"ioctl {cmd} already registered")
        self._ioctl_extensions[cmd] = handler

    def ioctl(self, cmd: int, arg: Any = None) -> Any:
        if cmd == IhkIoctl.RESERVE:
            cpus, mem = arg
            return self.reserve(cpus, mem)
        if cmd == IhkIoctl.BOOT:
            return self.boot(arg)
        if cmd == IhkIoctl.DESTROY:
            return self.destroy(arg)
        if cmd == IhkIoctl.QUERY_STATUS:
            return self.instance(arg).state
        handler = self._ioctl_extensions.get(cmd)
        if handler is None:
            raise IhkError(f"unknown ioctl {cmd}")
        return handler(arg)

    # -- lifecycle -----------------------------------------------------

    def instance(self, os_index: int) -> Enclave:
        try:
            return self.instances[os_index]
        except KeyError:
            raise IhkError(f"no OS instance {os_index}") from None

    def reserve(
        self, cpus_per_zone: dict[int, int], mem_per_zone: dict[int, int]
    ) -> int:
        """``ihk reserve``: carve CPUs and memory out of Linux."""
        os_index = self._next_index
        enclave_id = IHK_ID_BASE + os_index
        spec = ResourceSpec(
            cores_per_zone=dict(cpus_per_zone),
            mem_per_zone={z: page_align_up(m) for z, m in mem_per_zone.items()},
            name=f"mcos{os_index}",
            kernel_type="mckernel",
        )
        assignment = ResourceAssignment()
        taken_cores: list[int] = []
        taken_regions = []
        try:
            for zone_id, n in sorted(spec.cores_per_zone.items()):
                free = [
                    c.core_id
                    for c in self.machine.cores_in_zone(zone_id)
                    if self.host.can_offline(c.core_id)
                ]
                if len(free) < n:
                    raise IhkError(
                        f"zone {zone_id}: need {n} cpus, {len(free)} free"
                    )
                chosen = free[:n]
                self.host.offline_cores(chosen)
                taken_cores += chosen
                assignment.core_ids += chosen
            for zone_id, size in sorted(spec.mem_per_zone.items()):
                region = self.host.offline_memory(size, zone_id)
                taken_regions.append(region)
                self.machine.memory.transfer(
                    region, OFFLINE_OWNER, enclave_owner(enclave_id)
                )
                assignment.add_region(region)
        except Exception:
            for region in taken_regions:
                owner = self.machine.memory.region_owner(region)
                if owner == enclave_owner(enclave_id):
                    self.machine.memory.transfer(
                        region, enclave_owner(enclave_id), OFFLINE_OWNER
                    )
                self.host.online_memory_return(region)
            if taken_cores:
                self.host.online_cores_return(taken_cores)
            raise
        enclave = Enclave(enclave_id, spec.name, spec, assignment)
        enclave.port = NativeAccessPort(self.machine, enclave, self.host)
        self.instances[os_index] = enclave
        self._next_index += 1
        return os_index

    def boot(self, os_index: int) -> Enclave:
        """``ihk os boot``: bring the reserved instance up."""
        enclave = self.instance(os_index)
        if enclave.state is not EnclaveState.CREATED:
            raise IhkError(f"mcos{os_index} already booted")
        enclave.state = EnclaveState.BOOTING
        params = PiscesBootParams(
            enclave_id=enclave.enclave_id,
            core_ids=list(enclave.assignment.core_ids),
            regions=list(enclave.assignment.regions),
        )
        params.write_to(self.machine.memory, boot_params_address_for(enclave))
        enclave.boot_params = params
        ControlHooks._fire(self.hooks.pre_boot, enclave)
        bsp, *aps = enclave.assignment.core_ids
        self.boot_protocol.boot_core(enclave, bsp, is_bsp=True)
        for core_id in aps:
            self.boot_protocol.boot_core(enclave, core_id, is_bsp=False)
        enclave.state = EnclaveState.RUNNING
        # Wire the proxy syscall service into the kernel.
        assert enclave.kernel is not None
        enclave.kernel.forwarder = self.proxy_service
        ControlHooks._fire(self.hooks.post_boot, enclave)
        return enclave

    def terminate(self, os_index: int, fault: FaultRecord) -> None:
        """Fault-path termination (Covirt's fault sink routes here when
        the controller manages IHK instances)."""
        enclave = self.instance(os_index)
        if enclave.state in (EnclaveState.DESTROYED, EnclaveState.FAILED):
            return
        enclave.state = EnclaveState.FAILED
        enclave.fault = fault
        for core_id in enclave.assignment.core_ids:
            self.machine.core(core_id).halt()
        self._reclaim(enclave)

    def destroy(self, os_index: int) -> None:
        """``ihk os destroy``: shutdown + release the reservation."""
        enclave = self.instance(os_index)
        if enclave.state is EnclaveState.RUNNING:
            assert enclave.kernel is not None
            enclave.kernel.shutdown()
            for core_id in enclave.assignment.core_ids:
                self.machine.core(core_id).halt()
            enclave.state = EnclaveState.DESTROYED
        if enclave.state is EnclaveState.CREATED:
            enclave.state = EnclaveState.DESTROYED
        self._reclaim(enclave)

    def _reclaim(self, enclave: Enclave) -> None:
        ControlHooks._fire(self.hooks.on_teardown, enclave)
        for region in list(enclave.assignment.regions):
            self.machine.memory.transfer(
                region, enclave_owner(enclave.enclave_id), OFFLINE_OWNER
            )
            self.host.online_memory_return(region)
            enclave.assignment.remove_region(region)
        self.host.online_cores_return(list(enclave.assignment.core_ids))
        enclave.assignment.core_ids.clear()
