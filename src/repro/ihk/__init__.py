"""IHK/McKernel-style co-kernel framework (simulated).

The paper argues Covirt "could be adapted to suit the full range of
co-kernel approaches" (Section III-A), naming IHK/McKernel explicitly.
This package is the adaptation: a second, architecturally different
co-kernel framework —

* **IHK** (Interface for Heterogeneous Kernels) reserves CPUs and
  memory from Linux and boots *OS instances* indexed like devices
  (``/dev/mcos0``), rather than Pisces' named enclaves;
* **McKernel** is its lightweight kernel, whose signature design is the
  **proxy process**: every offloaded system call executes inside a
  host-side Linux process that *replicates the McKernel process's
  address space*, so the host kernel can service it natively.

Covirt hooks it through the exact same seams as Pisces
(``CovirtController.interpose_on``): the boot protocol, the control-path
hooks, and the ioctl ABI.  The address-space-replication machinery also
adds a new instance of the paper's favourite bug class: a replica that
falls out of sync with the McKernel side.
"""

from repro.ihk.module import IhkModule, IhkError
from repro.ihk.mckernel import McKernel, ProxyProcess

__all__ = ["IhkModule", "IhkError", "McKernel", "ProxyProcess"]
