"""The cycle cost model.

Every timing claim the reproduction makes flows through the constants
here.  They fall into two classes:

* **Mechanistic constants** — VM exit round trips, NMI delivery, TLB
  flush/refill, page-walk costs.  These are taken from published VMX
  microarchitecture numbers for Broadwell-class parts and are used by
  the simulator to *compute* overheads (EPT-induced miss penalties, IPI
  trap costs, command-queue latencies) from first principles.
* **Calibration constants** — per-workload VMX non-root sensitivity
  (``vmx_sensitivity`` on each workload).  The paper observes a small,
  configuration-independent baseline penalty for some workloads (HPCG's
  ~1.4 %, Fig. 7) that is not attributable to any single trap source;
  we reproduce it as an empirical per-workload factor, documented in
  DESIGN.md §5.

All costs are in cycles of the 1.70 GHz simulated part.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the machine's micro-operations."""

    # -- VMX transitions ------------------------------------------------
    #: Full VM exit + handler dispatch + VM entry (Broadwell ~1300-1700).
    vm_exit_round_trip: int = 1_600
    #: Extra cycles for exits that require instruction emulation.
    emulation_overhead: int = 400
    #: VMCS load (VMPTRLD) when the hypervisor activates a context.
    vmcs_load: int = 900
    #: VMLAUNCH on a freshly loaded context.
    vm_launch: int = 1_200

    # -- interrupts -----------------------------------------------------
    #: NMI delivery into the hypervisor (the command-queue doorbell).
    nmi_delivery: int = 600
    #: Interrupt injection into a guest on VM entry.
    irq_injection: int = 300
    #: Posted-interrupt delivery (no exit; microcode walks the PI desc).
    posted_delivery: int = 80
    #: Native (unvirtualized) interrupt dispatch cost.
    native_irq_dispatch: int = 250

    # -- memory / TLB ---------------------------------------------------
    #: A DRAM reference.
    mem_ref: int = 60
    #: Extra cost of a remote-NUMA-zone DRAM reference.
    remote_numa_extra: int = 35
    #: Native page walk on TLB miss (page-walk caches warm).
    tlb_miss_native: int = 36
    #: *Extra* cycles an EPT (nested) walk adds per TLB miss, by EPT
    #: page size.  Small because identity EPTs keep the nested levels
    #: resident in the page-walk caches — the reason the paper's memory
    #: protection costs ~2 % on RandomAccess and ~0 on STREAM.
    ept_extra_4k: float = 7.0
    ept_extra_2m: float = 5.0
    ept_extra_1g: float = 4.0
    #: Full TLB flush (the memory-update command's direct cost)...
    tlb_flush: int = 500
    #: ...plus refill: extra walk per page re-touched afterwards.
    tlb_refill_per_entry: int = 40

    # -- control paths -------------------------------------------------
    #: Fixed cost of an XEMEM attach/detach control round trip
    #: (syscall, name-service lookup, channel signalling) — microseconds
    #: of work, dwarfing per-page costs for small regions.
    xemem_control_rtt: int = 8_000
    #: Building/parsing one page-frame-list entry (per 4 KiB page).
    page_list_per_page: float = 11.0
    #: Kitten updating its memory map, per page.
    guest_memmap_per_page: float = 6.0
    #: Covirt controller writing one EPT entry (any size).
    ept_entry_update: int = 180
    #: Covirt command queue: enqueue + doorbell + hypervisor service,
    #: excluding the NMI and flush costs accounted separately.
    command_overhead: int = 350
    #: Hobbes channel round trip (syscall forwarding).
    channel_rtt: int = 12_000
    #: One scheduler/housekeeping pass in Kitten (the timer tick body).
    housekeeping_tick: int = 2_000

    # -- recovery subsystem --------------------------------------------
    #: Fixed cost of opening a checkpoint transaction (walking the
    #: supervisor's section fingerprints; paid even when nothing is
    #: dirty, which is what makes incremental checkpointing honest).
    checkpoint_base: int = 4_000
    #: Copying one task-table record into the checkpoint.
    checkpoint_per_task: int = 900
    #: Copying one resource-assignment region record.
    checkpoint_per_region: int = 500
    #: Copying one XEMEM export record (name + geometry + attachers).
    checkpoint_per_segment: int = 700
    #: Copying one vector-grant record.
    checkpoint_per_grant: int = 300
    #: Copying one pending controller command out of a core's ring.
    checkpoint_per_command: int = 200
    #: One scrub invariant check (ownership walk, registry scan, ...).
    scrub_per_check: int = 1_500
    #: Re-issuing one checkpointed controller command after relaunch
    #: (enqueue + NMI doorbell accounted separately by the live path).
    replay_per_command: int = 400

    def checkpoint_section_cost(self, per_record: int, records: int) -> int:
        """Cycles to copy one dirty checkpoint section."""
        return per_record * max(records, 1)

    def ept_extra_per_miss(self, page_size: int) -> float:
        """Extra nested-walk cycles per TLB miss for a given EPT page size."""
        if page_size >= PAGE_SIZE_1G:
            return self.ept_extra_1g
        if page_size >= PAGE_SIZE_2M:
            return self.ept_extra_2m
        return self.ept_extra_4k

    def exit_cost(self, *, emulation: bool = False) -> int:
        """Cost of one VM exit, optionally with emulation work."""
        return self.vm_exit_round_trip + (self.emulation_overhead if emulation else 0)

    def xemem_attach_cycles(self, size: int, *, covirt: bool) -> int:
        """Modelled latency of one XEMEM attach of ``size`` bytes.

        The Covirt term is the controller's EPT update.  Because Covirt
        coalesces into 2 MiB / 1 GiB entries and updates run on the
        *host* control path concurrently with other enclave work, the
        term is per-large-chunk, not per-page — which is why Fig. 4
        shows the Covirt and non-Covirt curves on top of each other.
        """
        pages = size // PAGE_SIZE
        cycles = self.xemem_control_rtt
        cycles += int(pages * (self.page_list_per_page + self.guest_memmap_per_page))
        if covirt:
            chunks = max(1, size // PAGE_SIZE_2M)
            cycles += self.ept_entry_update * min(chunks, 64) + self.command_overhead
        return cycles

    def xemem_detach_cycles(self, size: int, *, covirt: bool, num_cores: int) -> int:
        """Modelled latency of one XEMEM detach (includes the TLB
        shootdown-style flush command when Covirt memory protection is
        on)."""
        cycles = self.xemem_attach_cycles(size, covirt=covirt)
        if covirt:
            cycles += self.nmi_delivery + self.tlb_flush * num_cores
        return cycles


#: The calibrated default model used throughout the reproduction.
DEFAULT_COSTS = CostModel()
