"""Performance model: cycle costs, counters, and TSC sampling."""

from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.counters import PerfCounters
from repro.perf.sampling import DetourSampler, DetourTrace

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "PerfCounters",
    "DetourSampler",
    "DetourTrace",
]
