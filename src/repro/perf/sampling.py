"""Selfish-Detour style TSC sampling.

The Selfish Detour benchmark spins reading the TSC and records a
"detour" whenever two consecutive reads are further apart than a
threshold — i.e. whenever *anything* stole the core.  We reproduce the
measurement loop faithfully against the simulator's noise sources: each
periodic event (timer tick, hypervisor service, injected noise) shows up
as a detour whose duration is the event's handling cost.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.hw.clock import CYCLES_PER_US


@dataclass(frozen=True)
class NoiseSource:
    """A periodic interruption of application execution."""

    name: str
    period_cycles: int
    cost_cycles: int
    #: First occurrence offset (defaults to one full period).
    phase_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.period_cycles <= 0 or self.cost_cycles < 0:
            raise ValueError("noise source needs positive period, non-negative cost")


@dataclass
class DetourTrace:
    """The benchmark's output: when the core was stolen, and for how long."""

    #: (timestamp_cycles, duration_cycles) per detour.
    detours: list[tuple[int, int]] = field(default_factory=list)
    duration_cycles: int = 0
    threshold_cycles: int = 0

    @property
    def count(self) -> int:
        return len(self.detours)

    @property
    def lost_cycles(self) -> int:
        return sum(d for _, d in self.detours)

    @property
    def noise_fraction(self) -> float:
        """Fraction of the run stolen from the application."""
        return self.lost_cycles / self.duration_cycles if self.duration_cycles else 0.0

    def durations_us(self) -> list[float]:
        return [d / CYCLES_PER_US for _, d in self.detours]

    def max_detour_us(self) -> float:
        return max(self.durations_us(), default=0.0)

    def histogram(self, bins_us: list[float]) -> dict[str, int]:
        """Bucket detour durations for the Fig. 3-style profile."""
        counts = {f"<{b}us": 0 for b in bins_us}
        counts[f">={bins_us[-1]}us"] = 0
        for d in self.durations_us():
            for b in bins_us:
                if d < b:
                    counts[f"<{b}us"] += 1
                    break
            else:
                counts[f">={bins_us[-1]}us"] += 1
        return counts


class DetourSampler:
    """The measurement loop."""

    def __init__(
        self, loop_cycles: int = 12, threshold_factor: float = 8.0
    ) -> None:
        if loop_cycles <= 0:
            raise ValueError("loop must take time")
        self.loop_cycles = loop_cycles
        self.threshold_cycles = int(loop_cycles * threshold_factor)

    def run(
        self, duration_cycles: int, sources: list[NoiseSource]
    ) -> DetourTrace:
        """Sample for ``duration_cycles`` against the given noise sources.

        Events are merged on a heap; between events the loop spins
        undisturbed (consecutive TSC deltas equal ``loop_cycles`` and
        stay under threshold), so only event costs produce detours —
        exactly the benchmark's semantics, computed in O(#events).
        """
        trace = DetourTrace(
            duration_cycles=duration_cycles, threshold_cycles=self.threshold_cycles
        )
        heap: list[tuple[int, int]] = []
        for idx, src in enumerate(sources):
            first = src.phase_cycles if src.phase_cycles is not None else src.period_cycles
            heapq.heappush(heap, (first, idx))
        now = 0
        while heap and heap[0][0] < duration_cycles:
            when, idx = heapq.heappop(heap)
            src = sources[idx]
            if when >= now:
                now = when
            # The event steals the core for its cost; overlapping events
            # pile onto the same detour window.
            detour = src.cost_cycles
            if detour > self.threshold_cycles - self.loop_cycles:
                trace.detours.append((now, detour + self.loop_cycles))
            now += detour
            heapq.heappush(heap, (when + src.period_cycles, idx))
        return trace
