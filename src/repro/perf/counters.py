"""Performance counters shared by the hypervisor and the harness."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields


@dataclass
class PerfCounters:
    """Event counts + cycle attribution for one core's hypervisor.

    The recovery subsystem (:mod:`repro.recovery`) shares the same
    structure for its supervisor-level accounting, so checkpoint and
    restart costs surface through the exact channel every other cycle
    cost does.
    """

    exits: Counter = field(default_factory=Counter)
    cycles_in_vmm: int = 0
    cycles_in_guest: int = 0
    commands_serviced: int = 0
    tlb_flushes: int = 0
    ipis_filtered: int = 0
    ipis_forwarded: int = 0
    interrupts_injected: int = 0
    posted_deliveries: int = 0
    # -- recovery subsystem ---------------------------------------------
    checkpoints_taken: int = 0
    checkpoint_cycles: int = 0
    recoveries: int = 0
    recovery_cycles: int = 0
    commands_replayed: int = 0

    def record_exit(self, reason_name: str, cycles: int) -> None:
        self.exits[reason_name] += 1
        self.cycles_in_vmm += cycles

    @property
    def total_exits(self) -> int:
        return sum(self.exits.values())

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        merged = PerfCounters()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged
