"""Performance counters shared by the hypervisor and the harness."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class PerfCounters:
    """Event counts + cycle attribution for one core's hypervisor."""

    exits: Counter = field(default_factory=Counter)
    cycles_in_vmm: int = 0
    cycles_in_guest: int = 0
    commands_serviced: int = 0
    tlb_flushes: int = 0
    ipis_filtered: int = 0
    ipis_forwarded: int = 0
    interrupts_injected: int = 0
    posted_deliveries: int = 0

    def record_exit(self, reason_name: str, cycles: int) -> None:
        self.exits[reason_name] += 1
        self.cycles_in_vmm += cycles

    @property
    def total_exits(self) -> int:
        return sum(self.exits.values())

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        merged = PerfCounters()
        merged.exits = self.exits + other.exits
        merged.cycles_in_vmm = self.cycles_in_vmm + other.cycles_in_vmm
        merged.cycles_in_guest = self.cycles_in_guest + other.cycles_in_guest
        merged.commands_serviced = self.commands_serviced + other.commands_serviced
        merged.tlb_flushes = self.tlb_flushes + other.tlb_flushes
        merged.ipis_filtered = self.ipis_filtered + other.ipis_filtered
        merged.ipis_forwarded = self.ipis_forwarded + other.ipis_forwarded
        merged.interrupts_injected = (
            self.interrupts_injected + other.interrupts_injected
        )
        merged.posted_deliveries = self.posted_deliveries + other.posted_deliveries
        return merged
