"""Per-hypervisor event traces.

A fixed-capacity ring of (tsc, kind, detail) records, appended on every
exit, command, injection, and termination.  Cheap enough to leave on
(it is a bounded deque of tuples), and exactly the artifact the paper's
debugging narrative wants: when an enclave dies you get the ordered
tail of what its hypervisor saw, not a cold corpse.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass


class TraceKind(enum.Enum):
    LAUNCH = "launch"
    EXIT = "exit"
    COMMAND = "command"
    INJECT = "inject"
    POSTED = "posted"
    DROP = "drop"
    TERMINATE = "terminate"
    #: Recovery-subsystem lifecycle events (policy decisions, scrub
    #: verdicts, relaunches, replays — see :mod:`repro.recovery`).
    RECOVER = "recover"
    #: A checkpoint section was captured (or skipped as unchanged).
    CHECKPOINT = "checkpoint"
    #: A fuzz-oracle verdict (see :mod:`repro.fuzz.oracles`): either the
    #: per-step pass summary or the invariant that was violated.
    ORACLE = "oracle"


@dataclass(frozen=True)
class TraceRecord:
    tsc: int
    kind: TraceKind
    detail: str

    def render(self) -> str:
        return f"{self.tsc:>14d}  {self.kind.value:<10s} {self.detail}"


class EventTrace:
    """Bounded event ring for one hypervisor."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._ring: deque[TraceRecord] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, tsc: int, kind: TraceKind, detail: str) -> None:
        self._ring.append(TraceRecord(tsc, kind, detail))
        self.total_recorded += 1

    def tail(self, n: int = 16) -> list[TraceRecord]:
        records = list(self._ring)
        return records[-n:]

    def __len__(self) -> int:
        return len(self._ring)

    def render_tail(self, n: int = 16) -> str:
        return "\n".join(record.render() for record in self.tail(n))

    @property
    def dropped(self) -> int:
        """Records that aged out of the ring."""
        return self.total_recorded - len(self._ring)
