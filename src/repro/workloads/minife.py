"""MiniFE (Fig. 6): the Mantevo implicit finite-element proxy app.

MiniFE assembles a hex-element stiffness matrix for a 3D domain and
solves it with (unpreconditioned) CG.  Its access pattern is structured
enough that the paper measures essentially no Covirt overhead in any
configuration — the negative control among the mini-apps.
"""

from __future__ import annotations

import numpy as np

from repro.hw.tlb import AccessPattern
from repro.workloads.base import Phase, Workload

#: Table I parameters.
MINIFE_DIM = 250

_NODES = (MINIFE_DIM + 1) ** 3
_NNZ = 27 * _NODES
_FOOTPRINT = _NNZ * 12 + 8 * _NODES * 4
_ITERATIONS = 200
_FLOPS = 2.0 * _NNZ * _ITERATIONS
_CYCLES_PER_FLOP = 1.1
_DRAM_REFS = (_FOOTPRINT // 64) * _ITERATIONS


class MiniFE(Workload):
    """Table I row 5."""

    name = "MiniFE"
    version = "2.0"
    parameters = "nx 250 ny 250 nz 250"
    fom_name = "CG MFLOP/s"
    higher_is_better = True
    vmx_sensitivity = 0.001
    ipi_sensitivity = 0.0002
    parallel_efficiency = 0.96

    def phases(self) -> list[Phase]:
        assembly_cycles = _NODES * 60.0  # element integration + scatter
        return [
            Phase(
                name="assembly",
                total_cycles=assembly_cycles,
                total_mem_accesses=_NODES * 3.0,
                footprint_bytes=_FOOTPRINT,
                pattern=AccessPattern.SEQUENTIAL,
                mem_bound_frac=0.5,
            ),
            # MiniFE's matrix keeps the structured-grid ordering, so the
            # x-vector gathers touch a handful of fixed strides: its TLB
            # behaviour is stream-like (unlike HPCG's multigrid sweeps).
            Phase(
                name="cg-solve",
                total_cycles=_FLOPS * _CYCLES_PER_FLOP,
                total_mem_accesses=float(_DRAM_REFS),
                footprint_bytes=_FOOTPRINT,
                pattern=AccessPattern.STRIDED,
                mem_bound_frac=0.85,
                total_ipis=_ITERATIONS * 4.0,
            ),
        ]

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        return _FLOPS / elapsed_seconds / 1e6

    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        """Real mini FE pipeline: assemble a hex-element Laplacian on a
        small structured mesh, then CG-solve it."""
        rng = self.kernel_rng(rng)
        ne = 5  # elements per dimension → 6^3 nodes
        nn = ne + 1
        num_nodes = nn**3

        def node_id(i: int, j: int, k: int) -> int:
            return (i * nn + j) * nn + k

        # Reference 8x8 hex-element Laplacian stiffness (trilinear).
        corners = [
            (i, j, k) for i in (0, 1) for j in (0, 1) for k in (0, 1)
        ]
        ke = np.empty((8, 8))
        for a, (ia, ja, ka) in enumerate(corners):
            for b, (ib, jb, kb) in enumerate(corners):
                same = (ia == ib, ja == jb, ka == kb)
                # Standard trilinear hex Laplacian entries (h=1).
                weights = {3: 1 / 3, 2: 0.0, 1: -1 / 12, 0: -1 / 12}
                ke[a, b] = weights[sum(same)]
        # Assemble (dense is fine at this scale).
        stiffness = np.zeros((num_nodes, num_nodes))
        for ei in range(ne):
            for ej in range(ne):
                for ek in range(ne):
                    ids = [
                        node_id(ei + di, ej + dj, ek + dk)
                        for (di, dj, dk) in corners
                    ]
                    stiffness[np.ix_(ids, ids)] += ke
        # Dirichlet-pin boundary nodes so the system is SPD.
        boundary = [
            node_id(i, j, k)
            for i in range(nn)
            for j in range(nn)
            for k in range(nn)
            if i in (0, ne) or j in (0, ne) or k in (0, ne)
        ]
        for nid in boundary:
            stiffness[nid, :] = 0.0
            stiffness[:, nid] = 0.0
            stiffness[nid, nid] = 1.0
        b = rng.random(num_nodes)
        x = np.zeros(num_nodes)
        r = b - stiffness @ x
        p = r.copy()
        rs = float(r @ r)
        iterations = 0
        for iterations in range(1, 501):
            ap = stiffness @ p
            alpha = rs / float(p @ ap)
            x += alpha * p
            r -= alpha * ap
            rs_new = float(r @ r)
            if np.sqrt(rs_new) < 1e-10 * np.linalg.norm(b):
                break
            p = r + (rs_new / rs) * p
            rs = rs_new
        residual = float(np.linalg.norm(b - stiffness @ x) / np.linalg.norm(b))
        return {
            "nodes": num_nodes,
            "iterations": iterations,
            "relative_residual": residual,
            "converged": residual < 1e-8,
            "spd_check": bool(np.all(np.linalg.eigvalsh(stiffness) > -1e-9)),
        }
