"""Table I: the benchmark registry."""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.hpcg import Hpcg
from repro.workloads.lammps import Lammps
from repro.workloads.minife import MiniFE
from repro.workloads.randomaccess import RandomAccess
from repro.workloads.selfish import SelfishDetour
from repro.workloads.stream import Stream

#: The rows of Table I, in paper order.
BENCHMARK_TABLE: list[Workload] = [
    SelfishDetour(),
    Stream(),
    RandomAccess(),
    Hpcg(),
    MiniFE(),
    Lammps("lj"),
]


def workload_by_name(name: str) -> Workload:
    """Look a benchmark up by its Table-I name (or LAMMPS-<problem>)."""
    lowered = name.lower()
    if lowered.startswith("lammps"):
        problem = lowered.split("-", 1)[1] if "-" in lowered else "lj"
        return Lammps(problem)
    for workload in BENCHMARK_TABLE:
        if workload.name.lower() == lowered:
            return workload
    raise KeyError(f"no benchmark named {name!r}")


def format_table1() -> str:
    """Render Table I as the paper prints it."""
    rows = [w.table_row() for w in BENCHMARK_TABLE]
    rows[-1] = ("LAMMPS", "3 Mar 2020", "None")  # the table lists the app once
    widths = [
        max(len(r[i]) for r in rows + [("Benchmark Name", "Version", "Parameters")])
        for i in range(3)
    ]
    header = " | ".join(
        h.ljust(w) for h, w in zip(("Benchmark Name", "Version", "Parameters"), widths)
    )
    sep = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows
    )
    return f"{header}\n{sep}\n{body}"
