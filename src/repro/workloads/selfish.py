"""Selfish Detour (Fig. 3): the OS-noise microbenchmark.

Selfish Detour spins reading the TSC and logs every interval where the
core was stolen.  Its "workload" is therefore the measurement loop
itself; what varies across Covirt configurations is the *cost* of each
noise event (a native timer tick vs. a tick that forces a VM exit), not
the set of events — which is why the paper finds the noise profiles
essentially unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.hw.clock import CYCLES_PER_SECOND
from repro.hw.tlb import AccessPattern
from repro.kitten.kernel import HOUSEKEEPING_TICK_CYCLES
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.sampling import DetourSampler, DetourTrace, NoiseSource
from repro.workloads.base import Phase, Workload


class SelfishDetour(Workload):
    """Table I row 1."""

    name = "Selfish Detour"
    version = "1.0.7"
    parameters = "None"
    fom_name = "noise fraction"
    higher_is_better = False

    def __init__(self, duration_seconds: float = 10.0) -> None:
        self.duration_cycles = int(duration_seconds * CYCLES_PER_SECOND)

    def phases(self) -> list[Phase]:
        # The spin loop: pure compute, cache-resident.
        return [
            Phase(
                name="spin",
                total_cycles=float(self.duration_cycles),
                total_mem_accesses=0.0,
                footprint_bytes=4096,
                pattern=AccessPattern.SEQUENTIAL,
                mem_bound_frac=0.0,
            )
        ]

    def noise_sources(
        self, config_label: str, costs: CostModel = DEFAULT_COSTS
    ) -> list[NoiseSource]:
        """The periodic interruptions a single-core enclave experiences
        under each evaluation configuration.

        Every configuration has exactly one source — Kitten's 10 Hz
        housekeeping tick; virtualizing interrupt delivery changes its
        *cost*, never its cadence.
        """
        tick_cost = costs.housekeeping_tick
        if config_label == "native" or config_label == "covirt-none":
            tick_cost += costs.native_irq_dispatch
        elif "ipi" in config_label:
            # vAPIC on: the timer is a hardware interrupt and exits.
            tick_cost += costs.exit_cost() + costs.irq_injection
        else:
            # Memory-only Covirt leaves interrupt delivery native.
            tick_cost += costs.native_irq_dispatch
        return [
            NoiseSource(
                name="kitten-housekeeping",
                period_cycles=HOUSEKEEPING_TICK_CYCLES,
                cost_cycles=tick_cost,
            )
        ]

    def sample(self, config_label: str) -> DetourTrace:
        """Run the benchmark against a configuration's noise sources."""
        sampler = DetourSampler()
        return sampler.run(self.duration_cycles, self.noise_sources(config_label))

    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        """Run the real sampling loop against a synthetic noise mix and
        verify it recovers the planted events."""
        rng = self.kernel_rng(rng)
        sources = [
            NoiseSource("tick", period_cycles=1_000_000, cost_cycles=5_000),
            NoiseSource("daemon", period_cycles=7_777_777, cost_cycles=40_000),
        ]
        trace = DetourSampler().run(50_000_000, sources)
        # Events fire at k*period for k*period < duration.
        expected = sum(
            (50_000_000 - 1) // src.period_cycles for src in sources
        )
        return {
            "detours": trace.count,
            "expected_events": expected,
            "noise_fraction": trace.noise_fraction,
        }

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        return elapsed_seconds
