"""STREAM (Fig. 5a): the memory-bandwidth microbenchmark."""

from __future__ import annotations

import numpy as np

from repro.hw.clock import CYCLES_PER_SECOND
from repro.hw.tlb import AccessPattern
from repro.workloads.base import Phase, Workload

#: Elements per array (the paper's runs use arrays far larger than LLC).
STREAM_N = 1 << 24  # 128 MiB per array, 3 arrays
STREAM_REPS = 10

#: Sustained cycles per 8-byte element streamed on the simulated part
#: (bandwidth-bound: ~11 GB/s per core at 1.7 GHz).
CYCLES_PER_ELEMENT = 1.2


class Stream(Workload):
    """Table I row 2."""

    name = "STREAM"
    version = "5.10"
    parameters = "None"
    fom_name = "MB/s (triad)"
    higher_is_better = True
    vmx_sensitivity = 0.0005
    parallel_efficiency = 0.99

    #: (kernel, reads+writes per element)
    KERNELS = (("copy", 2), ("scale", 2), ("add", 3), ("triad", 3))

    def phases(self) -> list[Phase]:
        phases = []
        for kernel, refs in self.KERNELS:
            elements = STREAM_N * refs * STREAM_REPS
            phases.append(
                Phase(
                    name=kernel,
                    total_cycles=elements * CYCLES_PER_ELEMENT,
                    total_mem_accesses=float(elements),
                    footprint_bytes=3 * STREAM_N * 8,
                    pattern=AccessPattern.SEQUENTIAL,
                    mem_bound_frac=0.95,
                )
            )
        return phases

    @property
    def total_bytes(self) -> int:
        return sum(STREAM_N * refs * STREAM_REPS * 8 for _, refs in self.KERNELS)

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        # Best-rate convention: report the triad share of traffic.
        triad_bytes = STREAM_N * 3 * STREAM_REPS * 8
        triad_fraction = triad_bytes / self.total_bytes
        return (triad_bytes / (elapsed_seconds * triad_fraction)) / 1e6

    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        """The four STREAM kernels, for real, at reduced scale."""
        rng = self.kernel_rng(rng)
        n = 1 << 20
        a0 = rng.random(n)
        a = a0.copy()
        b = rng.random(n)
        c = np.empty_like(a)
        scalar = 3.0
        c[:] = a  # copy
        b[:] = scalar * c  # scale
        c[:] = a + b  # add
        a[:] = b + scalar * c  # triad
        # Validate the chain algebraically from the untouched input:
        # b = 3*a0, c = a0 + 3*a0 = 4*a0, a = 3*a0 + 3*4*a0 = 15*a0.
        expect = 15.0 * a0
        return {
            "n": n,
            "triad_max_error": float(np.max(np.abs(a - expect))),
            "checksum": float(a.sum()),
        }
