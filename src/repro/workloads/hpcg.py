"""HPCG (Fig. 7): preconditioned conjugate gradient benchmark.

HPCG solves a 27-point 3D Poisson problem with a multigrid-preconditioned
CG iteration; it is bandwidth- and latency-bound with irregular gather
traffic, which is why it is the mini-app where the paper's baseline
virtualization penalty (~1.4 %, constant across feature configurations)
is visible.
"""

from __future__ import annotations

import numpy as np

from repro.hw.tlb import AccessPattern
from repro.workloads.base import Phase, Workload

#: Table I parameters: nx ny nz = 104, runtime budget 330 s.
HPCG_DIM = 104
HPCG_TIME = 330

_ROWS = HPCG_DIM**3
_NNZ = 27 * _ROWS
#: Matrix (values + indices) + vectors, bytes.
_FOOTPRINT = _NNZ * 12 + 8 * _ROWS * 6
#: CG iterations executed inside the time budget (model).
_ITERATIONS = 500
#: MG preconditioner multiplies per-iteration work by ~4x over plain CG.
_WORK_FACTOR = 4.0
_FLOPS_PER_ITER = 2.0 * _NNZ * _WORK_FACTOR
_TOTAL_FLOPS = _FLOPS_PER_ITER * _ITERATIONS
#: Sustained cycles per flop for sparse kernels on the simulated part.
_CYCLES_PER_FLOP = 1.25
#: One DRAM line reference per ~64 bytes of matrix streamed per iteration.
_DRAM_REFS = (_FOOTPRINT // 64) * _ITERATIONS


class Hpcg(Workload):
    """Table I row 4."""

    name = "HPCG"
    version = "Revision 3.1"
    parameters = "104 104 104 330"
    fom_name = "GFLOP/s"
    higher_is_better = True
    vmx_sensitivity = 0.0075
    ipi_sensitivity = 0.0008
    parallel_efficiency = 0.94

    def phases(self) -> list[Phase]:
        barriers_per_iter = 6.0  # SpMV, MG sweeps, dot products
        return [
            Phase(
                name="cg-iterations",
                total_cycles=_TOTAL_FLOPS * _CYCLES_PER_FLOP,
                total_mem_accesses=float(_DRAM_REFS),
                footprint_bytes=_FOOTPRINT,
                pattern=AccessPattern.SPARSE_GATHER,
                mem_bound_frac=0.85,
                total_ipis=_ITERATIONS * barriers_per_iter,
            )
        ]

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        return _TOTAL_FLOPS / elapsed_seconds / 1e9

    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        """A real CG solve of the 7-point Poisson operator on a small
        grid, matrix-free (the operator applied as a stencil)."""
        rng = self.kernel_rng(rng)
        n = 20  # 20^3 grid

        def poisson_apply(x: np.ndarray) -> np.ndarray:
            u = x.reshape(n, n, n)
            out = 6.0 * u.copy()
            out[1:, :, :] -= u[:-1, :, :]
            out[:-1, :, :] -= u[1:, :, :]
            out[:, 1:, :] -= u[:, :-1, :]
            out[:, :-1, :] -= u[:, 1:, :]
            out[:, :, 1:] -= u[:, :, :-1]
            out[:, :, :-1] -= u[:, :, 1:]
            return out.ravel()

        b = rng.random(n**3)
        x = np.zeros_like(b)
        r = b - poisson_apply(x)
        p = r.copy()
        rs_old = float(r @ r)
        b_norm = float(np.linalg.norm(b))
        iterations = 0
        for iterations in range(1, 301):
            ap = poisson_apply(p)
            alpha = rs_old / float(p @ ap)
            x += alpha * p
            r -= alpha * ap
            rs_new = float(r @ r)
            if np.sqrt(rs_new) / b_norm < 1e-8:
                break
            p = r + (rs_new / rs_old) * p
            rs_old = rs_new
        residual = float(
            np.linalg.norm(b - poisson_apply(x)) / b_norm
        )
        return {
            "grid": f"{n}^3",
            "iterations": iterations,
            "relative_residual": residual,
            "converged": residual < 1e-7,
        }
