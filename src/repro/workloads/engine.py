"""The workload execution engine.

Executes a workload's machine profile on a booted enclave and returns
the elapsed time with a full cycle breakdown.  All virtualization costs
are derived from the enclave's *actual* Covirt context — the VMCS
controls, the EPT's real entry sizes, the effective IPI mode — so the
engine has no per-configuration special cases: change the config, get
the mechanistically implied timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import Feature
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.hw.tlb import AccessPattern, estimate_miss_rate
from repro.kitten.kernel import HOUSEKEEPING_TICK_CYCLES
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.pisces.enclave import Enclave
from repro.vmx.vapic import VapicMode
from repro.workloads.base import Phase, Workload, WorkloadResult

#: Cores per socket needed to saturate the socket's DRAM bandwidth on
#: the simulated part (low-clocked Broadwell: memory outruns few cores).
BANDWIDTH_SATURATION_CORES = 3.0

#: How much of a poorly-placed working set actually spills to the remote
#: zone (first-touch placement keeps most accesses local).
NUMA_SPILL_FACTOR = 0.6

#: Cost of an unvirtualized ICR write + fabric traversal.
NATIVE_IPI_SEND = 150

#: How much of a remote DRAM reference's extra latency actually stalls
#: the core, by access pattern: streaming prefetchers hide nearly all
#: of it, dependent random chains eat all of it.
NUMA_LATENCY_EXPOSURE = {
    AccessPattern.SEQUENTIAL: 0.15,
    AccessPattern.STRIDED: 0.3,
    AccessPattern.SPARSE_GATHER: 0.6,
    AccessPattern.RANDOM: 1.0,
}


@dataclass
class _EnclaveShape:
    ncores: int
    cores_by_zone: dict[int, int]
    mem_by_zone: dict[int, int]

    @property
    def zones_used(self) -> int:
        return len(self.cores_by_zone)


class ExecutionEngine:
    """Runs workload profiles on enclaves."""

    def __init__(self, machine: Machine, costs: CostModel = DEFAULT_COSTS) -> None:
        self.machine = machine
        self.costs = costs

    # -- enclave introspection -------------------------------------------

    def _shape(self, enclave: Enclave) -> _EnclaveShape:
        cores_by_zone: dict[int, int] = {}
        for core_id in enclave.assignment.core_ids:
            zone = self.machine.core(core_id).zone
            cores_by_zone[zone] = cores_by_zone.get(zone, 0) + 1
        mem_by_zone: dict[int, int] = {}
        for region in enclave.assignment.regions:
            zone = self.machine.topology.zone_of_addr(region.start)
            mem_by_zone[zone] = mem_by_zone.get(zone, 0) + region.size
        return _EnclaveShape(
            ncores=len(enclave.assignment.core_ids),
            cores_by_zone=cores_by_zone,
            mem_by_zone=mem_by_zone,
        )

    @staticmethod
    def layout_label(shape: _EnclaveShape) -> str:
        return f"{shape.ncores}c/{shape.zones_used}n"

    def _config(self, enclave: Enclave):
        """(label, ctx) for the enclave's protection state."""
        ctx = enclave.virt_context
        if ctx is None:
            return "native", None
        return ctx.config.label(), ctx

    def _ept_extra_per_miss(self, ctx) -> float:
        """Byte-weighted nested-walk penalty from the EPT's real entries."""
        if ctx is None or ctx.ept is None:
            return 0.0
        counts = ctx.ept.entry_counts()
        total = sum(size * n for size, n in counts.items())
        if total == 0:
            return self.costs.ept_extra_4k
        weighted = sum(
            size * n * self.costs.ept_extra_per_miss(size)
            for size, n in counts.items()
        )
        return weighted / total

    # -- the cost model ----------------------------------------------------

    def _phase_cycles(
        self,
        phase: Phase,
        workload: Workload,
        shape: _EnclaveShape,
        ctx,
        breakdown: dict[str, float],
        zone_pressure: dict[int, float] | None = None,
    ) -> float:
        """Per-core cycles this phase takes on this enclave."""
        n = shape.ncores
        eff = workload.efficiency_at(n)
        compute = phase.total_cycles / n / eff
        accesses = phase.total_mem_accesses / n

        # TLB behaviour: guest-page-size walk cost exists natively too;
        # virtualization only adds the nested-walk increment.
        per_core_fp = (
            phase.footprint_bytes
            if phase.shared_footprint
            else phase.footprint_bytes // max(n, 1)
        )
        miss_rate = estimate_miss_rate(
            per_core_fp, phase.pattern, page_size=phase.page_size
        )
        tlb = accesses * miss_rate * self.costs.tlb_miss_native
        ept = 0.0
        if ctx is not None and ctx.config.has(Feature.MEMORY):
            ept = accesses * miss_rate * self._ept_extra_per_miss(ctx)

        # NUMA placement: accesses that spill to the remote zone.
        total_mem = sum(shape.mem_by_zone.values()) or 1
        remote_frac = 0.0
        for zone, ncores_z in shape.cores_by_zone.items():
            local_share = shape.mem_by_zone.get(zone, 0) / total_mem
            remote_frac += (ncores_z / n) * (1.0 - local_share)
        numa = (
            accesses
            * remote_frac
            * NUMA_SPILL_FACTOR
            * NUMA_LATENCY_EXPOSURE[phase.pattern]
            * self.costs.remote_numa_extra
        )

        # Socket bandwidth contention on the memory-bound fraction.  With
        # co-running enclaves, pressure from *everyone's* cores in the
        # zone counts (zone_pressure overrides the lone-enclave view).
        if zone_pressure is not None:
            worst_packing = max(
                zone_pressure.get(z, 0.0) for z in shape.cores_by_zone
            )
        else:
            worst_packing = max(shape.cores_by_zone.values())
        contention = max(1.0, worst_packing / BANDWIDTH_SATURATION_CORES)
        bandwidth = compute * phase.mem_bound_frac * (contention - 1.0)

        # IPI traffic: send + receive path depends on the IPI feature.
        ipis = phase.total_ipis / n
        if ctx is not None and ctx.config.has(Feature.IPI):
            mode = next(iter(ctx.vmcs.values())).controls.vapic_mode
            send = self.costs.exit_cost(emulation=True)  # trapped ICR write
            if mode is VapicMode.POSTED:
                recv = self.costs.posted_delivery
            else:
                recv = self.costs.exit_cost() + self.costs.irq_injection
            ipi = ipis * (send + recv + self.costs.native_irq_dispatch)
            ipi += compute * workload.ipi_sensitivity
        else:
            ipi = ipis * (NATIVE_IPI_SEND + self.costs.native_irq_dispatch)

        # Baseline VMX non-root penalty (calibrated per workload).
        baseline = compute * workload.vmx_sensitivity if ctx is not None else 0.0

        breakdown["compute"] += compute
        breakdown["tlb"] += tlb
        breakdown["ept"] += ept
        breakdown["numa"] += numa
        breakdown["bandwidth"] += bandwidth
        breakdown["ipi"] += ipi
        breakdown["baseline"] += baseline
        return compute + tlb + ept + numa + bandwidth + ipi + baseline

    def _timer_cycles(self, duration: float, ctx) -> float:
        """Housekeeping-tick cost over ``duration`` cycles."""
        ticks = duration / HOUSEKEEPING_TICK_CYCLES
        per_tick = self.costs.housekeeping_tick
        if ctx is None:
            per_tick += self.costs.native_irq_dispatch
        else:
            mode = next(iter(ctx.vmcs.values())).controls.vapic_mode
            if mode is VapicMode.DISABLED:
                per_tick += self.costs.native_irq_dispatch
            else:
                # The APIC timer is a hardware interrupt: it exits even
                # under posted mode (Section IV-C).
                per_tick += self.costs.exit_cost() + self.costs.irq_injection
        return ticks * per_tick

    # -- public API ------------------------------------------------------

    def run(
        self,
        workload: Workload,
        enclave: Enclave,
        zone_pressure: dict[int, float] | None = None,
    ) -> WorkloadResult:
        """Execute the workload's profile on the enclave."""
        enclave.require_running()
        shape = self._shape(enclave)
        label, ctx = self._config(enclave)
        from repro.obs import metric_names

        bsp = enclave.assignment.core_ids[0]
        workload_span = self.machine.obs.tracer.begin(
            f"workload.{workload.name}",
            category="workload",
            track="workload",
            now=self.machine.core(bsp).read_tsc,
            config=label,
        )
        breakdown: dict[str, float] = {
            k: 0.0
            for k in (
                "compute",
                "tlb",
                "ept",
                "numa",
                "bandwidth",
                "ipi",
                "baseline",
                "timer",
            )
        }
        per_core = 0.0
        for phase in workload.phases():
            per_core += self._phase_cycles(
                phase, workload, shape, ctx, breakdown, zone_pressure
            )
        # Timer cost depends on duration; one fixpoint refinement is
        # plenty (ticks are rare by LWK design).
        timer = self._timer_cycles(per_core, ctx)
        timer = self._timer_cycles(per_core + timer, ctx)
        breakdown["timer"] = timer
        elapsed = int(per_core + timer)
        # Time actually passes on the enclave's cores.
        for core_id in enclave.assignment.core_ids:
            self.machine.core(core_id).advance(elapsed)
        self.machine.obs.tracer.end(
            workload_span, now=self.machine.core(bsp).read_tsc
        )
        self.machine.obs.metrics.counter(
            metric_names.WORKLOAD_RUNS, "workload executions"
        ).inc(workload=workload.name, config=label)
        from repro.hw.clock import CYCLES_PER_SECOND

        seconds = elapsed / CYCLES_PER_SECOND
        return WorkloadResult(
            workload=workload.name,
            config_label=label,
            layout_label=self.layout_label(shape),
            ncores=shape.ncores,
            elapsed_cycles=elapsed,
            fom=workload.figure_of_merit(seconds, shape.ncores),
            fom_name=workload.fom_name,
            higher_is_better=workload.higher_is_better,
            breakdown=breakdown,
        )

    def run_concurrent(
        self, assignments: list[tuple[Workload, Enclave]]
    ) -> list[WorkloadResult]:
        """Co-run workloads in separate enclaves simultaneously.

        Each enclave still computes its own profile, but socket
        bandwidth pressure aggregates the *memory-hungry* cores of every
        co-runner sharing a zone — the cross-enclave interference that
        hardware partitioning bounds (interference flows only through
        the shared memory system, never through CPUs or the OS).
        """
        pressure: dict[int, float] = {}
        for workload, enclave in assignments:
            enclave.require_running()
            shape = self._shape(enclave)
            phases = workload.phases()
            total = sum(p.total_cycles for p in phases) or 1.0
            mem_frac = sum(
                p.total_cycles * p.mem_bound_frac for p in phases
            ) / total
            for zone, ncores in shape.cores_by_zone.items():
                pressure[zone] = pressure.get(zone, 0.0) + ncores * mem_frac
        return [
            self.run(workload, enclave, zone_pressure=pressure)
            for workload, enclave in assignments
        ]
