"""Workload abstractions."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

from repro.hw.memory import PAGE_SIZE
from repro.hw.tlb import AccessPattern


@dataclass(frozen=True)
class Phase:
    """One execution phase of a workload, as the machine sees it.

    Quantities are *aggregate over all cores*; the engine divides by the
    core count and applies the workload's parallel efficiency.
    """

    name: str
    #: Ideal aggregate compute cycles (excludes TLB-walk and NUMA costs,
    #: which the engine adds for the actual machine configuration).
    total_cycles: float
    #: Aggregate DRAM references issued.
    total_mem_accesses: float
    #: Bytes the phase's working set spans (drives TLB miss rate).
    footprint_bytes: int
    pattern: AccessPattern
    #: Fraction of the phase's time that is memory-bandwidth bound
    #: (subject to per-socket bandwidth contention).
    mem_bound_frac: float = 0.5
    #: Guest page size backing the working set.
    page_size: int = PAGE_SIZE
    #: Aggregate inter-core IPIs sent during the phase (OpenMP barriers,
    #: work-stealing handoffs, progress signalling).
    total_ipis: float = 0.0
    #: True when every core walks the whole footprint (RandomAccess's
    #: shared table); False when the footprint partitions across cores.
    shared_footprint: bool = False

    def __post_init__(self) -> None:
        if self.total_cycles < 0 or self.total_mem_accesses < 0:
            raise ValueError("phase quantities must be non-negative")
        if not 0.0 <= self.mem_bound_frac <= 1.0:
            raise ValueError("mem_bound_frac must be in [0, 1]")


@dataclass
class WorkloadResult:
    """Outcome of one workload execution on a simulated enclave."""

    workload: str
    config_label: str
    layout_label: str
    ncores: int
    elapsed_cycles: int
    #: Figure of merit in the workload's native unit (MB/s, GUP/s, ...).
    fom: float
    fom_name: str
    higher_is_better: bool
    #: Cycle breakdown for analysis: {"compute", "tlb", "ept", "ipi",
    #: "timer", "numa", "baseline"}.
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def elapsed_seconds(self) -> float:
        from repro.hw.clock import CYCLES_PER_SECOND

        return self.elapsed_cycles / CYCLES_PER_SECOND

    def overhead_vs(self, native: "WorkloadResult") -> float:
        """Relative slowdown versus a native run (positive = slower)."""
        return self.elapsed_cycles / native.elapsed_cycles - 1.0


class Workload(abc.ABC):
    """A Table-I benchmark."""

    #: Table I columns.
    name: str = ""
    version: str = ""
    parameters: str = ""

    #: Empirical baseline VMX non-root penalty (see DESIGN.md §5): the
    #: configuration-independent slowdown some workloads show merely for
    #: running under virtualization (HPCG's constant ~1.4 %).
    vmx_sensitivity: float = 0.0

    #: Empirical additional penalty when IPI protection (vAPIC) is
    #: enabled, beyond the mechanistic per-IPI trap costs.  The paper
    #: observes (but does not attribute) such a gap on RandomAccess;
    #: see DESIGN.md §5.
    ipi_sensitivity: float = 0.0

    fom_name: str = "seconds"
    higher_is_better: bool = False

    #: Per-doubling parallel efficiency (1.0 = perfect scaling).
    parallel_efficiency: float = 0.97

    @abc.abstractmethod
    def phases(self) -> list[Phase]:
        """The machine profile of one run."""

    @abc.abstractmethod
    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        """Run a (scaled-down) real implementation of the benchmark's
        numerical core; returns named, checkable results.

        With ``rng=None`` the kernel draws from the repo-wide named
        stream ``workloads.<name>`` (see :mod:`repro.fuzz.rng`), so a
        bare ``Stream().reference_kernel()`` is reproducible and every
        failure report can quote one seed."""

    def kernel_rng(self, rng: "np.random.Generator | None") -> np.random.Generator:
        """Resolve the kernel's RNG: the caller's, or this workload's
        named stream under the repo default seed."""
        if rng is not None:
            return rng
        from repro.fuzz.rng import named_stream

        return named_stream(f"workloads.{self.name}").numpy_generator()

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        """Convert elapsed time into the workload's reporting unit."""
        return elapsed_seconds

    def efficiency_at(self, ncores: int) -> float:
        """Parallel efficiency at a core count."""
        if ncores <= 1:
            return 1.0
        return self.parallel_efficiency ** math.log2(ncores)

    def table_row(self) -> tuple[str, str, str]:
        """(name, version, parameters) — Table I."""
        return (self.name, self.version, self.parameters)
