"""RandomAccess / GUPS (Fig. 5b): the TLB-hostile microbenchmark.

The HPCC RandomAccess kernel XORs pseudo-random values into a giant
table; almost every update misses the TLB, which makes it the paper's
most EPT-sensitive workload (1.8 % with memory protection, 3.1 % with
memory + IPI protection).
"""

from __future__ import annotations

import numpy as np

from repro.hw.tlb import AccessPattern
from repro.workloads.base import Phase, Workload

#: Table I parameter "25": log2 of the table size in 8-byte words.
TABLE_BITS = 25
TABLE_WORDS = 1 << TABLE_BITS  # 256 MiB table
#: HPCC runs 4 updates per table word.
UPDATES = 4 * TABLE_WORDS

#: DRAM-latency-bound cycles per random update (some MLP assumed).
CYCLES_PER_UPDATE = 180.0

#: OpenMP work distribution: one chunk handoff (IPI) per this many
#: updates under dynamic scheduling.
UPDATES_PER_HANDOFF = 2_048

#: The classic GUPS self-check tolerates up to 1 % erroneous updates
#: (from unsynchronised concurrent XORs).
ERROR_TOLERANCE = 0.01

POLY = 0x0000000000000007  # HPCC's LCG polynomial (GF(2) recurrence)


def hpcc_random_stream(count: int, seed: int = 1) -> np.ndarray:
    """The HPCC pseudo-random sequence a_{i+1} = (a_i << 1) ^ (POLY if msb).

    Vectorised enough for the reference kernel's table sizes.
    """
    out = np.empty(count, dtype=np.uint64)
    a = np.uint64(seed)
    one = np.uint64(1)
    poly = np.uint64(POLY)
    msb = np.uint64(1) << np.uint64(63)
    for i in range(count):
        a = np.uint64((a << one) ^ (poly if (a & msb) else np.uint64(0)))
        out[i] = a
    return out


class RandomAccess(Workload):
    """Table I row 3."""

    name = "RandomAccess_OMP"
    version = "10/28/04"
    parameters = "25"
    fom_name = "GUP/s"
    higher_is_better = True
    vmx_sensitivity = 0.0005
    #: The +1.3 % the paper observes with IPI protection enabled on top
    #: of memory protection but does not attribute; reproduced as an
    #: empirical factor (see DESIGN.md §5).
    ipi_sensitivity = 0.011
    parallel_efficiency = 0.96

    def phases(self) -> list[Phase]:
        return [
            Phase(
                name="updates",
                total_cycles=UPDATES * CYCLES_PER_UPDATE,
                total_mem_accesses=float(UPDATES),
                footprint_bytes=TABLE_WORDS * 8,
                pattern=AccessPattern.RANDOM,
                mem_bound_frac=0.9,
                shared_footprint=True,  # all threads hit the whole table
                total_ipis=UPDATES / UPDATES_PER_HANDOFF,
            )
        ]

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        return UPDATES / elapsed_seconds / 1e9

    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        """Real GUPS at reduced scale, with the standard self-check:
        applying the same update stream twice returns the table to its
        initial state (XOR is an involution)."""
        rng = self.kernel_rng(rng)
        bits = 16
        words = 1 << bits
        table = np.arange(words, dtype=np.uint64)
        stream = hpcc_random_stream(4 * words)
        idx = (stream & np.uint64(words - 1)).astype(np.int64)
        # First pass of updates...
        for i, v in zip(idx, stream):
            table[i] ^= v
        # ...and the verification pass undoes them.
        for i, v in zip(idx, stream):
            table[i] ^= v
        errors = int(np.count_nonzero(table != np.arange(words, dtype=np.uint64)))
        return {
            "words": words,
            "updates": 4 * words,
            "errors": errors,
            "error_rate": errors / words,
            "passed": errors / words <= ERROR_TOLERANCE,
        }
