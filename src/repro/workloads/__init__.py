"""The evaluation workloads (Table I) and their execution engine.

Each workload exists twice, deliberately:

* as a **reference kernel** — a real numpy implementation of the
  benchmark's numerical core (STREAM triad, GUPS updates, CG solves,
  Lennard-Jones MD, ...) used by tests and examples to show the
  workloads are genuine codes with checkable results; and
* as a **machine profile** — a set of :class:`~repro.workloads.base.Phase`
  descriptors (cycles, memory accesses, footprint, access pattern, IPI
  traffic) that the engine executes against a simulated enclave to
  obtain the timing the paper's figures report.

The engine computes Covirt's overhead *mechanistically* from the
enclave's virtualization configuration: EPT-walk penalties from TLB
miss rates, exit costs for trapped IPIs and interrupts, NUMA and
bandwidth-contention effects from the hardware layout.
"""

from repro.workloads.base import Phase, Workload, WorkloadResult
from repro.workloads.engine import ExecutionEngine
from repro.workloads.selfish import SelfishDetour
from repro.workloads.stream import Stream
from repro.workloads.randomaccess import RandomAccess
from repro.workloads.hpcg import Hpcg
from repro.workloads.minife import MiniFE
from repro.workloads.lammps import Lammps, LAMMPS_PROBLEMS
from repro.workloads.registry import BENCHMARK_TABLE, workload_by_name

__all__ = [
    "Phase",
    "Workload",
    "WorkloadResult",
    "ExecutionEngine",
    "SelfishDetour",
    "Stream",
    "RandomAccess",
    "Hpcg",
    "MiniFE",
    "Lammps",
    "LAMMPS_PROBLEMS",
    "BENCHMARK_TABLE",
    "workload_by_name",
]
