"""LAMMPS (Fig. 8): molecular-dynamics application benchmarks.

The paper runs the default LAMMPS benchmark scripts — lj, eam, chain,
and chute — on an 8-core / 2-NUMA-zone enclave and reports loop times.
lj/eam/chain show near-identical times across Covirt configurations;
chute is the most protection-sensitive (it has the most irregular,
rapidly changing neighbor structure and the most load-balancing
signalling).

The reference kernel is a genuine small MD engine: velocity-Verlet
integration with per-problem physics (pair LJ, a simple EAM embedding
term, FENE-style bonded chains, and gravity-driven granular flow for
chute), validated by energy behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.tlb import AccessPattern
from repro.workloads.base import Phase, Workload


@dataclass(frozen=True)
class LammpsProblem:
    """One of the stock benchmark scripts."""

    key: str
    atoms: int
    steps: int
    #: Cycles per atom-step (neighbor + force + integrate).
    cycles_per_atom_step: float
    footprint_bytes: int
    pattern: AccessPattern
    mem_bound_frac: float
    #: Load-balance / halo-exchange IPIs per step (aggregate).
    ipis_per_step: float
    vmx_sensitivity: float
    ipi_sensitivity: float


LAMMPS_PROBLEMS: dict[str, LammpsProblem] = {
    "lj": LammpsProblem(
        key="lj",
        atoms=32_000,
        steps=100_000,
        cycles_per_atom_step=55.0,
        footprint_bytes=48 << 20,
        pattern=AccessPattern.SPARSE_GATHER,
        mem_bound_frac=0.35,
        ipis_per_step=8.0,
        vmx_sensitivity=0.003,
        ipi_sensitivity=0.0005,
    ),
    "eam": LammpsProblem(
        key="eam",
        atoms=32_000,
        steps=100_000,
        cycles_per_atom_step=110.0,
        footprint_bytes=80 << 20,
        pattern=AccessPattern.SPARSE_GATHER,
        mem_bound_frac=0.40,
        ipis_per_step=8.0,
        vmx_sensitivity=0.003,
        ipi_sensitivity=0.0005,
    ),
    "chain": LammpsProblem(
        key="chain",
        atoms=32_000,
        steps=100_000,
        cycles_per_atom_step=28.0,
        footprint_bytes=40 << 20,
        pattern=AccessPattern.SPARSE_GATHER,
        mem_bound_frac=0.30,
        ipis_per_step=8.0,
        vmx_sensitivity=0.002,
        ipi_sensitivity=0.0005,
    ),
    # Granular flow: constantly migrating atoms, irregular neighbor
    # lists, frequent rebalancing — the protection-sensitive one.
    "chute": LammpsProblem(
        key="chute",
        atoms=32_000,
        steps=100_000,
        cycles_per_atom_step=35.0,
        footprint_bytes=320 << 20,
        pattern=AccessPattern.RANDOM,
        mem_bound_frac=0.55,
        ipis_per_step=12.0,
        vmx_sensitivity=0.004,
        ipi_sensitivity=0.004,
    ),
}


class Lammps(Workload):
    """Table I row 6 — parameterised by benchmark script."""

    version = "3 Mar 2020"
    parameters = "None"
    fom_name = "loop time (s)"
    higher_is_better = False
    parallel_efficiency = 0.93

    def __init__(self, problem: str = "lj") -> None:
        if problem not in LAMMPS_PROBLEMS:
            raise ValueError(
                f"unknown LAMMPS problem {problem!r}; "
                f"choose from {sorted(LAMMPS_PROBLEMS)}"
            )
        self.problem = LAMMPS_PROBLEMS[problem]
        self.name = f"LAMMPS-{problem}"
        self.vmx_sensitivity = self.problem.vmx_sensitivity
        self.ipi_sensitivity = self.problem.ipi_sensitivity

    def phases(self) -> list[Phase]:
        p = self.problem
        atom_steps = float(p.atoms) * p.steps
        return [
            Phase(
                name=f"{p.key}-loop",
                total_cycles=atom_steps * p.cycles_per_atom_step,
                # Neighbor gathers: ~0.4 DRAM line refs per atom-step.
                total_mem_accesses=atom_steps * 0.4,
                footprint_bytes=p.footprint_bytes,
                pattern=p.pattern,
                mem_bound_frac=p.mem_bound_frac,
                total_ipis=float(p.steps) * p.ipis_per_step,
                shared_footprint=p.key == "chute",
            )
        ]

    def figure_of_merit(self, elapsed_seconds: float, ncores: int) -> float:
        return elapsed_seconds  # LAMMPS reports the loop time directly

    # -- the real MD engine ---------------------------------------------

    def reference_kernel(self, rng: "np.random.Generator | None" = None) -> dict:
        rng = self.kernel_rng(rng)
        n = 125
        steps = 60
        dt = 0.004
        box = 8.0
        # fcc-ish lattice start to avoid overlaps.
        grid = np.linspace(0.5, box - 0.5, 5)
        pos = np.array(
            [(x, y, z) for x in grid for y in grid for z in grid]
        )[:n].astype(float)
        pos += rng.normal(scale=0.02, size=pos.shape)
        vel = rng.normal(scale=0.3, size=pos.shape)
        vel -= vel.mean(axis=0)  # zero net momentum
        masses = np.ones(n)
        gravity = self.problem.key == "chute"
        bonded = self.problem.key == "chain"
        eam = self.problem.key == "eam"
        bonds = (
            np.array([(i, i + 1) for i in range(0, n - 1) if (i + 1) % 5 != 0])
            if bonded
            else None
        )

        def forces(pos: np.ndarray) -> tuple[np.ndarray, float]:
            delta = pos[:, None, :] - pos[None, :, :]
            if not gravity:  # periodic box for bulk systems
                delta -= box * np.round(delta / box)
            r2 = np.einsum("ijk,ijk->ij", delta, delta)
            np.fill_diagonal(r2, np.inf)
            cutoff2 = 2.5**2
            mask = r2 < cutoff2
            inv_r2 = np.where(mask, 1.0 / r2, 0.0)
            inv_r6 = inv_r2**3
            # Lennard-Jones 12-6.
            f_mag = 24.0 * inv_r2 * (2.0 * inv_r6**2 - inv_r6)
            force = np.einsum("ij,ijk->ik", f_mag, delta)
            pot = float(np.sum(4.0 * (inv_r6**2 - inv_r6)[mask]) / 2.0)
            if eam:
                # Toy EAM: density from neighbors, embedding F = -sqrt(rho).
                rho = np.sum(np.where(mask, inv_r6, 0.0), axis=1) + 1e-12
                pot += float(np.sum(-np.sqrt(rho)))
                demb = -0.5 / np.sqrt(rho)
                pair_rho_grad = -6.0 * inv_r6 * inv_r2  # d(inv_r6)/dr · r̂ terms
                coeff = (demb[:, None] + demb[None, :]) * pair_rho_grad
                force -= np.einsum("ij,ijk->ik", np.where(mask, coeff, 0.0), delta)
            if bonds is not None:
                d = pos[bonds[:, 0]] - pos[bonds[:, 1]]
                d -= box * np.round(d / box)
                r = np.linalg.norm(d, axis=1)
                k_spring, r0 = 30.0, 1.2
                fb = -k_spring * (r - r0)[:, None] * d / r[:, None]
                np.add.at(force, bonds[:, 0], fb)
                np.add.at(force, bonds[:, 1], -fb)
                pot += float(np.sum(0.5 * k_spring * (r - r0) ** 2))
            if gravity:
                force[:, 2] -= 1.0 * masses  # g along -z
                pot += float(np.sum(masses * 1.0 * pos[:, 2]))
                # Bottom wall: stiff repulsion below z=0.2.
                pen = np.maximum(0.0, 0.2 - pos[:, 2])
                force[:, 2] += 200.0 * pen
                pot += float(np.sum(100.0 * pen**2))
            return force, pot

        f, pot = forces(pos)
        energies = []
        for _ in range(steps):
            vel += 0.5 * dt * f / masses[:, None]
            pos += dt * vel
            if not gravity:
                pos %= box
            f, pot = forces(pos)
            vel += 0.5 * dt * f / masses[:, None]
            kin = 0.5 * float(np.sum(masses[:, None] * vel**2))
            energies.append(kin + pot)
        energies = np.array(energies)
        scale = max(1.0, float(np.mean(np.abs(energies))))
        drift = float(abs(energies[-1] - energies[0]) / scale)
        return {
            "problem": self.problem.key,
            "atoms": n,
            "steps": steps,
            "energy_first": float(energies[0]),
            "energy_last": float(energies[-1]),
            "relative_drift": drift,
            # Conservative systems should conserve energy; the damped /
            # driven chute only needs to stay bounded.
            "conserved": drift < 0.05 or gravity,
        }
