"""The Pisces kernel module: host-side enclave lifecycle and the ioctl ABI.

This is the integration surface Covirt piggy-backs on (Section IV-C):

* :class:`ControlHooks` exposes the resource-management control paths as
  callback points — memory add/remove, enclave boot, teardown — that the
  Covirt controller subscribes to;
* the boot protocol is pluggable, so Covirt can interpose its hypervisor
  into the CPU boot path;
* :meth:`PiscesKmod.ioctl` is the kernel ABI, to which Covirt registers
  a new command range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, page_align_up
from repro.linuxhost.host import LinuxHost, OFFLINE_OWNER
from repro.pisces.bootparams import PiscesBootParams
from repro.pisces.enclave import Enclave, EnclaveState, FaultRecord, NativeAccessPort
from repro.pisces.resources import ResourceAssignment, ResourceSpec, enclave_owner
from repro.pisces.trampoline import (
    BootProtocol,
    NativeBootProtocol,
    boot_params_address_for,
)


class PiscesIoctl(enum.IntEnum):
    """Base Pisces ioctl commands."""

    CREATE_ENCLAVE = 100
    BOOT_ENCLAVE = 101
    DESTROY_ENCLAVE = 102
    ADD_MEMORY = 103
    REMOVE_MEMORY = 104
    ENCLAVE_STATUS = 105


#: First command id of the range Covirt's extension registers.
COVIRT_IOCTL_BASE = 200


class PiscesError(Exception):
    """Kernel-module level failure (bad enclave id, bad state, ...)."""


@dataclass
class ControlHooks:
    """Callback points on the resource-management control paths.

    Hook signatures:

    * ``pre_memory_add(enclave, region)`` — before the page-frame list is
      transmitted to the co-kernel (Covirt maps the EPT here, so memory
      is *mapped before the guest learns about it*).
    * ``post_memory_remove(enclave, region)`` — after the co-kernel has
      acknowledged removal but before completion is reported upward
      (Covirt unmaps the EPT and flushes TLBs here, so memory is
      *unreachable before it is reclaimed*).
    * ``pre_boot(enclave)`` / ``post_boot(enclave)``
    * ``on_teardown(enclave)`` — enclave resources about to be reclaimed.
    """

    pre_memory_add: list[Callable[[Enclave, MemoryRegion], None]] = field(
        default_factory=list
    )
    post_memory_remove: list[Callable[[Enclave, MemoryRegion], None]] = field(
        default_factory=list
    )
    pre_boot: list[Callable[[Enclave], None]] = field(default_factory=list)
    post_boot: list[Callable[[Enclave], None]] = field(default_factory=list)
    on_teardown: list[Callable[[Enclave], None]] = field(default_factory=list)

    @staticmethod
    def _fire(hooks: list[Callable[..., None]], *args: Any) -> None:
        for hook in hooks:
            hook(*args)


class PiscesKmod:
    """The Pisces kernel module loaded into the host Linux OS."""

    MODULE_NAME = "pisces"

    def __init__(self, machine: Machine, host: LinuxHost) -> None:
        self.machine = machine
        self.host = host
        self.enclaves: dict[int, Enclave] = {}
        self._next_id = 1
        self.hooks = ControlHooks()
        self.boot_protocol: BootProtocol = NativeBootProtocol(machine)
        self._ioctl_extensions: dict[int, Callable[[Any], Any]] = {}
        host.load_module(self.MODULE_NAME, self)

    # -- ioctl ABI ---------------------------------------------------------

    def register_ioctl(self, cmd: int, handler: Callable[[Any], Any]) -> None:
        """Extend the ABI (Covirt adds its command range here)."""
        if cmd < COVIRT_IOCTL_BASE:
            raise PiscesError(f"extension ioctl {cmd} collides with base range")
        if cmd in self._ioctl_extensions:
            raise PiscesError(f"ioctl {cmd} already registered")
        self._ioctl_extensions[cmd] = handler

    def ioctl(self, cmd: int, arg: Any = None) -> Any:
        """Dispatch a command exactly as the character device would."""
        if cmd == PiscesIoctl.CREATE_ENCLAVE:
            return self.create_enclave(arg)
        if cmd == PiscesIoctl.BOOT_ENCLAVE:
            return self.boot_enclave(arg)
        if cmd == PiscesIoctl.DESTROY_ENCLAVE:
            return self.destroy_enclave(arg)
        if cmd == PiscesIoctl.ADD_MEMORY:
            enclave_id, size, zone = arg
            return self.add_memory(enclave_id, size, zone)
        if cmd == PiscesIoctl.REMOVE_MEMORY:
            enclave_id, region = arg
            return self.remove_memory(enclave_id, region)
        if cmd == PiscesIoctl.ENCLAVE_STATUS:
            return self.enclave(arg).state
        handler = self._ioctl_extensions.get(cmd)
        if handler is None:
            raise PiscesError(f"unknown ioctl command {cmd}")
        return handler(arg)

    # -- lifecycle -----------------------------------------------------

    def enclave(self, enclave_id: int) -> Enclave:
        try:
            return self.enclaves[enclave_id]
        except KeyError:
            raise PiscesError(f"no enclave {enclave_id}") from None

    def create_enclave(self, spec: ResourceSpec) -> Enclave:
        """Partition resources out of the host and create an enclave."""
        enclave_id = self._next_id
        self._next_id += 1
        assignment = ResourceAssignment()
        offlined_cores: list[int] = []
        offlined_regions: list[MemoryRegion] = []
        try:
            for zone_id, ncores in sorted(spec.cores_per_zone.items()):
                zone_cores = [
                    c.core_id
                    for c in self.machine.cores_in_zone(zone_id)
                    if self.host.can_offline(c.core_id)
                ]
                if len(zone_cores) < ncores:
                    raise PiscesError(
                        f"zone {zone_id} has {len(zone_cores)} free cores,"
                        f" need {ncores}"
                    )
                chosen = zone_cores[:ncores]
                self.host.offline_cores(chosen)
                offlined_cores += chosen
                assignment.core_ids += chosen
            for zone_id, size in sorted(spec.mem_per_zone.items()):
                if size == 0:
                    continue
                region = self.host.offline_memory(page_align_up(size), zone_id)
                offlined_regions.append(region)
                self.machine.memory.transfer(
                    region, OFFLINE_OWNER, enclave_owner(enclave_id)
                )
                assignment.add_region(region)
        except Exception:
            # Roll back partial partitioning.
            for region in offlined_regions:
                owner = self.machine.memory.region_owner(region)
                if owner == enclave_owner(enclave_id):
                    self.machine.memory.transfer(
                        region, enclave_owner(enclave_id), OFFLINE_OWNER
                    )
                self.host.online_memory_return(region)
            if offlined_cores:
                self.host.online_cores_return(offlined_cores)
            raise
        enclave = Enclave(enclave_id, spec.name, spec, assignment)
        enclave.port = NativeAccessPort(self.machine, enclave, self.host)
        self.enclaves[enclave_id] = enclave
        return enclave

    def boot_enclave(self, enclave_id: int) -> Enclave:
        """Write boot params and bring every assigned core up."""
        enclave = self.enclave(enclave_id)
        if enclave.state is not EnclaveState.CREATED:
            raise PiscesError(f"enclave {enclave_id} already booted")
        enclave.state = EnclaveState.BOOTING
        params = PiscesBootParams(
            enclave_id=enclave.enclave_id,
            core_ids=list(enclave.assignment.core_ids),
            regions=list(enclave.assignment.regions),
        )
        params.write_to(self.machine.memory, boot_params_address_for(enclave))
        enclave.boot_params = params
        ControlHooks._fire(self.hooks.pre_boot, enclave)
        bsp, *aps = enclave.assignment.core_ids
        self.boot_protocol.boot_core(enclave, bsp, is_bsp=True)
        for core_id in aps:
            self.boot_protocol.boot_core(enclave, core_id, is_bsp=False)
        enclave.state = EnclaveState.RUNNING
        ControlHooks._fire(self.hooks.post_boot, enclave)
        return enclave

    # -- dynamic memory (the paths Covirt watches) -------------------------

    def add_memory(self, enclave_id: int, size: int, zone_id: int) -> MemoryRegion:
        """Hot-add memory to a running enclave.

        Order matters and is load-bearing: the ``pre_memory_add`` hook
        fires *before* the page-frame list is transmitted, so under
        Covirt the EPT mapping exists before the co-kernel can touch the
        new memory.
        """
        enclave = self.enclave(enclave_id)
        enclave.require_running()
        region = self.host.offline_memory(page_align_up(size), zone_id)
        self.machine.memory.transfer(region, OFFLINE_OWNER, enclave.owner_label)
        ControlHooks._fire(self.hooks.pre_memory_add, enclave, region)
        # Transmit the page-frame list to the co-kernel.
        assert enclave.kernel is not None
        enclave.kernel.memory_hotplug_add(region)
        enclave.assignment.add_region(region)
        return region

    def remove_memory(self, enclave_id: int, region: MemoryRegion) -> None:
        """Hot-remove memory from a running enclave.

        The co-kernel acknowledges removal first; only then does the
        ``post_memory_remove`` hook fire (Covirt unmaps + flushes) and
        only after *that* does the memory return to the host — so a
        correctly ordered stack never lets reclaimed memory stay
        guest-reachable.
        """
        enclave = self.enclave(enclave_id)
        enclave.require_running()
        if region not in enclave.assignment.regions:
            raise PiscesError(f"{region} is not assigned to enclave {enclave_id}")
        assert enclave.kernel is not None
        enclave.kernel.memory_hotplug_remove(region)  # transmit + ack
        ControlHooks._fire(self.hooks.post_memory_remove, enclave, region)
        enclave.assignment.remove_region(region)
        self.machine.memory.transfer(region, enclave.owner_label, OFFLINE_OWNER)
        self.host.online_memory_return(region)

    # -- teardown ------------------------------------------------------

    def terminate_enclave(self, enclave_id: int, fault: FaultRecord) -> None:
        """Fault-path termination (invoked via Covirt).

        Parks the enclave's cores and records the fault; resource
        reclamation is the master control process's job and happens via
        :meth:`reclaim_enclave`.
        """
        enclave = self.enclave(enclave_id)
        if enclave.state in (EnclaveState.DESTROYED, EnclaveState.FAILED):
            return
        enclave.state = EnclaveState.FAILED
        enclave.fault = fault
        for core_id in enclave.assignment.core_ids:
            self.machine.core(core_id).halt()

    def reclaim_enclave(self, enclave_id: int) -> None:
        """Return a dead enclave's resources to the host."""
        enclave = self.enclave(enclave_id)
        if enclave.state not in (EnclaveState.FAILED, EnclaveState.DESTROYED):
            raise PiscesError(
                f"enclave {enclave_id} is {enclave.state.value}; stop it first"
            )
        ControlHooks._fire(self.hooks.on_teardown, enclave)
        for region in list(enclave.assignment.regions):
            self.machine.memory.transfer(region, enclave.owner_label, OFFLINE_OWNER)
            self.host.online_memory_return(region)
            enclave.assignment.remove_region(region)
        self.host.online_cores_return(list(enclave.assignment.core_ids))
        enclave.assignment.core_ids.clear()

    def destroy_enclave(self, enclave_id: int) -> None:
        """Clean shutdown + reclaim."""
        enclave = self.enclave(enclave_id)
        if enclave.state is EnclaveState.RUNNING:
            assert enclave.kernel is not None
            enclave.kernel.shutdown()
            for core_id in enclave.assignment.core_ids:
                self.machine.core(core_id).halt()
        enclave.state = EnclaveState.DESTROYED
        self.reclaim_enclave(enclave_id)
