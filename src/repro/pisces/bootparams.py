"""Pisces boot-parameter structure.

Pisces passes initial enclave configuration to a co-kernel via a
structure *in memory*; the trampoline hands its address to the kernel
entry point in a register.  We reproduce that: the structure has a real
binary layout, is written into the enclave's first memory region, and
Kitten parses it back out of guest memory at boot.  Covirt's own boot
parameters (``repro.core.bootparams``) wrap this structure unmodified,
exactly as Section IV-C describes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.hw.memory import MemoryRegion, PhysicalMemory

BOOT_PARAMS_MAGIC = 0x50534345  # 'PSCE'

_HEADER = struct.Struct("<IIQII")  # magic, enclave_id, cmdline ptr, ncores, nregions
_CORE = struct.Struct("<I")
_REGION = struct.Struct("<QQI")  # start, size, zone


@dataclass
class PiscesBootParams:
    """The boot-parameter structure for one enclave."""

    enclave_id: int
    core_ids: list[int]
    regions: list[MemoryRegion]
    #: Guest-physical address of the enclave<->host command channel.
    channel_addr: int = 0
    #: Where this structure itself lives in (guest-)physical memory.
    address: int = 0

    def pack(self) -> bytes:
        blob = bytearray()
        blob += _HEADER.pack(
            BOOT_PARAMS_MAGIC,
            self.enclave_id,
            self.channel_addr,
            len(self.core_ids),
            len(self.regions),
        )
        for core_id in self.core_ids:
            blob += _CORE.pack(core_id)
        for region in self.regions:
            blob += _REGION.pack(region.start, region.size, region.zone)
        return bytes(blob)

    @classmethod
    def unpack(cls, data: bytes, address: int = 0) -> "PiscesBootParams":
        magic, enclave_id, channel_addr, ncores, nregions = _HEADER.unpack_from(
            data, 0
        )
        if magic != BOOT_PARAMS_MAGIC:
            raise ValueError(f"bad boot params magic {magic:#x}")
        off = _HEADER.size
        core_ids = []
        for _ in range(ncores):
            (core_id,) = _CORE.unpack_from(data, off)
            core_ids.append(core_id)
            off += _CORE.size
        regions = []
        for _ in range(nregions):
            start, size, zone = _REGION.unpack_from(data, off)
            regions.append(MemoryRegion(start, size, zone))
            off += _REGION.size
        return cls(enclave_id, core_ids, regions, channel_addr, address)

    @property
    def packed_size(self) -> int:
        return (
            _HEADER.size
            + len(self.core_ids) * _CORE.size
            + len(self.regions) * _REGION.size
        )

    def write_to(self, memory: PhysicalMemory, address: int) -> int:
        """Serialise into physical memory; returns bytes written."""
        data = self.pack()
        memory.write(address, data)
        self.address = address
        return len(data)

    @classmethod
    def read_from(cls, memory: PhysicalMemory, address: int) -> "PiscesBootParams":
        header = memory.read(address, _HEADER.size)
        _, _, _, ncores, nregions = _HEADER.unpack(header)
        total = _HEADER.size + ncores * _CORE.size + nregions * _REGION.size
        return cls.unpack(memory.read(address, total), address)
