"""Enclave resource specifications and assignments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.memory import MemoryRegion, page_align_up


def enclave_owner(enclave_id: int) -> str:
    """Physical-memory owner label for an enclave."""
    return f"enclave:{enclave_id}"


@dataclass(frozen=True)
class ResourceSpec:
    """What an enclave should be given, before placement.

    ``mem_per_zone`` maps zone id → bytes, mirroring the paper's
    evaluation where 14 GB is split across NUMA zones as the core count
    scales.  ``cores_per_zone`` maps zone id → number of cores.
    """

    cores_per_zone: dict[int, int]
    mem_per_zone: dict[int, int]
    name: str = "enclave"
    #: Which co-kernel OS/R boots in the enclave ("kitten" or
    #: "nautilus"); Pisces can host arbitrary co-kernel architectures.
    kernel_type: str = "kitten"

    def __post_init__(self) -> None:
        if not self.cores_per_zone or all(
            n == 0 for n in self.cores_per_zone.values()
        ):
            raise ValueError("enclave needs at least one core")
        if not self.mem_per_zone or all(n == 0 for n in self.mem_per_zone.values()):
            raise ValueError("enclave needs memory")
        for zone, n in self.cores_per_zone.items():
            if n < 0:
                raise ValueError(f"negative core count for zone {zone}")

    @property
    def total_cores(self) -> int:
        return sum(self.cores_per_zone.values())

    @property
    def total_memory(self) -> int:
        return sum(self.mem_per_zone.values())

    @classmethod
    def evaluation_layout(
        cls, num_cores: int, num_zones: int, total_mem: int, name: str = "enclave"
    ) -> "ResourceSpec":
        """The paper's hardware layouts: N cores split evenly over Z
        zones, memory kept constant and split evenly over those zones."""
        if num_cores % num_zones:
            raise ValueError("cores must divide evenly across zones")
        per_zone_mem = page_align_up(total_mem // num_zones)
        return cls(
            cores_per_zone={z: num_cores // num_zones for z in range(num_zones)},
            mem_per_zone={z: per_zone_mem for z in range(num_zones)},
            name=name,
        )


@dataclass
class ResourceAssignment:
    """Concrete placement of a spec onto the machine."""

    core_ids: list[int] = field(default_factory=list)
    regions: list[MemoryRegion] = field(default_factory=list)

    @property
    def total_memory(self) -> int:
        return sum(r.size for r in self.regions)

    @property
    def num_cores(self) -> int:
        return len(self.core_ids)

    def owns_addr(self, addr: int) -> bool:
        return any(r.contains(addr) for r in self.regions)

    def owns_core(self, core_id: int) -> bool:
        return core_id in self.core_ids

    def add_region(self, region: MemoryRegion) -> None:
        self.regions.append(region)

    def remove_region(self, region: MemoryRegion) -> None:
        self.regions.remove(region)
