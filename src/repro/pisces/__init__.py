"""Pisces co-kernel framework (simulated).

Pisces partitions the machine into enclaves, boots an independent OS/R
(Kitten) in each, and exposes a kernel-module ABI on the host through
which the Hobbes runtime — and Covirt's controller — drive enclave
lifecycle and dynamic resource assignment.
"""

from repro.pisces.resources import ResourceSpec, ResourceAssignment, enclave_owner
from repro.pisces.bootparams import PiscesBootParams, BOOT_PARAMS_MAGIC
from repro.pisces.enclave import Enclave, EnclaveState
from repro.pisces.kmod import PiscesKmod, PiscesIoctl, ControlHooks

__all__ = [
    "ResourceSpec",
    "ResourceAssignment",
    "enclave_owner",
    "PiscesBootParams",
    "BOOT_PARAMS_MAGIC",
    "Enclave",
    "EnclaveState",
    "PiscesKmod",
    "PiscesIoctl",
    "ControlHooks",
]
