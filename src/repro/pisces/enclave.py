"""Enclave objects and the native (unprotected) execution port.

An :class:`Enclave` is a hardware partition running one co-kernel
OS/R.  Every architectural operation the enclave's software performs —
memory access, IPI transmission, MSR/port access, exception raising —
goes through its :class:`AccessPort`.

The :class:`NativeAccessPort` implements the *status quo ante* the
paper describes: a native co-kernel has full access to the underlying
hardware and **nothing** checks what it touches.  Its memory operations
deliberately bypass ownership enforcement; its IPIs go straight to the
physical fabric; its abort-class exceptions take the whole node down.
Covirt replaces this port with a virtualized one
(:class:`repro.core.execution.VirtualizedAccessPort`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.hw.apic import DeliveryMode
from repro.hw.interrupts import ExceptionClass, exception_class
from repro.hw.machine import Machine
from repro.pisces.bootparams import PiscesBootParams
from repro.pisces.resources import ResourceAssignment, ResourceSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.kitten.kernel import KittenKernel
    from repro.linuxhost.host import LinuxHost


class EnclaveState(enum.Enum):
    CREATED = "created"
    BOOTING = "booting"
    RUNNING = "running"
    #: Cleanly shut down; resources reclaimed.
    DESTROYED = "destroyed"
    #: Terminated by Covirt after a contained fault.
    FAILED = "failed"
    #: Terminated by Covirt, but the recovery subsystem restored the
    #: service in a successor enclave (see ``Enclave.successor_id``).
    RECOVERED = "recovered"


class EnclaveDead(Exception):
    """An operation was attempted on a terminated enclave."""


@dataclass
class FaultRecord:
    """Why an enclave was terminated (written by the Covirt fault path)."""

    reason: str
    detail: str
    core_id: int
    tsc: int


class AccessPort(Protocol):
    """Architectural operations available to an enclave's software."""

    def read(self, core_id: int, addr: int, length: int) -> bytes: ...

    def write(self, core_id: int, addr: int, data: bytes) -> None: ...

    def send_ipi(
        self, core_id: int, dest_core: int, vector: int,
        mode: DeliveryMode = DeliveryMode.FIXED,
    ) -> bool: ...

    def rdmsr(self, core_id: int, index: int) -> int: ...

    def wrmsr(self, core_id: int, index: int, value: int) -> None: ...

    def io_in(self, core_id: int, port: int) -> int: ...

    def io_out(self, core_id: int, port: int, value: int) -> None: ...

    def raise_exception(self, core_id: int, vector: int) -> None: ...


@dataclass
class Enclave:
    """One hardware partition + the OS/R running in it."""

    enclave_id: int
    name: str
    spec: ResourceSpec
    assignment: ResourceAssignment
    state: EnclaveState = EnclaveState.CREATED
    boot_params: PiscesBootParams | None = None
    kernel: "KittenKernel | None" = None
    #: The execution port all enclave software uses; native by default,
    #: swapped by Covirt at boot interposition time.
    port: AccessPort | None = None
    fault: FaultRecord | None = None
    #: Opaque slot for Covirt's per-enclave virtualization context.
    virt_context: object = None
    #: How many times this *service* has been (re)launched; 1 for a
    #: fresh enclave, bumped by the recovery supervisor on relaunch.
    incarnation: int = 1
    #: Enclave id of the successor that took over after recovery.
    successor_id: int | None = None

    @property
    def owner_label(self) -> str:
        from repro.pisces.resources import enclave_owner

        return enclave_owner(self.enclave_id)

    @property
    def is_running(self) -> bool:
        return self.state is EnclaveState.RUNNING

    def require_running(self) -> None:
        if self.state is not EnclaveState.RUNNING:
            raise EnclaveDead(
                f"enclave {self.enclave_id} is {self.state.value}"
            )


class NativeAccessPort:
    """Unprotected native execution — the co-kernel baseline.

    Memory reads/writes are issued directly against physical DRAM with
    no ownership check: a buggy co-kernel *will* corrupt other OS/Rs.
    This is not a simulation shortcut; it is the precise behaviour the
    paper's Section IV opens with.
    """

    def __init__(self, machine: Machine, enclave: Enclave, host: "LinuxHost") -> None:
        self.machine = machine
        self.enclave = enclave
        self.host = host

    def read(self, core_id: int, addr: int, length: int) -> bytes:
        self.enclave.require_running()
        return self.machine.memory.read(addr, length)

    def write(self, core_id: int, addr: int, data: bytes) -> None:
        self.enclave.require_running()
        self.machine.memory.write(addr, data)

    def send_ipi(
        self,
        core_id: int,
        dest_core: int,
        vector: int,
        mode: DeliveryMode = DeliveryMode.FIXED,
    ) -> bool:
        self.enclave.require_running()
        apic = self.machine.core(core_id).apic
        assert apic is not None
        apic.write_icr(dest_core, vector, mode)
        return True

    def rdmsr(self, core_id: int, index: int) -> int:
        self.enclave.require_running()
        msrs = self.machine.core(core_id).msrs
        assert msrs is not None
        return msrs.read(index)

    def wrmsr(self, core_id: int, index: int, value: int) -> None:
        self.enclave.require_running()
        msrs = self.machine.core(core_id).msrs
        assert msrs is not None
        msrs.write(index, value)

    def io_in(self, core_id: int, port: int) -> int:
        self.enclave.require_running()
        return self.machine.ioports.read(port, core_id)

    def io_out(self, core_id: int, port: int, value: int) -> None:
        self.enclave.require_running()
        self.machine.ioports.write(port, value, core_id)

    def raise_exception(self, core_id: int, vector: int) -> None:
        """A native abort-class exception is a node-level event: with no
        hypervisor underneath, a double fault in any co-kernel halts the
        machine."""
        self.enclave.require_running()
        if exception_class(vector) is ExceptionClass.ABORT:
            self.host.panic(
                f"abort-class exception {vector} in native enclave "
                f"{self.enclave.enclave_id} on core {core_id}"
            )
        # Non-abort exceptions are the co-kernel's own problem; Kitten
        # handles them internally (or kills the faulting task).

    def cpuid(self, core_id: int, leaf: int) -> tuple[int, int, int, int]:
        """Native CPUID: the real processor, unfiltered."""
        from repro.hw.cpu import host_cpuid

        self.enclave.require_running()
        return host_cpuid(leaf, core_id)
