"""Pisces trampoline: the enclave CPU boot path.

On hardware, Pisces kexec-launches a trampoline on each offlined core
that switches to 64-bit mode with identity page tables and jumps to the
co-kernel entry point with the boot-parameter address in a register.

Covirt interposes here (see ``repro.core.boot``): instead of jumping to
the co-kernel, the trampoline enters the Covirt hypervisor, which sets
up VMX and *launches the co-kernel as a guest at the same entry point
with the same register state* — the co-kernel cannot tell the
difference.  To make that interposition a first-class seam, the native
path is expressed as a :class:`BootProtocol` the kernel module calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.hw.cpu import CpuMode
from repro.hw.machine import Machine

if TYPE_CHECKING:  # pragma: no cover
    from repro.pisces.enclave import Enclave


#: Conventional guest-physical offset (within the enclave's first
#: region) at which the boot-parameter structure is written.
BOOT_PARAMS_OFFSET = 0x1000
#: Where the co-kernel image notionally begins (its entry point).
KERNEL_ENTRY_OFFSET = 0x10000


class BootProtocol(Protocol):
    """How enclave cores get from offlined to running a co-kernel."""

    def boot_core(self, enclave: "Enclave", core_id: int, is_bsp: bool) -> None:
        """Bring one core up into the enclave's OS/R."""

    def describe(self) -> str: ...


def kernel_class_for(enclave: "Enclave"):
    """Resolve the co-kernel class an enclave's spec asks for.

    Pisces is kernel-agnostic: any OS/R exposing the guest-kernel
    surface (boot / memmap / hotplug / interrupt injection) can be
    trampolined into an enclave — which is exactly what lets Covirt
    protect Kitten and Nautilus alike without changes.
    """
    kernel_type = enclave.spec.kernel_type
    if kernel_type == "kitten":
        from repro.kitten.kernel import KittenKernel

        return KittenKernel
    if kernel_type == "nautilus":
        from repro.nautilus.kernel import NautilusKernel

        return NautilusKernel
    if kernel_type == "mckernel":
        from repro.ihk.mckernel import McKernel

        return McKernel
    if kernel_type == "mos-lwk":
        from repro.mos.stack import MosLwk

        return MosLwk
    raise ValueError(f"unknown co-kernel type {kernel_type!r}")


class NativeBootProtocol:
    """Direct trampoline-to-kernel boot (no hypervisor)."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def boot_core(self, enclave: "Enclave", core_id: int, is_bsp: bool) -> None:
        core = self.machine.core(core_id)
        # Mode switch + jump: a few microseconds of real time.
        core.advance(5_000)
        core.mode = CpuMode.NATIVE_GUEST
        if is_bsp:
            assert enclave.boot_params is not None and enclave.boot_params.address
            kernel = kernel_class_for(enclave).boot(self.machine, enclave)
            enclave.kernel = kernel
        else:
            assert enclave.kernel is not None, "BSP must boot first"
            enclave.kernel.join_secondary_core(core_id)
        core.context = enclave.kernel

    def describe(self) -> str:
        return "native (no protection layer)"


def entry_point_for(enclave: "Enclave") -> int:
    """Guest-physical address of the co-kernel entry point."""
    first = enclave.assignment.regions[0]
    return first.start + KERNEL_ENTRY_OFFSET


def boot_params_address_for(enclave: "Enclave") -> int:
    first = enclave.assignment.regions[0]
    return first.start + BOOT_PARAMS_OFFSET
