"""The controller → hypervisor command queue.

Commands are fixed-size messages in a shared-memory ring, one ring per
enclave CPU, signalled with an NMI IPI (Section IV-C: NMIs avoid vector
conflicts and keep the guest's IRQ vector space directly mapped).  They
carry *update notifications*, not configuration payloads: the controller
has already rewritten the hardware structures by the time it enqueues,
and the hypervisor only activates the change / invalidates stale state.

The ring lives in real simulated memory: the structure is packed and
unpacked through :class:`repro.hw.memory.PhysicalMemory`, so tests can
verify the guest can never see it (it is outside the EPT).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.hw.memory import PAGE_SIZE, PhysicalMemory


class CommandType(enum.IntEnum):
    """What the hypervisor must synchronise."""

    #: No-op (liveness check).
    PING = 0
    #: Memory configuration changed: flush the local TLB.
    MEMORY_UPDATE = 1
    #: Control state changed: reload the VMCS before next entry.
    VMCS_RELOAD = 2
    #: Terminate the enclave on this core.
    TERMINATE = 3


#: magic, type, seq, arg0, arg1, completed
_SLOT = struct.Struct("<IIQQQI")
SLOT_SIZE = 64  # padded to a cache line
_HEADER = struct.Struct("<III")  # head, tail, capacity
HEADER_SIZE = 64

COMMAND_MAGIC = 0xC0D1


@dataclass(frozen=True)
class Command:
    """One fixed-size command."""

    type: CommandType
    seq: int
    arg0: int = 0
    arg1: int = 0

    def pack(self, completed: bool = False) -> bytes:
        raw = _SLOT.pack(
            COMMAND_MAGIC, self.type, self.seq, self.arg0, self.arg1, int(completed)
        )
        return raw.ljust(SLOT_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> tuple["Command", bool]:
        magic, ctype, seq, arg0, arg1, completed = _SLOT.unpack_from(data, 0)
        if magic != COMMAND_MAGIC:
            raise ValueError(f"corrupt command slot (magic {magic:#x})")
        return cls(CommandType(ctype), seq, arg0, arg1), bool(completed)


class QueueFull(Exception):
    pass


class CommandQueue:
    """A single-producer single-consumer ring in physical memory."""

    def __init__(
        self, memory: PhysicalMemory, base_addr: int, capacity: int = 62
    ) -> None:
        if capacity <= 0 or HEADER_SIZE + capacity * SLOT_SIZE > PAGE_SIZE:
            raise ValueError("queue must fit in one page")
        self.memory = memory
        self.base = base_addr
        self.capacity = capacity
        self._seq = 0
        self._write_header(0, 0)

    # -- header ----------------------------------------------------------

    def _write_header(self, head: int, tail: int) -> None:
        self.memory.write(
            self.base, _HEADER.pack(head, tail, self.capacity)
        )

    def _read_header(self) -> tuple[int, int]:
        head, tail, cap = _HEADER.unpack(
            self.memory.read(self.base, _HEADER.size)
        )
        if cap != self.capacity:
            raise ValueError("corrupt queue header")
        return head, tail

    def _slot_addr(self, index: int) -> int:
        return self.base + HEADER_SIZE + (index % self.capacity) * SLOT_SIZE

    # -- producer (controller) -------------------------------------------

    def enqueue(self, ctype: CommandType, arg0: int = 0, arg1: int = 0) -> Command:
        head, tail = self._read_header()
        if tail - head >= self.capacity:
            raise QueueFull(f"command queue at {self.base:#x} is full")
        self._seq += 1
        cmd = Command(ctype, self._seq, arg0, arg1)
        self.memory.write(self._slot_addr(tail), cmd.pack())
        self._write_header(head, tail + 1)
        return cmd

    def is_completed(self, cmd: Command) -> bool:
        """Scan the ring for the command's completion flag.

        (The controller blocks on this for synchronous commands.)
        """
        head, tail = self._read_header()
        for idx in range(max(0, tail - self.capacity), tail):
            slot, completed = Command.unpack(
                self.memory.read(self._slot_addr(idx), SLOT_SIZE)
            )
            if slot.seq == cmd.seq:
                return completed
        # Slot already overwritten — it must have completed to be reused.
        return True

    # -- consumer (hypervisor) -------------------------------------------

    def pending(self) -> int:
        head, tail = self._read_header()
        return tail - head

    def snapshot_pending(self) -> list[Command]:
        """Read (without consuming) every enqueued-but-unserviced
        command, oldest first.  The recovery checkpointer uses this to
        capture the unacknowledged command queue so a restarted enclave
        can have the commands replayed."""
        head, tail = self._read_header()
        pending: list[Command] = []
        for idx in range(head, tail):
            cmd, completed = Command.unpack(
                self.memory.read(self._slot_addr(idx), SLOT_SIZE)
            )
            if not completed:
                pending.append(cmd)
        return pending

    def dequeue(self) -> Command | None:
        head, tail = self._read_header()
        if head == tail:
            return None
        cmd, _ = Command.unpack(self.memory.read(self._slot_addr(head), SLOT_SIZE))
        self._write_header(head + 1, tail)
        return cmd

    def mark_completed(self, cmd: Command) -> None:
        head, tail = self._read_header()
        for idx in range(max(0, tail - self.capacity), tail):
            addr = self._slot_addr(idx)
            slot, _ = Command.unpack(self.memory.read(addr, SLOT_SIZE))
            if slot.seq == cmd.seq:
                self.memory.write(addr, cmd.pack(completed=True))
                return
