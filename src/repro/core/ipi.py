"""IPI whitelisting and the two delivery engines.

Outbound: with IPI protection on, every guest ICR write traps; the
hypervisor checks (destination core, vector) against the enclave's
whitelist — which the controller keeps synchronised with the Hobbes
vector allocator — and either re-issues the IPI on the physical APIC or
silently drops it (Section IV-C: "errant IPIs are simply dropped").

Inbound: trap mode exits on every incoming interrupt and re-injects;
posted mode delivers IPIs through the PI descriptor with no exit, while
genuinely external interrupts (and the APIC timer) still exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.apic import DeliveryMode, IpiMessage


@dataclass
class DroppedIpi:
    """Record of a filtered IPI (kept for diagnostics, per the paper's
    debugging story)."""

    msg: IpiMessage
    reason: str
    tsc: int


class IpiWhitelist:
    """The (dest core, vector) pairs one enclave may signal."""

    def __init__(self) -> None:
        self._allowed: set[tuple[int, int]] = set()
        #: NMI-mode sends are never allowed from a guest: NMIs are the
        #: hypervisor's own doorbell channel.
        self.dropped: list[DroppedIpi] = []

    def __len__(self) -> int:
        return len(self._allowed)

    def allow(self, dest_core: int, vector: int) -> None:
        self._allowed.add((dest_core, vector))

    def revoke(self, dest_core: int, vector: int) -> None:
        self._allowed.discard((dest_core, vector))

    def permits(self, msg: IpiMessage) -> tuple[bool, str]:
        """Policy check; returns (allowed, reason-if-denied)."""
        if msg.mode is DeliveryMode.NMI:
            return False, "guest NMI transmission is never permitted"
        if (msg.dest_core, msg.vector) not in self._allowed:
            return (
                False,
                f"(core {msg.dest_core}, vector {msg.vector}) not whitelisted",
            )
        return True, ""

    def record_drop(self, msg: IpiMessage, reason: str, tsc: int) -> None:
        self.dropped.append(DroppedIpi(msg, reason, tsc))

    def allowed_pairs(self) -> set[tuple[int, int]]:
        return set(self._allowed)
