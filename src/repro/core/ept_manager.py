"""EPT lifecycle management for one enclave.

Wraps :class:`repro.vmx.ept.ExtendedPageTable` with Covirt's policy:
identity maps only, full permissions (violations mean *outside the
enclave*, Section IV-C), greedy 2 MiB / 1 GiB coalescing, and update
statistics the ablation benchmarks read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.memory import MemoryRegion
from repro.vmx.ept import EptPermissions, ExtendedPageTable


@dataclass
class EptUpdateStats:
    maps: int = 0
    unmaps: int = 0
    entries_written: int = 0

    def reset(self) -> None:
        self.maps = self.unmaps = self.entries_written = 0


class EptManager:
    """Builds and incrementally maintains an enclave's identity EPT."""

    def __init__(self, coalesce: bool = True) -> None:
        self.table = ExtendedPageTable()
        self.coalesce = coalesce
        self.stats = EptUpdateStats()

    def build_identity(self, regions: list[MemoryRegion]) -> int:
        """Initial-population at enclave init: identity map every
        assigned region with full access.  Returns entries created."""
        total = 0
        for region in regions:
            total += len(self.map_region(region))
        return total

    def map_region(self, region: MemoryRegion) -> list:
        entries = self.table.map_region(
            region.start,
            region.size,
            host_start=region.start,  # identity — zero abstraction
            perms=EptPermissions.full(),
            coalesce=self.coalesce,
        )
        self.stats.maps += 1
        self.stats.entries_written += len(entries)
        return entries

    def unmap_region(self, region: MemoryRegion) -> int:
        removed = self.table.unmap_region(region.start, region.size)
        self.stats.unmaps += 1
        return removed

    @property
    def mapped_bytes(self) -> int:
        return self.table.mapped_bytes

    def entry_counts(self) -> dict[int, int]:
        return self.table.count_by_size()
