"""The Covirt hypervisor: one instance per enclave CPU.

In practice the hypervisor does very little (Section IV-B): it loads
the VMCS the controller pre-built, launches the co-kernel as a guest at
its native entry point, and afterwards only runs to (1) service
command-queue notifications delivered by NMI, (2) dispatch the few
exits that policy requires, and (3) terminate the enclave on abort-class
faults.  Each instance is single-core and unaware of its siblings; its
execution context is a preallocated 8 KiB stack and no dynamic memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.commands import Command, CommandQueue, CommandType
from repro.core.faults import CovirtFault, EnclaveFaultError, FaultKind
from repro.hw.cpu import Core, CpuMode
from repro.hw.interrupts import Interrupt, InterruptKind
from repro.hw.machine import Machine
from repro.obs import metric_names
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.counters import PerfCounters
from repro.perf.trace import EventTrace, TraceKind
from repro.vmx.exits import ExitReason, VmExit
from repro.vmx.vapic import VapicMode
from repro.vmx.vmcs import Vmcs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import EnclaveVirtContext

#: Size of the preallocated hypervisor stack (Section IV-C).
HYPERVISOR_STACK_BYTES = 8 * 1024


class CovirtHypervisor:
    """Per-core minimal hypervisor."""

    def __init__(
        self,
        machine: Machine,
        core: Core,
        ctx: "EnclaveVirtContext",
        vmcs: Vmcs,
        queue: CommandQueue,
        stack_addr: int,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        self.machine = machine
        self.core = core
        self.ctx = ctx
        self.vmcs = vmcs
        self.queue = queue
        self.stack_addr = stack_addr
        self.costs = costs
        self.counters = PerfCounters()
        #: Bounded event ring: the ordered tail of what this hypervisor
        #: saw, surfaced in fault dossiers.  Depth comes from the
        #: enclave's CovirtConfig (recovery wants a deeper tail).
        self.trace = EventTrace(capacity=ctx.config.trace_capacity)
        #: Generation of the VMCS state this core has activated.
        self.loaded_generation: int = -1
        #: Set by the controller: where terminations are reported.
        self.fault_sink: Callable[[CovirtFault], None] | None = None
        self.terminated = False
        #: Machine-wide observability (spans + metrics), shared with the
        #: controller and recovery layers.  Recording is passive.
        self.obs = machine.obs
        #: Span track this core's events render on.
        self.track = f"core{core.core_id}"

    def _metric_labels(self) -> dict[str, int]:
        return {
            "core": self.core.core_id,
            "enclave": self.ctx.enclave.enclave_id,
        }

    # -- entry -----------------------------------------------------------

    def launch(self) -> None:
        """VMPTRLD + VMLAUNCH into the co-kernel's native entry point."""
        with self.obs.tracer.span(
            "hv.launch",
            category="hv",
            track=self.track,
            now=self.core.read_tsc,
            entry_point=hex(self.vmcs.guest.entry_point),
        ):
            self.vmcs.validate()
            self.core.advance(self.costs.vmcs_load + self.costs.vm_launch)
            self.loaded_generation = self.vmcs.generation
            self.vmcs.launched = True
            self.core.mode = CpuMode.GUEST
            self.core.vm_entries += 1
            self.trace.record(
                self.core.read_tsc(),
                TraceKind.LAUNCH,
                f"VMLAUNCH → {self.vmcs.guest.entry_point:#x}",
            )

    # -- exit accounting ---------------------------------------------------

    def account_exit(self, reason: ExitReason, *, emulation: bool = False) -> int:
        """Charge one exit round trip to this core; returns the cost."""
        cost = self.costs.exit_cost(emulation=emulation)
        self.core.advance(cost)
        self.counters.record_exit(reason.value, cost)
        self.trace.record(self.core.read_tsc(), TraceKind.EXIT, reason.value)
        tsc = self.core.read_tsc()
        self.obs.tracer.complete(
            f"hv.exit.{reason.value}",
            tsc - cost,
            tsc,
            category="exit",
            track=self.track,
            enclave=self.ctx.enclave.enclave_id,
        )
        metrics = self.obs.metrics
        metrics.counter(
            metric_names.EXITS, "VM exits by reason/core/enclave"
        ).inc(reason=reason.value, **self._metric_labels())
        metrics.histogram(
            metric_names.EXIT_CYCLES, "exit round-trip latency (cycles)"
        ).observe(cost, reason=reason.value)
        return cost

    def make_exit(self, reason: ExitReason, qualification: Any = None) -> VmExit:
        return VmExit(
            reason=reason,
            core_id=self.core.core_id,
            qualification=qualification,
            guest_tsc=self.core.read_tsc(),
        )

    # -- interrupt path ----------------------------------------------------

    def on_physical_interrupt(self, interrupt: Interrupt) -> None:
        """Installed as the physical APIC delivery hook while this core
        runs a guest.  Routes by interrupt kind and VAPIC mode."""
        if self.terminated:
            return
        # An interrupt is the architectural wake-up for a halted vCPU:
        # HLT parks the core only until the next event arrives.
        if self.core.halted:
            self.core.resume()
        if interrupt.kind is InterruptKind.NMI:
            # The controller's doorbell: service the command queue.
            with self.obs.tracer.span(
                "hv.nmi",
                category="hv",
                track=self.track,
                now=self.core.read_tsc,
            ):
                self.core.advance(self.costs.nmi_delivery)
                self.account_exit(ExitReason.EXCEPTION_OR_NMI)
                self.service_commands()
            return
        mode = self.vmcs.controls.vapic_mode
        kernel = self.ctx.enclave.kernel
        if mode is VapicMode.DISABLED:
            # No interrupt virtualization: native-style delivery.
            self.core.advance(self.costs.native_irq_dispatch)
            if kernel is not None:
                kernel.inject_interrupt(self.core.core_id, interrupt)
            return
        if mode is VapicMode.POSTED and interrupt.kind is InterruptKind.IPI:
            # Exit-free delivery through the PI descriptor.
            assert self.vmcs.pi_descriptor is not None
            self.vmcs.pi_descriptor.post(interrupt.vector)
            self.core.advance(self.costs.posted_delivery)
            self.counters.posted_deliveries += 1
            self.trace.record(
                self.core.read_tsc(),
                TraceKind.POSTED,
                f"vector {interrupt.vector} (no exit)",
            )
            for vector in self.vmcs.pi_descriptor.drain():
                if kernel is not None:
                    kernel.inject_interrupt(
                        self.core.core_id,
                        Interrupt(vector, InterruptKind.IPI, interrupt.source_core),
                    )
            return
        # Trap mode, or an external/timer interrupt under posted mode:
        # the interrupt forces an exit and is re-injected.
        self.account_exit(ExitReason.EXTERNAL_INTERRUPT)
        self.core.advance(self.costs.irq_injection)
        self.counters.interrupts_injected += 1
        if kernel is not None:
            kernel.inject_interrupt(self.core.core_id, interrupt)

    # -- command queue ------------------------------------------------

    def service_commands(self) -> int:
        """Drain the command queue; returns commands serviced."""
        serviced = 0
        commands = self.obs.metrics.counter(
            metric_names.COMMANDS, "commands drained from per-core queues"
        )
        with self.obs.tracer.span(
            "hv.drain",
            category="hv",
            track=self.track,
            now=self.core.read_tsc,
        ) as drain:
            while True:
                cmd = self.queue.dequeue()
                if cmd is None:
                    break
                self._execute_command(cmd)
                self.queue.mark_completed(cmd)
                self.counters.commands_serviced += 1
                self.trace.record(
                    self.core.read_tsc(), TraceKind.COMMAND, cmd.type.name
                )
                commands.inc(type=cmd.type.name, **self._metric_labels())
                serviced += 1
            drain.args["serviced"] = serviced
        return serviced

    def _execute_command(self, cmd: Command) -> None:
        if cmd.type is CommandType.PING:
            return
        if cmd.type is CommandType.MEMORY_UPDATE:
            assert self.core.tlb is not None
            flushed = len(self.core.tlb)
            self.core.tlb.flush_all()
            self.core.advance(
                self.costs.tlb_flush
                + int(self.costs.tlb_refill_per_entry * min(flushed, 256))
            )
            self.counters.tlb_flushes += 1
            return
        if cmd.type is CommandType.VMCS_RELOAD:
            self.core.advance(self.costs.vmcs_load)
            self.loaded_generation = self.vmcs.generation
            return
        if cmd.type is CommandType.TERMINATE:
            self.terminate_guest(
                CovirtFault(
                    kind=FaultKind.CONTROLLER_REQUEST,
                    enclave_id=self.ctx.enclave.enclave_id,
                    core_id=self.core.core_id,
                    tsc=self.core.read_tsc(),
                    detail="terminated by controller command",
                )
            )
            return
        raise ValueError(f"unknown command {cmd!r}")  # pragma: no cover

    # -- termination ---------------------------------------------------

    def terminate_guest(self, fault: CovirtFault) -> None:
        """Abort-class handling: terminate the enclave, notify the master
        control process, and safely halt the CPU (Section IV-B)."""
        if self.terminated:
            return
        self.terminated = True
        # Mark the containment event in the flight-recorder ring before
        # the fault fans out (the controller snapshots the post-mortem
        # once the dossier exists).
        self.obs.flight.note(
            "containment",
            f"core {self.core.core_id} terminated enclave "
            f"{self.ctx.enclave.enclave_id}: {fault.detail}",
            fault_kind=fault.kind.value,
        )
        with self.obs.tracer.span(
            "hv.terminate",
            category="hv",
            track=self.track,
            now=self.core.read_tsc,
            kind=fault.kind.value,
        ):
            self.obs.metrics.counter(
                metric_names.TERMINATIONS, "guest terminations by fault kind"
            ).inc(kind=fault.kind.value, **self._metric_labels())
            self.trace.record(
                self.core.read_tsc(), TraceKind.TERMINATE, fault.detail
            )
            self.core.mode = CpuMode.HYPERVISOR
            self.core.halt()
            if self.fault_sink is not None:
                self.fault_sink(fault)

    def fault_and_raise(self, fault: CovirtFault) -> None:
        """Terminate and unwind the simulated guest's execution."""
        self.terminate_guest(fault)
        raise EnclaveFaultError(fault)
