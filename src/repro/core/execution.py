"""The virtualized execution port.

This is what an enclave's software gets instead of the
:class:`~repro.pisces.enclave.NativeAccessPort` when Covirt is
interposed.  Every architectural operation consults the VMCS controls
exactly the way hardware would: operations the configuration lets pass
execute natively (at native cost); operations the configuration traps
become VM exits dispatched to the hypervisor's handlers.

The port is deliberately *bit-compatible* with the native port — same
methods, same success results — so the co-kernel cannot tell which it
is running on (the transparency requirement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core import exits as exit_handlers
from repro.core.faults import CovirtFault, FaultKind
from repro.core.features import Feature
from repro.hw.apic import DeliveryMode, IpiMessage
from repro.hw.interrupts import ExceptionClass, exception_class
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.hw.tlb import TlbEntry
from repro.vmx.ept import EptViolationInfo
from repro.vmx.exits import ExitReason

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import EnclaveVirtContext
    from repro.core.hypervisor import CovirtHypervisor


class VirtualizedAccessPort:
    """Architectural operations under Covirt."""

    def __init__(self, machine: Machine, ctx: "EnclaveVirtContext") -> None:
        self.machine = machine
        self.ctx = ctx

    # -- helpers -------------------------------------------------------

    @property
    def enclave(self):
        return self.ctx.enclave

    def _hv(self, core_id: int) -> "CovirtHypervisor":
        return self.ctx.hypervisors[core_id]

    # -- memory ----------------------------------------------------------

    def _translate(self, core_id: int, addr: int, *, write: bool) -> None:
        """One page's worth of address translation, with real TLB
        semantics: a cached translation short-circuits the EPT walk —
        including a *stale* one, which is precisely why unmaps must be
        followed by the flush command before memory is reclaimed."""
        core = self.machine.core(core_id)
        assert core.tlb is not None
        if core.tlb.lookup(addr) is not None:
            return  # cached — no nested walk, no protection check
        assert self.ctx.ept is not None
        result = self.ctx.ept.table.translate(addr, write=write)
        if isinstance(result, EptViolationInfo):
            hv = self._hv(core_id)
            exit = hv.make_exit(ExitReason.EPT_VIOLATION, result)
            exit_handlers.dispatch(hv, exit)  # raises EnclaveFaultError
            raise AssertionError("unreachable")  # pragma: no cover
        _hpa, mapping = result
        core.tlb.insert(
            TlbEntry(
                virt_page=addr & ~(mapping.page_size - 1),
                phys_page=mapping.host_page,
                page_size=mapping.page_size,
            )
        )
        # The nested walk costs a few extra cycles over a native walk.
        core.advance(
            int(
                self.ctx.costs.tlb_miss_native
                + self.ctx.costs.ept_extra_per_miss(mapping.page_size)
            )
        )

    def _access(self, core_id: int, addr: int, length: int, *, write: bool) -> None:
        self.enclave.require_running()
        if not self.ctx.config.has(Feature.MEMORY):
            return  # EPT disabled: no nested translation, no checks
        page = addr & ~(PAGE_SIZE - 1)
        last_page = (addr + max(length, 1) - 1) & ~(PAGE_SIZE - 1)
        while page <= last_page:
            self._translate(core_id, page, write=write)
            page += PAGE_SIZE

    def read(self, core_id: int, addr: int, length: int) -> bytes:
        self._access(core_id, addr, length, write=False)
        return self.machine.memory.read(addr, length)

    def write(self, core_id: int, addr: int, data: bytes) -> None:
        self._access(core_id, addr, len(data), write=True)
        self.machine.memory.write(addr, data)

    # -- IPIs ------------------------------------------------------------

    def send_ipi(
        self,
        core_id: int,
        dest_core: int,
        vector: int,
        mode: DeliveryMode = DeliveryMode.FIXED,
    ) -> bool:
        self.enclave.require_running()
        if not self.ctx.config.has(Feature.IPI):
            apic = self.machine.core(core_id).apic
            assert apic is not None
            apic.write_icr(dest_core, vector, mode)
            return True
        hv = self._hv(core_id)
        msg = IpiMessage(core_id, dest_core, vector, mode)
        exit = hv.make_exit(ExitReason.APIC_WRITE, msg)
        return bool(exit_handlers.dispatch(hv, exit))

    # -- MSRs ------------------------------------------------------------

    def rdmsr(self, core_id: int, index: int) -> int:
        self.enclave.require_running()
        core = self.machine.core(core_id)
        assert core.msrs is not None
        if not self.ctx.config.has(Feature.MSR):
            return core.msrs.read(index)
        assert self.ctx.msr_bitmap is not None
        if not self.ctx.msr_bitmap.should_exit(index, is_write=False):
            return core.msrs.read(index)
        hv = self._hv(core_id)
        return int(
            exit_handlers.dispatch(hv, hv.make_exit(ExitReason.MSR_READ, index))
        )

    def wrmsr(self, core_id: int, index: int, value: int) -> None:
        self.enclave.require_running()
        core = self.machine.core(core_id)
        assert core.msrs is not None
        if not self.ctx.config.has(Feature.MSR):
            core.msrs.write(index, value)
            return
        assert self.ctx.msr_bitmap is not None
        if not self.ctx.msr_bitmap.should_exit(index, is_write=True):
            core.msrs.write(index, value)
            return
        hv = self._hv(core_id)
        exit_handlers.dispatch(
            hv, hv.make_exit(ExitReason.MSR_WRITE, (index, value))
        )

    # -- I/O ports -------------------------------------------------------

    def io_in(self, core_id: int, port: int) -> int:
        self.enclave.require_running()
        if not self.ctx.config.has(Feature.IOPORT):
            return self.machine.ioports.read(port, core_id)
        assert self.ctx.io_bitmap is not None
        if not self.ctx.io_bitmap.should_exit(port):
            return self.machine.ioports.read(port, core_id)
        hv = self._hv(core_id)
        result = exit_handlers.dispatch(
            hv, hv.make_exit(ExitReason.IO_INSTRUCTION, (port, 0, False))
        )
        return int(result)

    def io_out(self, core_id: int, port: int, value: int) -> None:
        self.enclave.require_running()
        if not self.ctx.config.has(Feature.IOPORT):
            self.machine.ioports.write(port, value, core_id)
            return
        assert self.ctx.io_bitmap is not None
        if not self.ctx.io_bitmap.should_exit(port):
            self.machine.ioports.write(port, value, core_id)
            return
        hv = self._hv(core_id)
        exit_handlers.dispatch(
            hv, hv.make_exit(ExitReason.IO_INSTRUCTION, (port, value, True))
        )

    # -- exceptions --------------------------------------------------------

    def raise_exception(self, core_id: int, vector: int) -> None:
        """Under Covirt, abort-class exceptions never reach the node:
        with the exceptions feature on they trap as exceptions; with it
        off the guest's failure to handle them becomes a triple fault —
        which VMX architecture *always* exits on.  Either way, only the
        enclave dies."""
        self.enclave.require_running()
        if exception_class(vector) is not ExceptionClass.ABORT:
            return  # the guest kernel handles its own faults/traps
        hv = self._hv(core_id)
        if self.ctx.config.has(Feature.EXCEPTIONS):
            exit_handlers.dispatch(
                hv, hv.make_exit(ExitReason.EXCEPTION_OR_NMI, vector)
            )
        else:
            exit_handlers.dispatch(
                hv, hv.make_exit(ExitReason.TRIPLE_FAULT, vector)
            )

    # -- emulated instructions ----------------------------------------

    def cpuid(self, core_id: int, leaf: int) -> tuple[int, int, int, int]:
        """CPUID always exits under VMX; Covirt executes it unmodified."""
        self.enclave.require_running()
        hv = self._hv(core_id)
        return exit_handlers.dispatch(hv, hv.make_exit(ExitReason.CPUID, leaf))

    def xsetbv(self, core_id: int, xcr0: int) -> bool:
        """XSETBV always exits under VMX; Covirt executes it directly."""
        self.enclave.require_running()
        hv = self._hv(core_id)
        return bool(
            exit_handlers.dispatch(hv, hv.make_exit(ExitReason.XSETBV, xcr0))
        )

    def hlt(self, core_id: int) -> None:
        """Guest HLT exits; the hypervisor parks the core itself."""
        self.enclave.require_running()
        hv = self._hv(core_id)
        exit_handlers.dispatch(hv, hv.make_exit(ExitReason.HLT, None))
