"""Covirt: the lightweight fault-isolation and resource-protection layer.

This package is the paper's contribution.  It consists of:

* a per-core, minimal **hypervisor** (:mod:`repro.core.hypervisor`) that
  loads a pre-built VMCS, launches the co-kernel as a guest at its
  native entry point, and handles the small set of exits that policy
  requires;
* a **controller module** (:mod:`repro.core.controller`) embedded in the
  Hobbes/Pisces management framework that watches resource-assignment
  events and rewrites the virtualization configuration asynchronously,
  poking the hypervisor through an NMI-signalled command queue only
  when CPU-local state (TLBs, the loaded VMCS) must be synchronised;
* modular **protection features** (:mod:`repro.core.features`) —
  memory (EPT), IPI (VAPIC trap / posted interrupts), MSR, I/O port,
  and abort-exception containment — selectable per enclave at launch.
"""

from repro.core.features import Feature, IpiMode, CovirtConfig
from repro.core.commands import Command, CommandType, CommandQueue
from repro.core.ipi import IpiWhitelist
from repro.core.faults import CovirtFault, FaultKind
from repro.core.bootparams import CovirtBootParams
from repro.core.ept_manager import EptManager
from repro.core.execution import VirtualizedAccessPort
from repro.core.hypervisor import CovirtHypervisor
from repro.core.controller import CovirtController, EnclaveVirtContext
from repro.core.boot import CovirtBootProtocol

__all__ = [
    "Feature",
    "IpiMode",
    "CovirtConfig",
    "Command",
    "CommandType",
    "CommandQueue",
    "IpiWhitelist",
    "CovirtFault",
    "FaultKind",
    "CovirtBootParams",
    "EptManager",
    "VirtualizedAccessPort",
    "CovirtHypervisor",
    "CovirtController",
    "EnclaveVirtContext",
    "CovirtBootProtocol",
]
