"""Exit handler dispatch.

Maps each :class:`~repro.vmx.exits.ExitReason` to the policy Covirt
applies.  Where emulation is required Covirt takes a minimalist
approach (Section IV-B); most handlers are a few lines, and the fatal
ones funnel into :meth:`CovirtHypervisor.fault_and_raise`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.faults import CovirtFault, FaultKind
from repro.hw.cpu import host_cpuid
from repro.hw.interrupts import ExceptionVector
from repro.hw.msr import SENSITIVE_MSRS
from repro.vmx.exits import ExitReason, VmExit

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hypervisor import CovirtHypervisor

Handler = Callable[["CovirtHypervisor", VmExit], Any]

_HANDLERS: dict[ExitReason, Handler] = {}


def handles(reason: ExitReason) -> Callable[[Handler], Handler]:
    def deco(fn: Handler) -> Handler:
        _HANDLERS[reason] = fn
        return fn

    return deco


def dispatch(hv: "CovirtHypervisor", exit: VmExit) -> Any:
    """Route one exit to its handler, under a dispatch span so every
    consequence (termination, controller fault routing, recovery) nests
    beneath the exit that caused it."""
    handler = _HANDLERS.get(exit.reason)
    if handler is None:
        raise ValueError(f"no handler for exit {exit.reason}")  # pragma: no cover
    with hv.obs.tracer.span(
        f"hv.dispatch.{exit.reason.value}",
        category="exit",
        track=hv.track,
        now=hv.core.read_tsc,
    ):
        return handler(hv, exit)


def _fault(hv: "CovirtHypervisor", kind: FaultKind, detail: str, qual: Any) -> CovirtFault:
    return CovirtFault(
        kind=kind,
        enclave_id=hv.ctx.enclave.enclave_id,
        core_id=hv.core.core_id,
        tsc=hv.core.read_tsc(),
        detail=detail,
        qualification=qual,
    )


@handles(ExitReason.EPT_VIOLATION)
def handle_ept_violation(hv: "CovirtHypervisor", exit: VmExit) -> None:
    """All EPT access violations are abort class: the address is outside
    the enclave's assignment, so the co-kernel's view of its resources
    has diverged from reality.  Terminate."""
    info = exit.qualification
    hv.account_exit(ExitReason.EPT_VIOLATION)
    hv.fault_and_raise(
        _fault(hv, FaultKind.EPT_VIOLATION, info.describe(), info)
    )


@handles(ExitReason.EXCEPTION_OR_NMI)
def handle_exception(hv: "CovirtHypervisor", exit: VmExit) -> None:
    """Abort-class exceptions (double fault, machine check) terminate
    the enclave instead of the node."""
    vector = exit.qualification
    hv.account_exit(ExitReason.EXCEPTION_OR_NMI)
    hv.fault_and_raise(
        _fault(
            hv,
            FaultKind.ABORT_EXCEPTION,
            f"abort-class exception {ExceptionVector(vector).name}",
            vector,
        )
    )


@handles(ExitReason.TRIPLE_FAULT)
def handle_triple_fault(hv: "CovirtHypervisor", exit: VmExit) -> None:
    """Even with the exception feature off, VMX architecture guarantees
    a guest triple fault exits instead of resetting the machine."""
    hv.account_exit(ExitReason.TRIPLE_FAULT)
    hv.fault_and_raise(
        _fault(hv, FaultKind.TRIPLE_FAULT, "guest triple fault", exit.qualification)
    )


@handles(ExitReason.MSR_READ)
def handle_msr_read(hv: "CovirtHypervisor", exit: VmExit) -> int:
    """Trapped RDMSR: emulate against the physical MSR file (zero
    abstraction — the guest sees real hardware values)."""
    index = exit.qualification
    hv.account_exit(ExitReason.MSR_READ, emulation=True)
    msrs = hv.core.msrs
    assert msrs is not None
    return msrs.read(index)


@handles(ExitReason.MSR_WRITE)
def handle_msr_write(hv: "CovirtHypervisor", exit: VmExit) -> bool:
    """Trapped WRMSR: sensitive MSR writes are denied (and logged);
    everything else is performed on the guest's behalf."""
    index, value = exit.qualification
    hv.account_exit(ExitReason.MSR_WRITE, emulation=True)
    if index in SENSITIVE_MSRS:
        hv.ctx.denied_msr_writes.append((hv.core.core_id, index, value))
        return False
    msrs = hv.core.msrs
    assert msrs is not None
    msrs.write(index, value)
    return True


@handles(ExitReason.IO_INSTRUCTION)
def handle_io(hv: "CovirtHypervisor", exit: VmExit) -> int | None:
    """Trapped IN/OUT: accesses to trapped ports are denied — reads
    float high, writes vanish — and logged."""
    port, value, is_write = exit.qualification
    hv.account_exit(ExitReason.IO_INSTRUCTION, emulation=True)
    hv.ctx.denied_io.append((hv.core.core_id, port, value, is_write))
    return None if is_write else 0xFF


@handles(ExitReason.APIC_WRITE)
def handle_apic_write(hv: "CovirtHypervisor", exit: VmExit) -> bool:
    """Trapped ICR write: filter through the whitelist; permitted IPIs
    are re-issued on the physical APIC, errant ones are dropped."""
    msg = exit.qualification
    hv.account_exit(ExitReason.APIC_WRITE, emulation=True)
    if hv.vmcs.vapic_page is not None:
        hv.vmcs.vapic_page.record_write(msg)
    whitelist = hv.ctx.whitelist
    assert whitelist is not None
    allowed, reason = whitelist.permits(msg)
    if not allowed:
        whitelist.record_drop(msg, reason, hv.core.read_tsc())
        hv.counters.ipis_filtered += 1
        from repro.perf.trace import TraceKind

        hv.trace.record(
            hv.core.read_tsc(),
            TraceKind.DROP,
            f"IPI → core {msg.dest_core} vector {msg.vector}: {reason}",
        )
        return False
    apic = hv.core.apic
    assert apic is not None
    apic.write_icr(msg.dest_core, msg.vector, msg.mode)
    hv.counters.ipis_forwarded += 1
    return True


@handles(ExitReason.CPUID)
def handle_cpuid(hv: "CovirtHypervisor", exit: VmExit) -> tuple[int, int, int, int]:
    """CPUID executes in the VMM with no modification: the guest sees
    the real processor (zero abstraction)."""
    leaf = exit.qualification
    hv.account_exit(ExitReason.CPUID)
    return host_cpuid(leaf, hv.core.core_id)


@handles(ExitReason.XSETBV)
def handle_xsetbv(hv: "CovirtHypervisor", exit: VmExit) -> bool:
    hv.account_exit(ExitReason.XSETBV)
    return True


@handles(ExitReason.HLT)
def handle_hlt(hv: "CovirtHypervisor", exit: VmExit) -> None:
    hv.account_exit(ExitReason.HLT)
    hv.core.halt()
