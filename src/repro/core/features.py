"""Covirt's modular protection features.

Co-kernel architectures implicitly prioritise performance over safety;
Covirt therefore lets the operator pick exactly which protections an
enclave pays for (Section IV-A, third design goal).  A feature set is
fixed at enclave launch (it shapes the VMCS) but each feature is
independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Feature(enum.Flag):
    """Individually selectable protection features."""

    NONE = 0
    #: EPT identity map of assigned regions; out-of-enclave access aborts.
    MEMORY = enum.auto()
    #: ICR trapping + whitelist filtering of outbound IPIs.
    IPI = enum.auto()
    #: MSR bitmap: sensitive MSR writes denied.
    MSR = enum.auto()
    #: I/O bitmap: host-owned port accesses denied.
    IOPORT = enum.auto()
    #: Abort-class exceptions (double fault, machine check) contained.
    EXCEPTIONS = enum.auto()

    ALL = MEMORY | IPI | MSR | IOPORT | EXCEPTIONS


class IpiMode(enum.Enum):
    """How IPI protection virtualizes interrupt delivery (Section IV-C)."""

    #: Pick posted interrupts when the hardware has them, else trap.
    AUTO = "auto"
    #: Full trap-and-emulate: every incoming interrupt exits.
    TRAP = "trap"
    #: Posted Interrupt Vectors: exit-free incoming IPIs.
    POSTED = "posted"


@dataclass(frozen=True)
class CovirtConfig:
    """Per-enclave Covirt configuration."""

    features: Feature = Feature.NONE
    ipi_mode: IpiMode = IpiMode.AUTO
    #: Does the (simulated) CPU support posted interrupts?  The paper's
    #: Broadwell testbed does; the trap path exists for older parts and
    #: for the ablation study.
    hw_has_posted_interrupts: bool = True
    #: 2 MiB / 1 GiB EPT coalescing (on in the paper; off = ablation).
    ept_coalescing: bool = True
    #: Capacity of each hypervisor's bounded event ring.  The default
    #: matches the fault-dossier use case; recovery replays want a
    #: deeper tail (every restart adds launch/command/recover records),
    #: so supervised enclaves typically raise this.
    trace_capacity: int = 256

    def __post_init__(self) -> None:
        if self.trace_capacity <= 0:
            raise ValueError("trace_capacity must be positive")

    def has(self, feature: Feature) -> bool:
        return bool(self.features & feature)

    @property
    def effective_ipi_mode(self) -> IpiMode:
        """Resolve AUTO against hardware capability."""
        if self.ipi_mode is IpiMode.AUTO:
            return (
                IpiMode.POSTED if self.hw_has_posted_interrupts else IpiMode.TRAP
            )
        if self.ipi_mode is IpiMode.POSTED and not self.hw_has_posted_interrupts:
            return IpiMode.TRAP
        return self.ipi_mode

    # -- the paper's evaluation configurations -----------------------------

    @classmethod
    def none(cls) -> "CovirtConfig":
        """Hypervisor interposed, no protection features ("no-feature")."""
        return cls(features=Feature.NONE)

    @classmethod
    def memory_only(cls) -> "CovirtConfig":
        return cls(features=Feature.MEMORY | Feature.EXCEPTIONS)

    @classmethod
    def memory_ipi(cls) -> "CovirtConfig":
        return cls(features=Feature.MEMORY | Feature.IPI | Feature.EXCEPTIONS)

    @classmethod
    def full(cls) -> "CovirtConfig":
        return cls(features=Feature.ALL)

    def label(self) -> str:
        """Short label used in benchmark tables."""
        if self.features is Feature.NONE:
            return "covirt-none"
        parts = []
        if self.has(Feature.MEMORY):
            parts.append("mem")
        if self.has(Feature.IPI):
            parts.append("ipi")
        if self.has(Feature.MSR):
            parts.append("msr")
        if self.has(Feature.IOPORT):
            parts.append("io")
        if self.has(Feature.EXCEPTIONS) and not parts:
            parts.append("exc")
        return "covirt-" + "+".join(parts)


#: The four configurations every figure in the evaluation sweeps.
#: ``None`` denotes native execution (no Covirt at all).
EVALUATION_CONFIGS: list[tuple[str, "CovirtConfig | None"]] = [
    ("native", None),
    ("covirt-none", CovirtConfig.none()),
    ("covirt-mem", CovirtConfig.memory_only()),
    ("covirt-mem+ipi", CovirtConfig.memory_ipi()),
]
