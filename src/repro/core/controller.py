"""The Covirt controller module.

The controller is the host-side half of Covirt's split architecture
(Section IV-B).  It embeds into the Hobbes master control process and
the Pisces kernel module, hooks every control path that changes the
system-wide hardware configuration, and translates those events into
virtualization-configuration updates:

* **memory grant** (Pisces hot-add, XEMEM attach) — the controller maps
  the region into the enclave's EPT *before* the page-frame list is
  transmitted, then returns immediately: new mappings cannot be stale
  in any TLB, so no hypervisor coordination is needed;
* **memory revoke** (Pisces hot-remove, XEMEM detach) — after the
  co-kernel acknowledges, the controller unmaps the EPT and issues a
  ``MEMORY_UPDATE`` command to every enclave core (NMI doorbell), and
  only returns once each core has flushed — so memory is unreachable
  before it is reclaimed;
* **vector grant/revoke** — the controller rewrites the enclave's IPI
  whitelist directly; since the hypervisor consults the whitelist on
  every trapped ICR write, no cache synchronisation is required.

Updates are asynchronous with respect to the enclave: guest cores keep
running while the controller rewrites EPTs and whitelists, and are only
interrupted when CPU-local state must be invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.debug import FaultDossier

from repro.core.boot import CovirtBootProtocol
from repro.core.commands import CommandQueue, CommandType
from repro.core.ept_manager import EptManager
from repro.core.execution import VirtualizedAccessPort
from repro.core.faults import CovirtFault
from repro.core.features import CovirtConfig, Feature, IpiMode
from repro.core.hypervisor import CovirtHypervisor
from repro.core.ipi import IpiWhitelist
from repro.hobbes.master import MasterControlProcess
from repro.hobbes.registry import VectorGrant
from repro.hw.apic import DeliveryMode
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, PAGE_SIZE
from repro.linuxhost.host import OFFLINE_OWNER
from repro.obs import metric_names
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.perf.counters import PerfCounters
from repro.pisces.enclave import Enclave
from repro.pisces.kmod import COVIRT_IOCTL_BASE
from repro.pisces.trampoline import boot_params_address_for, entry_point_for
from repro.vmx.io_bitmap import IoBitmap
from repro.vmx.msr_bitmap import MsrBitmap
from repro.vmx.posted import PostedInterruptDescriptor
from repro.vmx.vapic import VapicMode, VirtualApicPage
from repro.vmx.vmcs import ExecutionControls, GuestState, Vmcs

#: The fixed vector PIV notification IPIs use (outside the dynamic range).
PIV_NOTIFICATION_VECTOR = 242

#: Hypervisor-private pages per enclave core: command queue, Covirt boot
#: params, and the preallocated 8 KiB (2-page) stack.
PRIVATE_PAGES_PER_CORE = 4


class CovirtIoctl:
    """ioctl command range Covirt registers on the Pisces ABI."""

    STATUS = COVIRT_IOCTL_BASE + 0
    COUNTERS = COVIRT_IOCTL_BASE + 1
    PING = COVIRT_IOCTL_BASE + 2
    DOSSIER = COVIRT_IOCTL_BASE + 3


def covirt_owner(enclave_id: int) -> str:
    return f"covirt:{enclave_id}"


@dataclass
class EnclaveVirtContext:
    """Everything Covirt holds for one protected enclave."""

    enclave: Enclave
    config: CovirtConfig
    costs: CostModel
    private_region: MemoryRegion
    ept: EptManager | None = None
    whitelist: IpiWhitelist | None = None
    msr_bitmap: MsrBitmap | None = None
    io_bitmap: IoBitmap | None = None
    vmcs: dict[int, Vmcs] = field(default_factory=dict)
    queues: dict[int, CommandQueue] = field(default_factory=dict)
    hypervisors: dict[int, CovirtHypervisor] = field(default_factory=dict)
    denied_msr_writes: list[tuple[int, int, int]] = field(default_factory=list)
    denied_io: list[tuple[int, int, int, bool]] = field(default_factory=list)

    def aggregate_counters(self) -> PerfCounters:
        total = PerfCounters()
        for hv in self.hypervisors.values():
            total = total.merge(hv.counters)
        return total


class CovirtController:
    """The controller module, hooked into MCP + Pisces."""

    def __init__(
        self,
        mcp: MasterControlProcess,
        costs: CostModel = DEFAULT_COSTS,
        synchronous_updates: bool = False,
    ) -> None:
        self.mcp = mcp
        self.machine: Machine = mcp.machine
        self.costs = costs
        #: Ablation knob: when True, *every* configuration change pauses
        #: the enclave's cores for a VMCS reload (the traditional
        #: hypervisor approach the paper's asynchronous design avoids).
        self.synchronous_updates = synchronous_updates
        self.contexts: dict[int, EnclaveVirtContext] = {}
        self.fault_log: list[CovirtFault] = []
        #: Subscribers notified *after* a fault has been routed and the
        #: dead enclave's resources reclaimed — the seam the recovery
        #: supervisor (:mod:`repro.recovery.supervisor`) hangs off.
        self.fault_hooks: list = []
        #: Subscribers notified after every virtualization-configuration
        #: update the controller applies (EPT map/unmap, whitelist
        #: rewrite), with ``(tsc, detail)`` also appended to
        #: :attr:`config_log`.  The fuzz oracles use this to know an
        #: async reconfiguration happened and re-audit TLB/EPT
        #: coherence; the log length feeds the determinism fingerprint.
        self.config_hooks: list = []
        self.config_log: list[tuple[int, str]] = []
        #: Crash reports by enclave id (see :mod:`repro.core.debug`).
        self.dossiers: dict[int, "FaultDossier"] = {}
        #: Every co-kernel framework this controller protects.
        self._frameworks: list = []
        self._pending_config: CovirtConfig | None = None
        # Interpose on the Pisces framework (boot path + control paths
        # + ioctl ABI).
        self.interpose_on(mcp.kmod)
        # Hobbes-level control paths (XEMEM, vector namespace).
        mcp.xemem.hooks.pre_attach.append(self._on_memory_grant)
        mcp.xemem.hooks.post_detach.append(self._on_memory_revoke)
        mcp.vectors.on_grant.append(self._on_vector_grant)
        mcp.vectors.on_revoke.append(self._on_vector_revoke)
        mcp.covirt_controller = self
        # Flight recorder: the controller owns the enclave/EPT/whitelist
        # view, so it contributes the "covirt" section of every
        # post-mortem bundle.
        self.machine.obs.flight.register_context("covirt", self.flight_summary)

    def flight_summary(self) -> dict:
        """Deterministic enclave/EPT/whitelist/queue summary for
        post-mortem bundles (must never mutate simulation state)."""
        enclaves = {}
        for eid in sorted(self.contexts):
            ctx = self.contexts[eid]
            enclaves[str(eid)] = {
                "name": ctx.enclave.name,
                "state": ctx.enclave.state.value,
                "features": ctx.config.features.value,
                "cores": sorted(ctx.enclave.assignment.core_ids),
                "ept_mapped_bytes": ctx.ept.mapped_bytes if ctx.ept else 0,
                "whitelist_pairs": (
                    sorted(ctx.whitelist.allowed_pairs())
                    if ctx.whitelist is not None
                    else []
                ),
                "pending_commands": {
                    str(core_id): [
                        cmd.type.name
                        for cmd in ctx.queues[core_id].snapshot_pending()
                    ]
                    for core_id in sorted(ctx.queues)
                },
                "terminated_cores": sorted(
                    core_id
                    for core_id, hv in ctx.hypervisors.items()
                    if hv.terminated
                ),
            }
        return {
            "enclaves": enclaves,
            "faults_logged": len(self.fault_log),
            "config_updates": len(self.config_log),
            "dossiers": sorted(str(eid) for eid in self.dossiers),
        }

    def interpose_on(self, framework) -> None:
        """Interpose Covirt on a co-kernel framework.

        Any framework exposing the integration surface — a
        ``boot_protocol`` seam, a :class:`ControlHooks` instance, and a
        ``register_ioctl`` ABI — can be protected; the paper argues the
        approach generalises across co-kernel architectures
        (Section III-A), and this is that claim made concrete: Pisces
        and the IHK/McKernel-style framework both plug in here.
        """
        self._frameworks.append(framework)
        framework.boot_protocol = CovirtBootProtocol(
            self.machine, self, framework.boot_protocol
        )
        framework.hooks.pre_boot.append(self._on_pre_boot)
        framework.hooks.pre_memory_add.append(self._on_memory_grant)
        framework.hooks.post_memory_remove.append(self._on_memory_revoke)
        framework.hooks.on_teardown.append(self._on_teardown)
        register = getattr(framework, "register_ioctl", None)
        if register is not None:
            register(CovirtIoctl.STATUS, self._ioctl_status)
            register(CovirtIoctl.COUNTERS, self._ioctl_counters)
            register(CovirtIoctl.PING, self._ioctl_ping)
            register(CovirtIoctl.DOSSIER, self._ioctl_dossier)

    # -- public API ------------------------------------------------------

    def launch(self, spec, config: CovirtConfig | None) -> Enclave:
        """Launch a Pisces/Hobbes enclave, protected iff ``config``."""
        with self.machine.obs.tracer.span(
            "controller.launch",
            category="controller",
            track="controller",
            spec_name=getattr(spec, "name", ""),
            protected=config is not None,
        ):
            return self.launch_via(
                lambda: self.mcp.launch_enclave(spec), config
            )

    def launch_via(self, boot_callable, config: CovirtConfig | None):
        """Run any framework's create+boot path with a pending Covirt
        configuration armed (None = native)."""
        self._pending_config = config
        try:
            return boot_callable()
        finally:
            self._pending_config = None

    def context_for(self, enclave_id: int) -> EnclaveVirtContext | None:
        return self.contexts.get(enclave_id)

    # -- boot-time context construction ---------------------------------

    def _on_pre_boot(self, enclave: Enclave) -> None:
        config = self._pending_config
        if config is None:
            return  # native launch: Covirt stays out of the way
        ctx = self._build_context(enclave, config)
        self.contexts[enclave.enclave_id] = ctx
        enclave.virt_context = ctx
        enclave.port = VirtualizedAccessPort(self.machine, ctx)

    def _build_context(
        self, enclave: Enclave, config: CovirtConfig
    ) -> EnclaveVirtContext:
        ncores = len(enclave.assignment.core_ids)
        private = self.mcp.host.offline_memory(
            ncores * PRIVATE_PAGES_PER_CORE * PAGE_SIZE, zone_id=0
        )
        self.machine.memory.transfer(
            private, OFFLINE_OWNER, covirt_owner(enclave.enclave_id)
        )
        ctx = EnclaveVirtContext(
            enclave=enclave,
            config=config,
            costs=self.costs,
            private_region=private,
        )
        if config.has(Feature.MEMORY):
            ctx.ept = EptManager(coalesce=config.ept_coalescing)
            ctx.ept.build_identity(enclave.assignment.regions)
        if config.has(Feature.IPI):
            ctx.whitelist = IpiWhitelist()
        if config.has(Feature.MSR):
            ctx.msr_bitmap = MsrBitmap(trap_by_default=True)
        if config.has(Feature.IOPORT):
            ctx.io_bitmap = IoBitmap(trap_by_default=True)
        vapic_mode = VapicMode.DISABLED
        if config.has(Feature.IPI):
            vapic_mode = (
                VapicMode.POSTED
                if config.effective_ipi_mode is IpiMode.POSTED
                else VapicMode.TRAP
            )
        assert enclave.boot_params is not None
        for idx, core_id in enumerate(enclave.assignment.core_ids):
            base = private.start + idx * PRIVATE_PAGES_PER_CORE * PAGE_SIZE
            queue = CommandQueue(self.machine.memory, base)
            vmcs = Vmcs(
                core_id=core_id,
                guest=GuestState(
                    entry_point=entry_point_for(enclave),
                    boot_params_gpa=boot_params_address_for(enclave),
                ),
                controls=ExecutionControls(
                    external_interrupt_exiting=vapic_mode is not VapicMode.DISABLED,
                    nmi_exiting=True,
                    use_msr_bitmap=config.has(Feature.MSR),
                    use_io_bitmap=config.has(Feature.IOPORT),
                    enable_ept=config.has(Feature.MEMORY),
                    vapic_mode=vapic_mode,
                ),
                ept=ctx.ept.table if ctx.ept is not None else None,
                msr_bitmap=ctx.msr_bitmap,
                io_bitmap=ctx.io_bitmap,
            )
            if vapic_mode is not VapicMode.DISABLED:
                vmcs.vapic_page = VirtualApicPage(core_id)
            if vapic_mode is VapicMode.POSTED:
                vmcs.pi_descriptor = PostedInterruptDescriptor(
                    PIV_NOTIFICATION_VECTOR
                )
            hv = CovirtHypervisor(
                machine=self.machine,
                core=self.machine.core(core_id),
                ctx=ctx,
                vmcs=vmcs,
                queue=queue,
                stack_addr=base + 2 * PAGE_SIZE,
                costs=self.costs,
            )
            hv.fault_sink = self._on_fault
            ctx.vmcs[core_id] = vmcs
            ctx.queues[core_id] = queue
            ctx.hypervisors[core_id] = hv
        return ctx

    # -- dynamic memory configuration -------------------------------------

    def _note_config(self, detail: str) -> None:
        self.config_log.append((self.machine.clock.now, detail))
        kind = detail.split(" ", 1)[0]
        self.machine.obs.metrics.counter(
            metric_names.CONFIG_UPDATES, "controller configuration rewrites"
        ).inc(kind=kind)
        self.machine.obs.tracer.instant(
            f"controller.config.{kind}",
            category="config",
            track="controller",
            detail=detail,
        )
        for hook in list(self.config_hooks):
            hook(self.machine.clock.now, detail)

    def _on_memory_grant(self, enclave: Enclave, region: MemoryRegion) -> None:
        """Expansion: map first, return immediately (no coordination)."""
        ctx = self.contexts.get(enclave.enclave_id)
        if ctx is None or ctx.ept is None:
            return
        ctx.ept.map_region(region)
        self._note_config(
            f"ept-map enclave {enclave.enclave_id} "
            f"[{region.start:#x}+{region.size:#x}]"
        )
        for vmcs in ctx.vmcs.values():
            vmcs.touch()
        if self.synchronous_updates:
            # Ablation: the conventional approach interrupts every core
            # to activate even grow-only changes.
            self.issue_command(ctx, CommandType.VMCS_RELOAD)

    def _on_memory_revoke(self, enclave: Enclave, region: MemoryRegion) -> None:
        """Shrink: unmap, then force every enclave core to flush before
        the operation is allowed to complete."""
        ctx = self.contexts.get(enclave.enclave_id)
        if ctx is None or ctx.ept is None:
            return
        ctx.ept.unmap_region(region)
        self._note_config(
            f"ept-unmap enclave {enclave.enclave_id} "
            f"[{region.start:#x}+{region.size:#x}]"
        )
        for vmcs in ctx.vmcs.values():
            vmcs.touch()
        self.issue_memory_update(ctx)

    def issue_memory_update(self, ctx: EnclaveVirtContext) -> int:
        """Enqueue MEMORY_UPDATE on every core and ring the NMI doorbell;
        blocks (synchronously, as the paper's unmap path does) until each
        core has completed its flush.  Returns cores updated."""
        return self.issue_command(ctx, CommandType.MEMORY_UPDATE)

    def issue_command(self, ctx: EnclaveVirtContext, ctype: CommandType) -> int:
        """Send a command to every live core of an enclave and wait for
        completion.  The doorbell is a real NMI IPI: delivery invokes
        the hypervisor's service loop on the target core."""
        with self.machine.obs.tracer.span(
            f"controller.command.{ctype.name.lower()}",
            category="controller",
            track="controller",
            enclave=ctx.enclave.enclave_id,
        ) as span:
            updated = 0
            for core_id in ctx.queues:
                if ctx.hypervisors[core_id].terminated:
                    continue
                self.issue_command_to(ctx, core_id, ctype)
                updated += 1
            span.args["cores"] = updated
        if ctype is CommandType.MEMORY_UPDATE:
            self.machine.obs.metrics.histogram(
                metric_names.SHOOTDOWN_FANOUT,
                "cores interrupted per TLB-shootdown drain",
                buckets=(1, 2, 4, 8, 16, 32, 64),
            ).observe(updated)
        return updated

    def issue_command_to(
        self, ctx: EnclaveVirtContext, core_id: int, ctype: CommandType
    ) -> None:
        """Send one command to one live enclave core and wait for it.
        (Recovery replay uses this to re-issue checkpointed commands on
        the specific core they were pending on.)"""
        host_core = min(self.mcp.host.online_cores)
        host_apic = self.machine.core(host_core).apic
        assert host_apic is not None
        queue = ctx.queues[core_id]
        cmd = queue.enqueue(ctype)
        host_apic.write_icr(core_id, 2, DeliveryMode.NMI)
        if not queue.is_completed(cmd):
            raise RuntimeError(
                f"core {core_id} failed to service {ctype.name}"
            )

    # -- vector namespace --------------------------------------------------

    def _on_vector_grant(self, grant: VectorGrant) -> None:
        for sender_id in grant.allowed_senders:
            ctx = self.contexts.get(sender_id)
            if ctx is not None and ctx.whitelist is not None:
                ctx.whitelist.allow(grant.dest_core, grant.vector)
                self._note_config(
                    f"whitelist-allow sender {sender_id} "
                    f"→ core {grant.dest_core} vec {grant.vector}"
                )

    def _on_vector_revoke(self, grant: VectorGrant) -> None:
        for sender_id in grant.allowed_senders:
            ctx = self.contexts.get(sender_id)
            if ctx is not None and ctx.whitelist is not None:
                ctx.whitelist.revoke(grant.dest_core, grant.vector)
                self._note_config(
                    f"whitelist-revoke sender {sender_id} "
                    f"→ core {grant.dest_core} vec {grant.vector}"
                )

    # -- fault path --------------------------------------------------------

    def _on_fault(self, fault: CovirtFault) -> None:
        """A hypervisor terminated its guest: collect the debugging
        dossier, log, tell the MCP to reclaim + notify dependents, and
        finally hand the fault to any recovery subscribers."""
        from repro.core.debug import FaultDossier

        with self.machine.obs.tracer.span(
            "controller.fault",
            category="controller",
            track="controller",
            kind=fault.kind.value,
            enclave=fault.enclave_id,
        ):
            self.fault_log.append(fault)
            ctx = self.contexts.get(fault.enclave_id)
            if ctx is not None:
                # Park the sibling hypervisors too (the whole enclave dies).
                for hv in ctx.hypervisors.values():
                    hv.terminated = True
                # The state a developer gets instead of a dead node.
                self.dossiers[fault.enclave_id] = FaultDossier.collect(ctx, fault)
            # Containment post-mortem: ring tail + metrics + state
            # summary, frozen while the dead enclave's context and
            # dossier are still in hand.
            self.machine.obs.flight.postmortem(
                "containment",
                fault.detail,
                kind=fault.kind.value,
                enclave=fault.enclave_id,
                core=fault.core_id,
            )
            self._route_termination(fault)
            # Only after routing: by now the enclave's resources are back in
            # the host pool, which is the state recovery needs to start from.
            for hook in list(self.fault_hooks):
                hook(fault)

    def _route_termination(self, fault: CovirtFault) -> None:
        """Route termination to whichever framework owns the partition."""
        if fault.enclave_id in self.mcp.kmod.enclaves:
            self.mcp.enclave_failed(fault.enclave_id, fault.to_record())
            return
        for framework in self._frameworks:
            instances = getattr(framework, "instances", None)
            if instances is None:
                continue
            for os_index, enclave in instances.items():
                if enclave.enclave_id == fault.enclave_id:
                    framework.terminate(os_index, fault.to_record())
                    return

    # -- teardown ------------------------------------------------------

    def _on_teardown(self, enclave: Enclave) -> None:
        ctx = self.contexts.pop(enclave.enclave_id, None)
        if ctx is None:
            return
        self.machine.memory.transfer(
            ctx.private_region, covirt_owner(enclave.enclave_id), OFFLINE_OWNER
        )
        self.mcp.host.online_memory_return(ctx.private_region)

    # -- ioctl surface ---------------------------------------------------

    def _ioctl_status(self, enclave_id: int) -> dict:
        ctx = self.contexts.get(enclave_id)
        if ctx is None:
            return {"protected": False}
        return {
            "protected": True,
            "features": ctx.config.features,
            "ipi_mode": ctx.config.effective_ipi_mode.value,
            "ept_mapped_bytes": ctx.ept.mapped_bytes if ctx.ept else 0,
            "terminated": any(h.terminated for h in ctx.hypervisors.values()),
        }

    def _ioctl_counters(self, enclave_id: int) -> PerfCounters:
        ctx = self.contexts.get(enclave_id)
        if ctx is None:
            raise KeyError(f"enclave {enclave_id} is not protected")
        return ctx.aggregate_counters()

    def _ioctl_dossier(self, enclave_id: int) -> "FaultDossier":
        """Fetch the crash report for a terminated enclave."""
        dossier = self.dossiers.get(enclave_id)
        if dossier is None:
            raise KeyError(f"no fault dossier for enclave {enclave_id}")
        return dossier

    def _ioctl_ping(self, enclave_id: int) -> int:
        """Liveness check through the full command path."""
        ctx = self.contexts.get(enclave_id)
        if ctx is None:
            raise KeyError(f"enclave {enclave_id} is not protected")
        host_core = min(self.mcp.host.online_cores)
        host_apic = self.machine.core(host_core).apic
        assert host_apic is not None
        answered = 0
        for core_id, queue in ctx.queues.items():
            if ctx.hypervisors[core_id].terminated:
                continue
            cmd = queue.enqueue(CommandType.PING)
            host_apic.write_icr(core_id, 2, DeliveryMode.NMI)
            if queue.is_completed(cmd):
                answered += 1
        return answered
