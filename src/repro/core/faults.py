"""Fault taxonomy and termination records.

All EPT access violations are abort-class: the hypervisor terminates
the co-kernel, notifies the master control process, and halts the CPU
(Section IV-B).  The record captures enough context to support the
paper's debugging story — the trace you get *instead of* a node crash.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Any

from repro.pisces.enclave import FaultRecord


class FaultKind(enum.Enum):
    EPT_VIOLATION = "ept_violation"
    ABORT_EXCEPTION = "abort_exception"
    SENSITIVE_MSR_WRITE = "sensitive_msr_write"
    TRIPLE_FAULT = "triple_fault"
    CONTROLLER_REQUEST = "controller_request"


def detail_class(detail: str) -> str:
    """Collapse a fault detail string to its *class*: addresses, core
    numbers, and TSC values vary between occurrences of the same bug, so
    grouping (for quarantine policies and dossier dedup) must strip
    them."""
    collapsed = re.sub(r"0x[0-9a-fA-F]+", "<addr>", detail)
    return re.sub(r"\d+", "<n>", collapsed)


@dataclass(frozen=True)
class FaultKey:
    """Stable grouping key for repeated faults.

    ``CovirtFault.qualification`` is excluded from equality
    (``compare=False``) precisely because raw qualifications — EPT
    violation records with addresses, TSCs — are unique per occurrence
    and would defeat dedup.  The key is the hashable identity recovery
    policies group on instead: *(kind, enclave, detail class)*.
    """

    kind: str
    enclave_id: int
    detail_class: str

    @property
    def signature(self) -> tuple[str, str]:
        """Identity that survives re-incarnation: a recovered service
        gets a fresh enclave id, but the same bug produces the same
        (kind, detail class) pair."""
        return (self.kind, self.detail_class)

    def describe(self) -> str:
        return f"{self.kind}[{self.detail_class}]"


def key_from_record(enclave_id: int, record: FaultRecord) -> FaultKey:
    """Build the grouping key from a Pisces-level termination record
    (the form the MCP's fault path sees)."""
    return FaultKey(record.reason, enclave_id, detail_class(record.detail))


@dataclass(frozen=True)
class CovirtFault:
    """A protection fault caught by the hypervisor."""

    kind: FaultKind
    enclave_id: int
    core_id: int
    tsc: int
    detail: str
    #: Raw qualification (EptViolationInfo, vector, msr index, ...).
    qualification: Any = field(default=None, compare=False)

    def key(self) -> FaultKey:
        """Stable dedup/grouping key (kind, enclave, detail class)."""
        return FaultKey(self.kind.value, self.enclave_id, detail_class(self.detail))

    def to_record(self) -> FaultRecord:
        """The record handed to Pisces/Hobbes for termination."""
        return FaultRecord(
            reason=self.kind.value,
            detail=self.detail,
            core_id=self.core_id,
            tsc=self.tsc,
        )

    def describe(self) -> str:
        return (
            f"[enclave {self.enclave_id} / core {self.core_id} @ {self.tsc}] "
            f"{self.kind.value}: {self.detail}"
        )


class EnclaveFaultError(Exception):
    """Raised back into the simulated guest's execution when its enclave
    is terminated mid-operation (the Python analogue of the vCPU never
    returning from the faulting instruction)."""

    def __init__(self, fault: CovirtFault) -> None:
        super().__init__(fault.describe())
        self.fault = fault
