"""Fault taxonomy and termination records.

All EPT access violations are abort-class: the hypervisor terminates
the co-kernel, notifies the master control process, and halts the CPU
(Section IV-B).  The record captures enough context to support the
paper's debugging story — the trace you get *instead of* a node crash.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.pisces.enclave import FaultRecord


class FaultKind(enum.Enum):
    EPT_VIOLATION = "ept_violation"
    ABORT_EXCEPTION = "abort_exception"
    SENSITIVE_MSR_WRITE = "sensitive_msr_write"
    TRIPLE_FAULT = "triple_fault"
    CONTROLLER_REQUEST = "controller_request"


@dataclass(frozen=True)
class CovirtFault:
    """A protection fault caught by the hypervisor."""

    kind: FaultKind
    enclave_id: int
    core_id: int
    tsc: int
    detail: str
    #: Raw qualification (EptViolationInfo, vector, msr index, ...).
    qualification: Any = field(default=None, compare=False)

    def to_record(self) -> FaultRecord:
        """The record handed to Pisces/Hobbes for termination."""
        return FaultRecord(
            reason=self.kind.value,
            detail=self.detail,
            core_id=self.core_id,
            tsc=self.tsc,
        )

    def describe(self) -> str:
        return (
            f"[enclave {self.enclave_id} / core {self.core_id} @ {self.tsc}] "
            f"{self.kind.value}: {self.detail}"
        )


class EnclaveFaultError(Exception):
    """Raised back into the simulated guest's execution when its enclave
    is terminated mid-operation (the Python analogue of the vCPU never
    returning from the faulting instruction)."""

    def __init__(self, fault: CovirtFault) -> None:
        super().__init__(fault.describe())
        self.fault = fault
