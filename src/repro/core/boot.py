"""Covirt's boot interposition.

Pisces' trampoline is repurposed: instead of jumping into the co-kernel,
an enclave CPU boots into the Covirt hypervisor, which performs the VMX
hardware setup and launches the co-kernel as a guest *at the same entry
point with the same register state* the native trampoline would have
produced.  The co-kernel cannot tell the difference (Section IV-C).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.bootparams import CovirtBootParams
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import CovirtController
    from repro.pisces.enclave import Enclave
    from repro.pisces.trampoline import BootProtocol


class CovirtBootProtocol:
    """Boot protocol that interposes the hypervisor when the enclave has
    a Covirt context, and falls back to the native path otherwise."""

    def __init__(
        self,
        machine: Machine,
        controller: "CovirtController",
        native_fallback: "BootProtocol",
    ) -> None:
        self.machine = machine
        self.controller = controller
        self.native = native_fallback

    def boot_core(self, enclave: "Enclave", core_id: int, is_bsp: bool) -> None:
        from repro.core.controller import PRIVATE_PAGES_PER_CORE
        from repro.pisces.trampoline import kernel_class_for

        ctx = self.controller.context_for(enclave.enclave_id)
        if ctx is None:
            self.native.boot_core(enclave, core_id, is_bsp)
            return
        core = self.machine.core(core_id)
        core.advance(5_000)  # trampoline (same as native)
        # Write the per-core Covirt boot-parameter structure into the
        # hypervisor-private page, wrapping the unmodified Pisces params.
        idx = enclave.assignment.core_ids.index(core_id)
        base = ctx.private_region.start + idx * PRIVATE_PAGES_PER_CORE * PAGE_SIZE
        assert enclave.boot_params is not None
        params = CovirtBootParams(
            core_id=core_id,
            pisces_params_addr=enclave.boot_params.address,
            command_queue_addr=base,
            stack_addr=base + 2 * PAGE_SIZE,
            feature_bits=ctx.config.features.value,
        )
        params.write_to(self.machine.memory, base + PAGE_SIZE)
        # The hypervisor owns this core's physical interrupt delivery
        # from here on.
        hv = ctx.hypervisors[core_id]
        apic = core.apic
        assert apic is not None
        apic.delivery_hook = hv.on_physical_interrupt
        # VMPTRLD + VMLAUNCH straight into the co-kernel entry point.
        hv.launch()
        if is_bsp:
            enclave.kernel = kernel_class_for(enclave).boot(self.machine, enclave)
        else:
            assert enclave.kernel is not None, "BSP must boot first"
            enclave.kernel.join_secondary_core(core_id)
        core.context = enclave.kernel

    def describe(self) -> str:
        return "covirt (hypervisor interposed)"
