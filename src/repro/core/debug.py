"""Fault dossiers: the debugging traces Covirt makes possible.

Section V's war stories end the same way every time: *without* Covirt a
bug takes down the node and leaves nothing to debug; *with* Covirt the
enclave is terminated cleanly and the interesting state survives.  The
paper credits this with cutting "complex debugging efforts from weeks
to days".

A :class:`FaultDossier` is that surviving state, collected by the
controller at termination time: the fault itself, every core's
hypervisor counters and final register/TSC state, the EPT's shape, the
whitelist's drop log, the tail of the co-kernel console, and the last
commands each core serviced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.faults import CovirtFault
from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import EnclaveVirtContext


@dataclass
class CoreSnapshot:
    """Final architectural state of one enclave core."""

    core_id: int
    tsc: int
    mode: str
    halted: bool
    vm_entries: int
    total_exits: int
    exits_by_reason: dict[str, int]
    tlb_entries: int
    pending_commands: int
    trace_tail: list[str] = field(default_factory=list)


@dataclass
class FaultDossier:
    """Everything a developer gets instead of a dead node."""

    fault: CovirtFault
    enclave_name: str
    cores: list[CoreSnapshot] = field(default_factory=list)
    ept_mapped_bytes: int = 0
    ept_entries: dict[int, int] = field(default_factory=dict)
    dropped_ipis: list[str] = field(default_factory=list)
    denied_msr_writes: list[tuple[int, int, int]] = field(default_factory=list)
    denied_io: list[tuple[int, int, int, bool]] = field(default_factory=list)
    console_tail: list[str] = field(default_factory=list)
    features: str = ""

    @classmethod
    def collect(cls, ctx: "EnclaveVirtContext", fault: CovirtFault) -> "FaultDossier":
        """Snapshot an enclave's state at termination."""
        dossier = cls(
            fault=fault,
            enclave_name=ctx.enclave.name,
            features=ctx.config.label(),
        )
        for core_id, hv in sorted(ctx.hypervisors.items()):
            core = hv.core
            dossier.cores.append(
                CoreSnapshot(
                    core_id=core_id,
                    tsc=core.read_tsc(),
                    mode=core.mode.value,
                    halted=core.halted,
                    vm_entries=core.vm_entries,
                    total_exits=hv.counters.total_exits,
                    exits_by_reason=dict(hv.counters.exits),
                    tlb_entries=len(core.tlb) if core.tlb else 0,
                    pending_commands=hv.queue.pending(),
                    trace_tail=[r.render() for r in hv.trace.tail(8)],
                )
            )
        if ctx.ept is not None:
            dossier.ept_mapped_bytes = ctx.ept.mapped_bytes
            dossier.ept_entries = ctx.ept.entry_counts()
        if ctx.whitelist is not None:
            dossier.dropped_ipis = [
                f"core {d.msg.dest_core} vector {d.msg.vector} @ {d.tsc}: {d.reason}"
                for d in ctx.whitelist.dropped
            ]
        dossier.denied_msr_writes = list(ctx.denied_msr_writes)
        dossier.denied_io = list(ctx.denied_io)
        kernel = ctx.enclave.kernel
        if kernel is not None:
            dossier.console_tail = kernel.console[-10:]
        return dossier

    def render(self) -> str:
        """Human-readable crash report."""
        lines = [
            "=" * 70,
            f"COVIRT FAULT DOSSIER — enclave {self.fault.enclave_id} "
            f"({self.enclave_name!r}, {self.features})",
            "=" * 70,
            f"fault:  {self.fault.describe()}",
            "",
            "cores:",
        ]
        for core in self.cores:
            exits = ", ".join(
                f"{k}={v}" for k, v in sorted(core.exits_by_reason.items())
            ) or "none"
            lines.append(
                f"  core {core.core_id}: tsc={core.tsc} mode={core.mode}"
                f"{' HALTED' if core.halted else ''} entries={core.vm_entries}"
                f" exits[{exits}] tlb={core.tlb_entries}"
                f" pending_cmds={core.pending_commands}"
            )
        if self.ept_entries:
            lines.append(
                f"ept:    {self.ept_mapped_bytes >> 20} MiB mapped "
                f"({self.ept_entries.get(PAGE_SIZE_1G, 0)}x1G, "
                f"{self.ept_entries.get(PAGE_SIZE_2M, 0)}x2M, "
                f"{self.ept_entries.get(PAGE_SIZE, 0)}x4K)"
            )
        if self.dropped_ipis:
            lines.append(f"dropped IPIs ({len(self.dropped_ipis)}):")
            lines += [f"  {entry}" for entry in self.dropped_ipis[-5:]]
        if self.denied_msr_writes:
            lines.append(
                "denied MSR writes: "
                + ", ".join(
                    f"core{c}:{idx:#x}={val:#x}"
                    for c, idx, val in self.denied_msr_writes[-5:]
                )
            )
        if self.denied_io:
            lines.append(
                "denied I/O: "
                + ", ".join(
                    f"core{c}:{'out' if w else 'in'} port {p:#x}"
                    for c, p, _v, w in self.denied_io[-5:]
                )
            )
        if self.console_tail:
            lines.append("co-kernel console (tail):")
            lines += [f"  | {entry}" for entry in self.console_tail]
        for core in self.cores:
            if core.trace_tail:
                lines.append(f"hypervisor trace, core {core.core_id} (tail):")
                lines += [f"  {entry}" for entry in core.trace_tail]
        lines.append("=" * 70)
        return "\n".join(lines)
