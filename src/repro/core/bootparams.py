"""Covirt's boot-parameter structure.

Covirt replaces the Pisces boot-parameter structure handed to the
trampoline with its own, containing the VM configuration, the command
queue, and a pointer to the *unmodified* Pisces structure; at VM launch
the original Pisces address is handed to the co-kernel in a register
(Section IV-C).  Packing it into guest-inaccessible physical memory
keeps that arrangement honest.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.hw.memory import PhysicalMemory

COVIRT_PARAMS_MAGIC = 0xC0B1_2021

_LAYOUT = struct.Struct("<IIQQQI")
# magic, core_id, pisces_params_addr, command_queue_addr, stack_addr, features


@dataclass
class CovirtBootParams:
    """Per-core hypervisor boot parameters."""

    core_id: int
    #: Address of the unmodified Pisces boot params (passed to the guest).
    pisces_params_addr: int
    #: Address of this core's command queue ring.
    command_queue_addr: int
    #: Base of the preallocated 8 KiB hypervisor stack.
    stack_addr: int
    #: Encoded feature flags (for the hypervisor's own introspection).
    feature_bits: int = 0
    address: int = 0

    def pack(self) -> bytes:
        return _LAYOUT.pack(
            COVIRT_PARAMS_MAGIC,
            self.core_id,
            self.pisces_params_addr,
            self.command_queue_addr,
            self.stack_addr,
            self.feature_bits,
        )

    @classmethod
    def unpack(cls, data: bytes, address: int = 0) -> "CovirtBootParams":
        magic, core_id, pisces_addr, queue_addr, stack_addr, features = (
            _LAYOUT.unpack_from(data, 0)
        )
        if magic != COVIRT_PARAMS_MAGIC:
            raise ValueError(f"bad Covirt boot params magic {magic:#x}")
        return cls(core_id, pisces_addr, queue_addr, stack_addr, features, address)

    def write_to(self, memory: PhysicalMemory, address: int) -> int:
        memory.write(address, self.pack())
        self.address = address
        return _LAYOUT.size

    @classmethod
    def read_from(cls, memory: PhysicalMemory, address: int) -> "CovirtBootParams":
        return cls.unpack(memory.read(address, _LAYOUT.size), address)
