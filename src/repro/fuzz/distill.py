"""Corpus distillation: keep the regression corpus minimal-covering.

A fuzz campaign accretes every coverage-novel run, which is the right
greedy policy *during* the search but the wrong steady state for a
committed corpus: later runs often subsume earlier ones.  Distillation
reduces a set of runs to a subset whose union of coverage edges equals
the union over the whole input set — greedy set cover, which is within
ln(n) of optimal and, more importantly here, **deterministic**: ties
break on (fewer steps, lexicographic fingerprint), so the distilled
corpus is a pure function of the input set, independent of input order.

Failing runs are never dropped: a reproducer earns its place by the bug
it pins, not by the edges it covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.fuzz.recorder import FuzzRun


@dataclass
class DistillResult:
    """Which runs survived and what they cover."""

    kept: list[FuzzRun]
    dropped: list[FuzzRun]
    #: Union of input edge ids — by construction also the union over
    #: ``kept``.
    covered: frozenset[str] = field(default_factory=frozenset)

    def describe(self) -> str:
        return (
            f"distilled {len(self.kept) + len(self.dropped)} -> "
            f"{len(self.kept)} entries covering {len(self.covered)} edges"
        )


def minimal_cover(
    items: Sequence[tuple[frozenset[str], tuple]],
) -> list[int]:
    """Indexes of a greedy minimal covering subset of ``items``.

    Each item is ``(edge_ids, tie_break)``; at every round the item
    covering the most still-uncovered edges wins, ties resolved by the
    smaller ``tie_break`` tuple.  Items contributing nothing new are
    dropped.  The result is sorted by index for stable output order.
    """
    universe: set[str] = set()
    for edges, _ in items:
        universe |= edges
    uncovered = set(universe)
    chosen: list[int] = []
    remaining = list(range(len(items)))
    while uncovered and remaining:
        best_i = None
        best_rank: tuple | None = None
        for i in remaining:
            gain = len(items[i][0] & uncovered)
            if gain == 0:
                continue
            rank = (-gain, items[i][1])
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_i = i
        if best_i is None:
            break
        chosen.append(best_i)
        uncovered -= items[best_i][0]
        remaining.remove(best_i)
    return sorted(chosen)


def _run_edges(run: FuzzRun) -> frozenset[str]:
    return frozenset(run.coverage)


def _tie_break(run: FuzzRun) -> tuple:
    return (len(run.steps), run.fingerprint)


def distill_runs(
    runs: Iterable[FuzzRun], keep_failures: bool = True
) -> DistillResult:
    """Reduce ``runs`` to a minimal-covering subset (plus, by default,
    every failing run regardless of coverage)."""
    runs = list(runs)
    keepers: list[FuzzRun] = []
    candidates: list[FuzzRun] = []
    for run in runs:
        if keep_failures and run.failure is not None:
            keepers.append(run)
        else:
            candidates.append(run)
    covered_by_keepers: set[str] = set()
    for run in keepers:
        covered_by_keepers |= _run_edges(run)
    universe = set(covered_by_keepers)
    for run in candidates:
        universe |= _run_edges(run)
    # Only edges the keepers don't already pin need covering.
    items = [
        (_run_edges(run) - covered_by_keepers, _tie_break(run))
        for run in candidates
    ]
    chosen = set(minimal_cover(items))
    kept = keepers + [run for i, run in enumerate(candidates) if i in chosen]
    dropped = [run for i, run in enumerate(candidates) if i not in chosen]
    # Deterministic output order regardless of input order.
    kept.sort(key=lambda r: (r.failure is None, _tie_break(r)))
    dropped.sort(key=lambda r: _tie_break(r))
    return DistillResult(
        kept=kept, dropped=dropped, covered=frozenset(universe)
    )
