"""Machine-wide invariant oracles.

Every fuzz step ends with a full audit of the simulated machine.  Each
oracle is a named predicate over global state — not over the action that
just ran — so a violation means Covirt's *containment story* broke, not
merely that a guest misbehaved (guests are supposed to misbehave; that
is the point of the fuzzer).

The pack is a plain list of ``(name, check)`` pairs; tests and
downstream users extend it with :meth:`OraclePack.add` (see
``docs/fuzzing.md``).  Checks raise :class:`OracleViolation` with the
oracle's name and a concrete description of the broken state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.controller import covirt_owner
from repro.hw.ioports import HOST_OWNED_PORTS
from repro.hw.msr import SENSITIVE_MSRS
from repro.pisces.enclave import EnclaveState
from repro.pisces.resources import enclave_owner

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.env import CovirtEnvironment


class OracleViolation(AssertionError):
    """An invariant the machine must always satisfy does not hold."""

    def __init__(self, oracle: str, detail: str) -> None:
        self.oracle = oracle
        self.detail = detail
        super().__init__(f"[{oracle}] {detail}")


class OraclePack:
    """The standing invariant audit for one :class:`CovirtEnvironment`.

    Holds the monotonicity baselines (last observed clock and per-core
    TSCs) and the set of enclave ids known to be dead, which the engine
    updates as enclaves fault, recover, or shut down.
    """

    def __init__(self, env: "CovirtEnvironment") -> None:
        self.env = env
        #: Enclave ids that must own nothing anymore: faulted + reclaimed,
        #: torn down, or superseded by a recovery relaunch.
        self.dead_enclave_ids: set[int] = set()
        self._last_clock = env.machine.clock.now
        self._last_tsc = {c.core_id: c.read_tsc() for c in env.machine.cores}
        self._extra: list[tuple[str, Callable[["CovirtEnvironment"], None]]] = []

    def add(self, name: str, check: Callable[["CovirtEnvironment"], None]) -> None:
        """Register an additional oracle; ``check(env)`` raises
        :class:`OracleViolation` (or any exception) on violation."""
        self._extra.append((name, check))

    def names(self) -> list[str]:
        return [name for name, _ in self._oracles()]

    # -- driving -----------------------------------------------------------

    def check_all(self) -> list[str]:
        """Run every oracle; returns the names checked.  Raises
        :class:`OracleViolation` on the first failure (after snapshotting
        a flight-recorder post-mortem — a broken machine-wide invariant
        is exactly the state a post-fault diagnosis needs frozen)."""
        names = []
        for name, check in self._oracles():
            try:
                check(self.env)
            except OracleViolation as violation:
                self._postmortem(violation)
                raise
            except AssertionError as exc:
                violation = OracleViolation(name, str(exc))
                self._postmortem(violation)
                raise violation from exc
            names.append(name)
        return names

    def _postmortem(self, violation: OracleViolation) -> None:
        self.env.machine.obs.flight.postmortem(
            "oracle",
            violation.detail,
            oracle=violation.oracle,
        )

    def _oracles(self):
        return [
            ("host-integrity", self._check_host),
            ("ownership-disjoint", self._check_ownership),
            ("assignment-disjoint", self._check_assignments),
            ("ept-coverage", self._check_ept_coverage),
            ("tlb-ept-coherence", self._check_tlb_coherence),
            ("vector-whitelist-closure", self._check_whitelists),
            ("msr-io-closure", self._check_msr_io),
            ("scrub-clean", self._check_scrubbed),
            ("clock-monotonic", self._check_clock),
        ] + self._extra

    # -- helpers -----------------------------------------------------------

    def _live_contexts(self):
        for eid, ctx in self.env.controller.contexts.items():
            if ctx.enclave.state is EnclaveState.RUNNING:
                yield eid, ctx

    @staticmethod
    def _fail(oracle: str, detail: str) -> None:
        raise OracleViolation(oracle, detail)

    # -- the invariants ----------------------------------------------------

    def _check_host(self, env: "CovirtEnvironment") -> None:
        """Host memory integrity: Linux never dies and no canary page is
        ever corrupted — the paper's headline containment claim."""
        if not env.host.alive:
            self._fail("host-integrity", "host kernel panicked")
        if not env.host.verify_integrity():
            self._fail("host-integrity", "host canary page corrupted")

    def _check_ownership(self, env: "CovirtEnvironment") -> None:
        """Page-ownership disjointness + conservation: the interval map
        partitions physical memory exactly (no gaps, no overlaps)."""
        env.machine.memory.check_invariants()
        total = sum(
            end - start
            for start, end, _ in env.machine.memory._owners.intervals()
        )
        if total != env.machine.memory.size:
            self._fail(
                "ownership-disjoint",
                f"ownership covers {total:#x} of {env.machine.memory.size:#x}",
            )

    def _check_assignments(self, env: "CovirtEnvironment") -> None:
        """No core or memory region belongs to two running enclaves."""
        seen_cores: dict[int, int] = {}
        spans: list[tuple[int, int, int]] = []
        for eid, enclave in env.mcp.kmod.enclaves.items():
            if enclave.state is not EnclaveState.RUNNING:
                continue
            for core_id in enclave.assignment.core_ids:
                if core_id in seen_cores:
                    self._fail(
                        "assignment-disjoint",
                        f"core {core_id} assigned to enclaves "
                        f"{seen_cores[core_id]} and {eid}",
                    )
                seen_cores[core_id] = eid
            for region in enclave.assignment.regions:
                spans.append((region.start, region.start + region.size, eid))
        spans.sort()
        for (s1, e1, id1), (s2, _e2, id2) in zip(spans, spans[1:]):
            if e1 > s2:
                self._fail(
                    "assignment-disjoint",
                    f"regions of enclaves {id1} and {id2} overlap at {s2:#x}",
                )

    def _check_ept_coverage(self, env: "CovirtEnvironment") -> None:
        """Each protected enclave's EPT maps exactly its assignment plus
        its live XEMEM attachments — nothing more, nothing less."""
        for eid, ctx in self._live_contexts():
            if ctx.ept is None:
                continue
            ctx.ept.table.check_invariants()
            attached = sum(
                seg.size
                for seg in env.mcp.xemem.names.segments_attached_by(eid)
            )
            expected = ctx.enclave.assignment.total_memory + attached
            if ctx.ept.mapped_bytes != expected:
                self._fail(
                    "ept-coverage",
                    f"enclave {eid} EPT maps {ctx.ept.mapped_bytes:#x} bytes, "
                    f"expected {expected:#x} "
                    f"(assignment {ctx.enclave.assignment.total_memory:#x} "
                    f"+ attached {attached:#x})",
                )

    def _check_tlb_coherence(self, env: "CovirtEnvironment") -> None:
        """No enclave core caches a translation its EPT no longer backs.

        The controller's unmap path blocks until every core has flushed
        (MEMORY_UPDATE over the NMI doorbell), so *between* steps a stale
        TLB entry means the async-reconfiguration protocol lost a flush.
        """
        for eid, ctx in self._live_contexts():
            if ctx.ept is None:
                continue
            for core_id in ctx.hypervisors:
                tlb = env.machine.core(core_id).tlb
                if tlb is None:
                    continue
                for entry in tlb.entries():
                    result = ctx.ept.table.translate(entry.virt_page)
                    if not isinstance(result, tuple):
                        self._fail(
                            "tlb-ept-coherence",
                            f"core {core_id} caches stale translation for "
                            f"{entry.virt_page:#x} (enclave {eid}): "
                            f"{result.describe()}",
                        )
                    elif result[0] != entry.phys_page:
                        self._fail(
                            "tlb-ept-coherence",
                            f"core {core_id} TLB says {entry.virt_page:#x}→"
                            f"{entry.phys_page:#x} but EPT says →{result[0]:#x}",
                        )

    def _check_whitelists(self, env: "CovirtEnvironment") -> None:
        """IPI whitelists mirror the vector registry exactly: every
        allowed (core, vector) pair is backed by a grant naming this
        enclave as sender, and every grant is reflected in the
        whitelist.  A one-sided mismatch is a leaked signalling right
        (or a lost one) across enclaves."""
        for eid, ctx in self._live_contexts():
            if ctx.whitelist is None:
                continue
            allowed = ctx.whitelist.allowed_pairs()
            for dest_core, vector in allowed:
                if not env.mcp.vectors.may_send(eid, dest_core, vector):
                    self._fail(
                        "vector-whitelist-closure",
                        f"enclave {eid} whitelist allows core {dest_core} "
                        f"vec {vector} without a registry grant",
                    )
            for grant in env.mcp.vectors.active_grants():
                if eid in grant.allowed_senders and (
                    (grant.dest_core, grant.vector) not in allowed
                ):
                    self._fail(
                        "vector-whitelist-closure",
                        f"grant core {grant.dest_core} vec {grant.vector} "
                        f"names enclave {eid} as sender but its whitelist "
                        f"does not reflect it",
                    )

    def _check_msr_io(self, env: "CovirtEnvironment") -> None:
        """Sensitive MSRs and host-owned ports always trap: no bitmap
        drift may ever let a guest write IA32_FEATURE_CONTROL natively
        or drive the host's UART."""
        for eid, ctx in self._live_contexts():
            if ctx.msr_bitmap is not None:
                leaked = SENSITIVE_MSRS & ctx.msr_bitmap.passthrough_writes()
                if leaked:
                    self._fail(
                        "msr-io-closure",
                        f"enclave {eid} passes through sensitive MSR writes "
                        f"{sorted(hex(m) for m in leaked)}",
                    )
                for msr in SENSITIVE_MSRS:
                    if not ctx.msr_bitmap.should_exit(msr, is_write=True):
                        self._fail(
                            "msr-io-closure",
                            f"enclave {eid}: write to MSR {msr:#x} would "
                            f"not exit",
                        )
            if ctx.io_bitmap is not None:
                open_ports = HOST_OWNED_PORTS & ctx.io_bitmap.allowed_ports()
                if open_ports:
                    self._fail(
                        "msr-io-closure",
                        f"enclave {eid} may drive host-owned ports "
                        f"{sorted(hex(p) for p in open_ports)}",
                    )

    def _check_scrubbed(self, env: "CovirtEnvironment") -> None:
        """Dead incarnations own nothing: after fault reclaim, teardown,
        or recovery relaunch, no resource may still be tagged with a
        dead enclave's identity."""
        memory = env.machine.memory
        for eid in sorted(self.dead_enclave_ids):
            if eid in env.controller.contexts:
                ctx = env.controller.contexts[eid]
                if ctx.enclave.state is EnclaveState.RUNNING:
                    continue  # id reused by a live incarnation
                self._fail(
                    "scrub-clean",
                    f"controller still holds a context for dead enclave {eid}",
                )
            for owner in (enclave_owner(eid), covirt_owner(eid)):
                leaked = memory.owned_by(owner)
                if leaked:
                    self._fail(
                        "scrub-clean",
                        f"dead enclave {eid} still owns "
                        f"{sum(r.size for r in leaked):#x} bytes as {owner!r}",
                    )
            grants = env.mcp.vectors.grants_involving(eid)
            if grants:
                self._fail(
                    "scrub-clean",
                    f"dead enclave {eid} still involved in "
                    f"{len(grants)} vector grants",
                )
            owned = env.mcp.xemem.names.segments_owned_by(eid)
            if owned:
                self._fail(
                    "scrub-clean",
                    f"dead enclave {eid} still exports XEMEM segments "
                    f"{[s.name for s in owned]}",
                )

    def _check_clock(self, env: "CovirtEnvironment") -> None:
        """The cycle clock and every core TSC only move forward."""
        now = env.machine.clock.now
        if now < self._last_clock:
            self._fail(
                "clock-monotonic",
                f"global clock went backwards: {self._last_clock} → {now}",
            )
        self._last_clock = now
        for core in env.machine.cores:
            tsc = core.read_tsc()
            if tsc < self._last_tsc[core.core_id]:
                self._fail(
                    "clock-monotonic",
                    f"core {core.core_id} TSC went backwards: "
                    f"{self._last_tsc[core.core_id]} → {tsc}",
                )
            self._last_tsc[core.core_id] = tsc
