"""repro.fuzz — deterministic fault-injection fuzzing for Covirt.

A seeded engine drives randomized sequences of guest actions — memory
touches inside/outside the assignment, IPIs to owned and foreign cores,
MSR/port accesses on and off the whitelist, XEMEM churn, hot-plug
reassignment races, abort-class exceptions, and mid-recovery re-faults —
against a multi-enclave :class:`~repro.harness.env.CovirtEnvironment`.
Every step is checked by an oracle pack of machine-wide invariants, any
run is replayable byte-for-byte from ``(seed, schedule)``, failing
sequences shrink to their shortest reproducer, and reproducers
serialize to a JSON corpus that pytest replays as regression tests.

On top of the single-run engine sits a coverage-guided campaign layer:
:mod:`repro.fuzz.coverage` hashes the behaviour the obs layer already
emits (span names, exit reasons, oracle states, recovery phases) into
stable edge ids, :mod:`repro.fuzz.mutate` derives new action sequences
from interesting parents as pure functions of
``(parent_fingerprint, mutation_seed)``, :mod:`repro.fuzz.pool` fans
executions out over a ``multiprocessing`` pool with a deterministic
merge (same result for any worker count), and :mod:`repro.fuzz.distill`
keeps the regression corpus minimal-covering via greedy set cover.

Because the whole simulator is deterministic given its inputs, the
engine's RNG is the *only* entropy in a run: two runs with the same
``(seed, schedule, steps)`` produce identical event traces, identical
performance counters, and identical final machine state.
"""

from repro.fuzz.actions import Action, ActionKind
from repro.fuzz.corpus import load_corpus, load_run, save_run
from repro.fuzz.coverage import CoverageMap, StepCoverage, edge_id
from repro.fuzz.distill import DistillResult, distill_runs, minimal_cover
from repro.fuzz.engine import FuzzEngine, SCHEDULES
from repro.fuzz.mutate import MUTATORS, mutate_actions, validate_actions
from repro.fuzz.oracles import OraclePack, OracleViolation
from repro.fuzz.pool import (
    BatchStats,
    CampaignResult,
    FuzzCampaign,
    run_batched,
    save_campaign,
)
from repro.fuzz.recorder import (
    ENGINE_VERSION,
    FORMAT_VERSION,
    FuzzRun,
    ReplayResult,
    StepRecord,
    replay_run,
)
from repro.fuzz.rng import DEFAULT_SEED, FuzzRng, named_stream
from repro.fuzz.shrink import ShrinkResult, shrink_run

__all__ = [
    "Action",
    "ActionKind",
    "BatchStats",
    "CampaignResult",
    "CoverageMap",
    "DEFAULT_SEED",
    "DistillResult",
    "ENGINE_VERSION",
    "FORMAT_VERSION",
    "FuzzCampaign",
    "FuzzEngine",
    "FuzzRng",
    "FuzzRun",
    "MUTATORS",
    "OraclePack",
    "OracleViolation",
    "ReplayResult",
    "SCHEDULES",
    "ShrinkResult",
    "StepCoverage",
    "StepRecord",
    "distill_runs",
    "edge_id",
    "load_corpus",
    "load_run",
    "minimal_cover",
    "mutate_actions",
    "named_stream",
    "replay_run",
    "run_batched",
    "save_campaign",
    "save_run",
    "shrink_run",
]
