"""repro.fuzz — deterministic fault-injection fuzzing for Covirt.

A seeded engine drives randomized sequences of guest actions — memory
touches inside/outside the assignment, IPIs to owned and foreign cores,
MSR/port accesses on and off the whitelist, XEMEM churn, hot-plug
reassignment races, abort-class exceptions, and mid-recovery re-faults —
against a multi-enclave :class:`~repro.harness.env.CovirtEnvironment`.
Every step is checked by an oracle pack of machine-wide invariants, any
run is replayable byte-for-byte from ``(seed, schedule)``, failing
sequences shrink to their shortest reproducer, and reproducers
serialize to a JSON corpus that pytest replays as regression tests.

Because the whole simulator is deterministic given its inputs, the
engine's RNG is the *only* entropy in a run: two runs with the same
``(seed, schedule, steps)`` produce identical event traces, identical
performance counters, and identical final machine state.
"""

from repro.fuzz.actions import Action, ActionKind
from repro.fuzz.corpus import load_corpus, load_run, save_run
from repro.fuzz.engine import FuzzEngine, SCHEDULES
from repro.fuzz.oracles import OraclePack, OracleViolation
from repro.fuzz.recorder import FuzzRun, ReplayResult, StepRecord, replay_run
from repro.fuzz.rng import DEFAULT_SEED, FuzzRng, named_stream
from repro.fuzz.shrink import ShrinkResult, shrink_run

__all__ = [
    "Action",
    "ActionKind",
    "DEFAULT_SEED",
    "FuzzEngine",
    "FuzzRng",
    "FuzzRun",
    "OraclePack",
    "OracleViolation",
    "ReplayResult",
    "SCHEDULES",
    "ShrinkResult",
    "StepRecord",
    "load_corpus",
    "load_run",
    "named_stream",
    "replay_run",
    "save_run",
    "shrink_run",
]
