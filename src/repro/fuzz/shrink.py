"""Sequence minimization (delta debugging).

Given a failing :class:`~repro.fuzz.recorder.FuzzRun`, find a much
shorter action sequence that still fails *the same way* — same failure
kind and same oracle/exception detail class — using greedy ddmin:
repeatedly try dropping chunks of the sequence (halving chunk size as
progress stalls) and keep any subsequence that preserves the failure.

Soundness rests on the engine's skip semantics: any subsequence of a
valid action list is itself a valid action list (actions whose targets
vanished degrade to recorded skips), so the shrinker never has to
understand action dependencies — it just deletes and re-executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.fuzz.actions import Action
from repro.fuzz.recorder import FuzzRun


def _failure_signature(run: FuzzRun) -> tuple[str, str] | None:
    """What must be preserved: the failure kind and a detail class that
    ignores volatile specifics (ids, addresses, clocks)."""
    if run.failure is None:
        return None
    detail = str(run.failure["detail"])
    # Keep the stable prefix: "[oracle-name]" or "ExcType:".
    head = detail.split(" ", 1)[0]
    return (str(run.failure["kind"]), head)


@dataclass
class ShrinkResult:
    """A minimized reproducer plus how much work it took."""

    original: FuzzRun
    minimized: FuzzRun
    executions: int
    #: Step counts along the way, for the curious.
    trajectory: list[int] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.original.steps) - len(self.minimized.steps)

    def describe(self) -> str:
        return (
            f"shrunk {len(self.original.steps)} → "
            f"{len(self.minimized.steps)} actions "
            f"in {self.executions} executions"
        )


def shrink_run(
    run: FuzzRun,
    *,
    max_executions: int = 200,
    execute: "Callable[[list[Action]], FuzzRun] | None" = None,
) -> ShrinkResult:
    """Minimize ``run`` to a shorter sequence with the same failure.

    ``execute`` replays a candidate action list on a fresh environment
    (injectable for tests); the default builds a new
    :class:`~repro.fuzz.engine.FuzzEngine` with the run's seed/schedule.
    """
    if run.failure is None:
        raise ValueError("cannot shrink a clean run")
    target = _failure_signature(run)

    if execute is None:

        def execute(actions: list[Action]) -> FuzzRun:
            from repro.fuzz.engine import FuzzEngine

            return FuzzEngine(seed=run.seed, schedule=run.schedule).replay(actions)

    executions = 0
    trajectory = [len(run.steps)]

    def still_fails(actions: list[Action]) -> FuzzRun | None:
        nonlocal executions
        executions += 1
        candidate = execute(actions)
        if _failure_signature(candidate) == target:
            return candidate
        return None

    # The recorded run may have trailing actions after the failing step
    # (it shouldn't — the engine stops — but corpora are data).  Start
    # from the failing prefix.
    best_actions = [s.action for s in run.steps[: run.failure["step"] + 1]]
    best = still_fails(best_actions)
    if best is None:  # prefix alone doesn't reproduce; keep everything
        best_actions = [s.action for s in run.steps]
        best = execute(best_actions)
        executions += 1

    chunk = max(len(best_actions) // 2, 1)
    while chunk >= 1 and executions < max_executions:
        shrunk_this_pass = False
        start = 0
        while start < len(best_actions) and executions < max_executions:
            candidate_actions = best_actions[:start] + best_actions[start + chunk:]
            if not candidate_actions:
                start += chunk
                continue
            candidate = still_fails(candidate_actions)
            if candidate is not None:
                best_actions = candidate_actions
                best = candidate
                trajectory.append(len(best_actions))
                shrunk_this_pass = True
                # Do not advance: the next chunk slid into this spot.
            else:
                start += chunk
        if not shrunk_this_pass:
            if chunk == 1:
                break
            chunk = max(chunk // 2, 1)

    return ShrinkResult(
        original=run,
        minimized=best,
        executions=executions,
        trajectory=trajectory,
    )
