"""The on-disk regression corpus.

Each corpus file is one serialized :class:`~repro.fuzz.recorder.FuzzRun`
(JSON).  ``tests/fuzz/test_corpus_replay.py`` replays every file on a
fresh environment and requires byte-for-byte reproduction: since the
recorded outcomes include every fault signature, denial, recovery, and
the final machine fingerprint, a corpus entry is a very dense regression
test — any behavioural drift anywhere in the stack breaks its replay.

Clean runs are corpus-worthy too: they pin down the *expected* behaviour
of scenarios the fuzzer found interesting.  Genuine failures (oracle
violations, unexpected exceptions) should be shrunk first, then
committed; fixing the underlying bug will break the entry's replay,
at which point it gets re-recorded against the fixed behaviour.
"""

from __future__ import annotations

from pathlib import Path

from repro.fuzz.recorder import FuzzRun

#: Default corpus location, relative to the repo root.
DEFAULT_CORPUS_DIR = Path("tests/fuzz/corpus")


def corpus_name(run: FuzzRun) -> str:
    """Canonical filename: schedule, seed, length, fingerprint prefix."""
    tag = "fail" if run.failure is not None else "clean"
    return (
        f"{run.schedule}-s{run.seed}-n{len(run.steps)}"
        f"-{tag}-{run.fingerprint[:12]}.json"
    )


def save_run(run: FuzzRun, directory: str | Path, name: str | None = None) -> Path:
    """Serialize ``run`` into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (name or corpus_name(run))
    path.write_text(run.to_json())
    return path


def load_run(path: str | Path) -> FuzzRun:
    path = Path(path)
    try:
        return FuzzRun.from_json(path.read_text())
    except ValueError as exc:  # includes json.JSONDecodeError
        raise ValueError(f"{path}: {exc}") from exc


def load_corpus(directory: str | Path) -> list[tuple[Path, FuzzRun]]:
    """Every ``*.json`` run in ``directory``, sorted by filename so
    iteration order is stable across filesystems."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_run(path)) for path in sorted(directory.glob("*.json"))
    ]
