"""Behavioural coverage: the search signal for coverage-guided fuzzing.

The simulator has no compiled-in edge instrumentation to borrow, but it
emits something better suited to a co-kernel: a structured stream of
*observable behaviour* — span names from the obs layer (``hv.exit.*``
dispatches, controller launches, recovery phases, XEMEM operations),
per-step action outcomes, fault signatures, and oracle verdicts.  This
module collapses that stream into **edges**: stable, content-hashed ids
over normalized behaviour features.  A fuzz input is *interesting* when
its run produces an edge no prior input produced.

Feature kinds (all normalized so volatile specifics — enclave ids,
addresses, clocks — never mint spurious edges):

* ``step:<kind>:<outcome-class>`` — what an action did;
* ``span:<name>`` — a span name the step's dispatch closed;
* ``edge:<kind>-><name>`` — a span name *in the context of* the action
  kind that provoked it (the closest analogue of an AFL edge);
* ``pair:<a>-><b>`` — consecutive distinct span closures within a step
  (control-flow flavour: the same spans in a new order is new
  behaviour);
* ``phase:<recovery-phase>`` — a supervisor phase transition;
* ``oracle:<name>`` — an invariant audit failure.

Hashing a feature gives its **edge id** — 16 hex chars of SHA-256 —
which is stable across processes, platforms, and worker counts, so
per-worker coverage maps merge deterministically (set union plus
commutative hit addition: the merged map is independent of worker count
and completion order).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Bump when the feature vocabulary or normalization changes: edge ids
#: from different coverage versions must never be merged.
COVERAGE_VERSION = 1

_HEX = re.compile(r"0x[0-9a-fA-F]+")
_NUM = re.compile(r"\d+")


def normalize(text: str) -> str:
    """Collapse volatile specifics: hex addresses become ``<addr>``,
    decimal runs become ``#`` — the same bug/behaviour at a different
    address or id must map to the same edge."""
    return _NUM.sub("#", _HEX.sub("<addr>", text))


def edge_id(feature: str) -> str:
    """The stable 16-hex-char id of one normalized feature."""
    return hashlib.sha256(feature.encode()).hexdigest()[:16]


@dataclass
class CoverageMap:
    """Edges seen so far: ``id -> feature`` plus ``id -> hit count``.

    Merging is commutative and associative (union of edges, sum of
    hits), so folding per-worker maps in any order — or any worker
    count — yields the same final map.
    """

    edges: dict[str, str] = field(default_factory=dict)
    hits: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.edges)

    def __contains__(self, eid: str) -> bool:
        return eid in self.edges

    def ids(self) -> frozenset[str]:
        return frozenset(self.edges)

    def observe(self, features: Iterable[str]) -> list[str]:
        """Fold features in; return the ids that were new, in first-seen
        order."""
        new: list[str] = []
        for feature in features:
            eid = edge_id(feature)
            if eid not in self.edges:
                self.edges[eid] = feature
                new.append(eid)
            self.hits[eid] = self.hits.get(eid, 0) + 1
        return new

    def observe_edges(self, edges: dict[str, str], hits: dict[str, int] | None = None) -> list[str]:
        """Fold another map's raw ``id -> feature`` dict in (a worker's
        result); returns the new ids sorted so the fold is independent
        of the dict's insertion order."""
        new = sorted(eid for eid in edges if eid not in self.edges)
        for eid in new:
            self.edges[eid] = edges[eid]
        for eid in edges:
            self.hits[eid] = self.hits.get(eid, 0) + (
                (hits or {}).get(eid, 1)
            )
        return new

    def merge(self, other: "CoverageMap") -> None:
        self.observe_edges(other.edges, other.hits)

    def to_dict(self) -> dict[str, Any]:
        return {
            "coverage_version": COVERAGE_VERSION,
            "edges": {
                eid: {"feature": self.edges[eid], "hits": self.hits.get(eid, 0)}
                for eid in sorted(self.edges)
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CoverageMap":
        version = data.get("coverage_version")
        if version != COVERAGE_VERSION:
            raise ValueError(
                f"coverage map written by coverage version {version!r}; "
                f"this build reads version {COVERAGE_VERSION} — regenerate it"
            )
        cm = cls()
        for eid, entry in data.get("edges", {}).items():
            cm.edges[eid] = str(entry["feature"])
            cm.hits[eid] = int(entry.get("hits", 0))
        return cm

    def describe(self) -> str:
        return f"{len(self.edges)} edges, {sum(self.hits.values())} hits"


class StepCoverage:
    """Per-step feature extractor for one :class:`FuzzEngine` run.

    Passive by construction: it only *reads* span closures and phase
    transitions (the obs layer's observer hooks), so collecting coverage
    can never perturb the run's behaviour or its fingerprint.
    """

    def __init__(self) -> None:
        self.map = CoverageMap()
        #: Span names closed since the last drain, in closure order.
        self._spans: list[str] = []
        #: Phase features buffered since the last drain.
        self._phases: list[str] = []

    # -- observer hooks (registered by the engine) ----------------------

    def on_span_close(self, span: Any) -> None:
        self._spans.append(normalize(span.name))

    def on_phase(self, service: Any, phase: Any) -> None:
        self._phases.append(f"phase:{phase.value}")

    # -- per-step folding ------------------------------------------------

    def step_features(self, kind: str, outcome: str) -> list[str]:
        """Features for one completed step; drains the span/phase
        buffers."""
        oc = normalize(outcome)
        features = [f"step:{kind}:{oc}"]
        spans, self._spans = self._spans, []
        phases, self._phases = self._phases, []
        seen: set[str] = set()
        prev: str | None = None
        for name in spans:
            if name not in seen:
                seen.add(name)
                features.append(f"span:{name}")
                features.append(f"edge:{kind}->{name}")
            if prev is not None and prev != name:
                pair = f"pair:{prev}->{name}"
                if pair not in seen:
                    seen.add(pair)
                    features.append(pair)
            prev = name
        features.extend(phases)
        return features

    def observe_step(self, kind: str, outcome: str) -> list[str]:
        return self.map.observe(self.step_features(kind, outcome))

    def observe_oracle(self, oracle: str) -> list[str]:
        return self.map.observe([f"oracle:{oracle}"])
