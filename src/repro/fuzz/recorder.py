"""Run records: the replayable artifact of a fuzz campaign.

A :class:`FuzzRun` captures everything a session produced — the resolved
action sequence, the per-step outcomes, the final machine fingerprint —
as plain JSON-serializable data.  Replaying the recorded actions on a
fresh environment must reproduce every outcome and the fingerprint
byte-for-byte; any divergence means the simulator (or a subsystem under
test) changed behaviour, which is exactly what the regression corpus
exists to catch.

Outcome strings are small and structured by prefix:

* ``ok`` / ``ok:<detail>`` — the action completed;
* ``fault:<kind>/<class>`` — the guest was terminated (the
  :class:`~repro.core.faults.FaultKey` signature);
* ``refused:<ExcType>`` — a control-plane call was rejected with a
  modelled, expected error;
* ``skip:<why>`` — the action's target did not exist (a shrunk or
  reordered sequence; never an error);
* ``oracle:<name>`` — an invariant audit failed after the action;
* ``error:<ExcType>`` — an *unexpected* exception escaped (always a
  finding).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.fuzz.actions import Action

#: Bump when the record layout changes incompatibly.
FORMAT_VERSION = 2

#: Bump when the *engine semantics* change incompatibly: action
#: vocabulary, schedule weight tables, generation order — anything that
#: makes an old recording non-replayable even though its JSON still
#: parses.  Corpus loading refuses mismatches loudly instead of letting
#: replay diverge mysteriously.
ENGINE_VERSION = 2


@dataclass(frozen=True)
class StepRecord:
    """One applied action and what the machine did with it."""

    index: int
    action: Action
    outcome: str
    #: Global cycle clock after the step (containment work costs time,
    #: so this is itself a behavioural observable).
    clock: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "action": self.action.to_dict(),
            "outcome": self.outcome,
            "clock": self.clock,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StepRecord":
        return cls(
            index=int(data["index"]),
            action=Action.from_dict(data["action"]),
            outcome=str(data["outcome"]),
            clock=int(data["clock"]),
        )

    def describe(self) -> str:
        return f"#{self.index:<4d} {self.action.describe():<50s} → {self.outcome}"


@dataclass
class FuzzRun:
    """A complete recorded session: inputs, observations, verdict."""

    seed: int
    schedule: str
    steps: list[StepRecord]
    #: SHA-256 over the full behavioural transcript (outcomes, traces,
    #: counters, pending events); equal fingerprints ⇒ identical runs.
    fingerprint: str
    final_clock: int
    #: Flattened :class:`~repro.perf.counters.PerfCounters` snapshot.
    counters: dict[str, int]
    #: None for a clean run; otherwise ``{"step", "kind", "detail"}``
    #: where kind is ``oracle`` or ``exception``.
    failure: dict[str, Any] | None = None
    notes: str = ""
    #: Sorted behavioural-coverage edge ids the run produced (see
    #: :mod:`repro.fuzz.coverage`).  Advisory metadata: *not* part of the
    #: fingerprint and not compared on replay, so instrumentation-only
    #: changes never break corpus entries — but corpus distillation can
    #: use it without re-executing anything.
    coverage: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def actions(self) -> list[Action]:
        return [step.action for step in self.steps]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "engine": ENGINE_VERSION,
            "seed": self.seed,
            "schedule": self.schedule,
            "steps": [step.to_dict() for step in self.steps],
            "fingerprint": self.fingerprint,
            "final_clock": self.final_clock,
            "counters": dict(sorted(self.counters.items())),
            "failure": self.failure,
            "notes": self.notes,
            "coverage": list(self.coverage),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzRun":
        if not isinstance(data, dict):
            raise ValueError(
                f"corpus entry must be a JSON object, got {type(data).__name__}"
            )
        fmt = data.get("format")
        if fmt != FORMAT_VERSION:
            raise ValueError(
                f"unsupported corpus format {fmt!r} (this build reads "
                f"format {FORMAT_VERSION}); re-record the entry with the "
                f"current engine"
            )
        engine = data.get("engine")
        if engine != ENGINE_VERSION:
            raise ValueError(
                f"corpus entry recorded by engine version {engine!r}, but "
                f"this build's engine is version {ENGINE_VERSION}; its "
                f"replay semantics are incompatible — re-record the entry"
            )
        missing = [
            key
            for key in (
                "seed", "schedule", "steps", "fingerprint",
                "final_clock", "counters",
            )
            if key not in data
        ]
        if missing:
            raise ValueError(
                f"corpus entry is missing required keys: {', '.join(missing)}"
            )
        return cls(
            seed=int(data["seed"]),
            schedule=str(data["schedule"]),
            steps=[StepRecord.from_dict(s) for s in data["steps"]],
            fingerprint=str(data["fingerprint"]),
            final_clock=int(data["final_clock"]),
            counters={k: int(v) for k, v in data["counters"].items()},
            failure=data.get("failure"),
            notes=str(data.get("notes", "")),
            coverage=[str(e) for e in data.get("coverage", [])],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "FuzzRun":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        verdict = (
            "clean"
            if self.ok
            else f"FAIL at step {self.failure['step']}: {self.failure['detail']}"
        )
        return (
            f"fuzz run seed={self.seed} schedule={self.schedule!r} "
            f"steps={len(self.steps)} clock={self.final_clock} "
            f"fingerprint={self.fingerprint[:16]}… — {verdict}"
        )


def fingerprint_lines(lines: list[str]) -> str:
    """Collapse a behavioural transcript into a stable hex digest."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class ReplayResult:
    """Outcome of re-executing a recorded run on a fresh environment."""

    recorded: FuzzRun
    replayed: FuzzRun
    diffs: list[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        return not self.diffs

    def describe(self) -> str:
        if self.matches:
            return (
                f"replay reproduced {len(self.replayed.steps)} steps "
                f"byte-for-byte (fingerprint {self.replayed.fingerprint[:16]}…)"
            )
        return "replay DIVERGED:\n  " + "\n  ".join(self.diffs)


def replay_run(run: FuzzRun) -> ReplayResult:
    """Re-execute ``run``'s recorded actions on a fresh environment and
    compare every observable against the record."""
    from repro.fuzz.engine import FuzzEngine  # circular at import time

    engine = FuzzEngine(seed=run.seed, schedule=run.schedule)
    replayed = engine.replay(run.actions)
    diffs: list[str] = []
    for old, new in zip(run.steps, replayed.steps):
        if old.outcome != new.outcome:
            diffs.append(
                f"step {old.index} {old.action.describe()}: "
                f"outcome {old.outcome!r} → {new.outcome!r}"
            )
        elif old.clock != new.clock:
            diffs.append(
                f"step {old.index} {old.action.describe()}: "
                f"clock {old.clock} → {new.clock}"
            )
    if len(replayed.steps) != len(run.steps):
        diffs.append(
            f"step count {len(run.steps)} → {len(replayed.steps)}"
        )
    if (run.failure is None) != (replayed.failure is None):
        diffs.append(f"failure {run.failure!r} → {replayed.failure!r}")
    elif run.failure is not None and replayed.failure is not None:
        for key in ("step", "kind", "detail"):
            if run.failure.get(key) != replayed.failure.get(key):
                diffs.append(
                    f"failure {key} {run.failure.get(key)!r} → "
                    f"{replayed.failure.get(key)!r}"
                )
    if run.counters != replayed.counters:
        changed = {
            k
            for k in set(run.counters) | set(replayed.counters)
            if run.counters.get(k, 0) != replayed.counters.get(k, 0)
        }
        diffs.append(f"counters differ: {sorted(changed)}")
    if run.fingerprint != replayed.fingerprint:
        diffs.append(
            f"fingerprint {run.fingerprint[:16]}… → {replayed.fingerprint[:16]}…"
        )
    return ReplayResult(recorded=run, replayed=replayed, diffs=diffs)
