"""The parallel, coverage-guided campaign executor.

A campaign turns the single-run engine into a search loop:

1. **plan** a batch of execution tasks — fresh seeded runs while the
   corpus is empty (or always, in pure-random mode), mutants of
   coverage-novel parents once it isn't;
2. **execute** the batch, either inline or fanned out over a
   ``multiprocessing`` pool (each task boots its own fresh
   :class:`~repro.fuzz.engine.FuzzEngine`, so workers share nothing);
3. **fold** results into the global coverage map and corpus in task
   order.

Determinism is the design center.  Batches have a *fixed* size
independent of the worker count, every task is planned (and its RNG
draws consumed) before anything executes, ``Pool.map`` returns results
in task order, and folding happens in that order — so the merged
coverage map, corpus, and findings are byte-identical whether a
campaign ran on 1 worker or 16, and any individual task can be
re-executed standalone from its descriptor: a seeded run is
``(seed, schedule, steps)``, a mutant is
``(parent_fingerprint, mutation_seed)`` applied to the recorded parent
actions.

``--budget`` mode executes exactly N tasks and is fully reproducible;
``--continuous`` mode keeps planning batches until a wall-clock
deadline — the stopping point is nondeterministic but every batch
within the run is not, which is what a nightly bug-mining farm needs:
unbounded search, replayable artifacts.

The plan/execute/fold loop itself is :func:`run_batched`, shared with
the scenario-sweep executor (:mod:`repro.sweep.executor`) so every
parallel surface in the repo makes the byte-identical-merge guarantee
through the same code path.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.fuzz.actions import Action
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.distill import DistillResult, distill_runs
from repro.fuzz.engine import FuzzEngine, SCHEDULES
from repro.fuzz.mutate import mutate_actions
from repro.fuzz.recorder import FuzzRun
from repro.fuzz.rng import DEFAULT_SEED, named_stream

#: Tasks per planning round.  Fixed — never derived from the worker
#: count — so the planned task stream, and therefore the merged result,
#: is identical for any ``--workers`` value.
BATCH_SIZE = 8

#: Fraction of guided-mode tasks that stay exploratory (fresh seeds)
#: even once the corpus has parents to mutate.
EXPLORE_RATIO = 0.25


@dataclass
class BatchStats:
    """Progress snapshot :func:`run_batched` hands to ``on_batch``."""

    executed: int = 0
    batches: int = 0


def run_batched(
    execute: Callable[[dict[str, Any]], dict[str, Any]],
    plan: Callable[[int], list[dict[str, Any]]],
    fold: Callable[[dict[str, Any]], None],
    should_continue: Callable[[int], bool],
    *,
    workers: int = 1,
    batch_size: int = BATCH_SIZE,
    budget: int = 0,
    on_batch: Callable[[BatchStats], None] | None = None,
) -> BatchStats:
    """The deterministic-merge plan/execute/fold driver.

    Shared by the fuzz campaign and the scenario-sweep executor
    (:class:`repro.sweep.executor.SweepExecutor`) so both make the same
    guarantee the same way: batches have a fixed size independent of the
    worker count, every task in a batch is planned (and any planner RNG
    consumed) before anything executes, ``Pool.map`` returns results in
    task order, and ``fold`` is called in that order — so the merged
    result is byte-identical whether the work ran on 1 worker or 16.

    ``execute`` must be a top-level dict-in/dict-out function (picklable
    for ``multiprocessing``); ``plan(n)`` returns up to ``n`` task
    payloads and may return fewer (or none, which stops the loop); a
    positive ``budget`` caps total executions.
    """
    stats = BatchStats()
    pool = None
    try:
        if workers > 1:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            pool = ctx.Pool(processes=workers)
        while should_continue(stats.executed):
            n = batch_size
            if budget > 0:
                n = min(n, budget - stats.executed)
            if n <= 0:
                break
            batch = plan(n)
            if not batch:
                break
            if pool is not None:
                results = pool.map(execute, batch)
            else:
                results = [execute(p) for p in batch]
            for result in results:  # Pool.map preserves task order
                fold(result)
            stats.executed += len(batch)
            stats.batches += 1
            if on_batch is not None:
                on_batch(stats)
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    return stats


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Execute one planned task in a fresh engine.  Top-level (and
    dict-in/dict-out) so a multiprocessing pool can pickle it; also the
    inline path, so 1-worker and N-worker campaigns run the exact same
    code."""
    schedule = payload["schedule"]
    ops: list[str] = []
    engine = FuzzEngine(seed=payload["seed"], schedule=schedule)
    if payload["mode"] == "seed":
        run = engine.run(payload["steps"])
    else:
        parent = [Action.from_dict(a) for a in payload["parent_actions"]]
        actions, ops = mutate_actions(
            parent, payload["parent_fingerprint"], payload["seed"]
        )
        run = engine.replay(actions)
    return {
        "index": payload["index"],
        "mode": payload["mode"],
        "ops": ops,
        "run": run.to_dict(),
        "edges": engine.coverage.edges,
        "hits": engine.coverage.hits,
    }


@dataclass
class CampaignResult:
    """Everything a campaign produced, merged deterministically."""

    seed: int
    budget: int
    guided: bool
    schedules: tuple[str, ...]
    steps: int
    workers: int
    coverage: CoverageMap
    #: Coverage-novel runs, in fold order (the mutation queue).
    corpus: list[FuzzRun]
    #: Runs that ended in an oracle violation or unexpected exception.
    findings: list[FuzzRun]
    executions: int
    batches: int
    wall_seconds: float
    #: Coverage growth curve: ``(execution index, cumulative edges)``
    #: recorded at every execution that discovered something.
    growth: list[tuple[int, int]] = field(default_factory=list)

    @property
    def edges(self) -> int:
        return len(self.coverage)

    def distilled(self) -> DistillResult:
        return distill_runs(self.corpus + self.findings)

    def describe(self) -> str:
        mode = "guided" if self.guided else "random"
        return (
            f"fuzz campaign ({mode}): {self.executions} executions in "
            f"{self.batches} batches -> {self.edges} coverage edges, "
            f"{len(self.corpus)} corpus entries, "
            f"{len(self.findings)} findings "
            f"({self.wall_seconds:.1f}s wall, {self.workers} workers)"
        )

    def summary_dict(self) -> dict[str, Any]:
        distilled = self.distilled()
        return {
            "seed": self.seed,
            "budget": self.budget,
            "mode": "guided" if self.guided else "random",
            "schedules": list(self.schedules),
            "steps_per_run": self.steps,
            "workers": self.workers,
            "executions": self.executions,
            "batches": self.batches,
            "edges": self.edges,
            "corpus_entries": len(self.corpus),
            "distilled_entries": len(distilled.kept),
            "findings": len(self.findings),
            "wall_seconds": round(self.wall_seconds, 3),
            "execs_per_sec": round(
                self.executions / self.wall_seconds, 2
            ) if self.wall_seconds > 0 else 0.0,
            "growth": [list(point) for point in self.growth],
        }


class FuzzCampaign:
    """Plan/execute/fold loop over a worker pool."""

    def __init__(
        self,
        budget: int,
        *,
        workers: int = 1,
        steps: int = 60,
        schedules: Sequence[str] | None = None,
        guided: bool = True,
        seed: int = DEFAULT_SEED,
        batch_size: int = BATCH_SIZE,
        explore: float = EXPLORE_RATIO,
    ) -> None:
        self.budget = int(budget)
        self.workers = max(1, int(workers))
        self.steps = int(steps)
        self.schedules = tuple(schedules or sorted(SCHEDULES))
        for schedule in self.schedules:
            if schedule not in SCHEDULES:
                raise ValueError(
                    f"unknown schedule {schedule!r}; "
                    f"choose from {sorted(SCHEDULES)}"
                )
        self.guided = bool(guided)
        self.seed = int(seed)
        self.batch_size = max(1, int(batch_size))
        self.explore = float(explore)
        mode = "guided" if self.guided else "random"
        self.rng = named_stream(f"fuzz/campaign/{mode}", self.seed)
        self.coverage = CoverageMap()
        self.corpus: list[FuzzRun] = []
        self.findings: list[FuzzRun] = []
        self.growth: list[tuple[int, int]] = []
        self._next_index = 0
        self._batches = 0

    # -- planning ----------------------------------------------------------

    def _plan_batch(self, n: int) -> list[dict[str, Any]]:
        """Plan ``n`` tasks, consuming campaign RNG in task order.  All
        draws happen here — before execution — so the plan is a pure
        function of (campaign seed, fold history)."""
        batch: list[dict[str, Any]] = []
        for _ in range(n):
            index = self._next_index
            self._next_index += 1
            explore = (
                not self.guided
                or not self.corpus
                or self.rng.random() < self.explore
            )
            if explore:
                batch.append(
                    {
                        "index": index,
                        "mode": "seed",
                        "schedule": self.schedules[index % len(self.schedules)],
                        "seed": self.rng.randrange(1 << 32),
                        "steps": self.steps,
                    }
                )
            else:
                parent = self.corpus[self.rng.randrange(len(self.corpus))]
                batch.append(
                    {
                        "index": index,
                        "mode": "mutant",
                        "schedule": parent.schedule,
                        "seed": self.rng.randrange(1 << 32),
                        "parent_actions": [a.to_dict() for a in parent.actions],
                        "parent_fingerprint": parent.fingerprint,
                    }
                )
        return batch

    # -- folding -----------------------------------------------------------

    def _fold(self, result: dict[str, Any]) -> None:
        run = FuzzRun.from_dict(result["run"])
        new = self.coverage.observe_edges(result["edges"], result["hits"])
        if new:
            self.corpus.append(run)
            self.growth.append((result["index"], len(self.coverage)))
        if run.failure is not None:
            self.findings.append(run)

    # -- driving -----------------------------------------------------------

    def _run_batches(
        self,
        should_continue: Callable[[int], bool],
        progress: Callable[[str], None] | None = None,
    ) -> CampaignResult:
        t0 = time.perf_counter()

        def on_batch(stats: BatchStats) -> None:
            if progress is not None:
                progress(
                    f"[batch {stats.batches}] {stats.executed} execs, "
                    f"{len(self.coverage)} edges, "
                    f"{len(self.corpus)} corpus, "
                    f"{len(self.findings)} findings"
                )

        stats = run_batched(
            _execute_payload,
            self._plan_batch,
            self._fold,
            should_continue,
            workers=self.workers,
            batch_size=self.batch_size,
            budget=self.budget,
            on_batch=on_batch,
        )
        executed = stats.executed
        self._batches = stats.batches
        return CampaignResult(
            seed=self.seed,
            budget=self.budget,
            guided=self.guided,
            schedules=self.schedules,
            steps=self.steps,
            workers=self.workers,
            coverage=self.coverage,
            corpus=list(self.corpus),
            findings=list(self.findings),
            executions=executed,
            batches=self._batches,
            wall_seconds=time.perf_counter() - t0,
            growth=list(self.growth),
        )

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> CampaignResult:
        """Execute exactly ``budget`` tasks.  Fully deterministic in
        (seed, budget, steps, schedules, guided) — the worker count
        changes wall time only."""
        return self._run_batches(
            lambda executed: executed < self.budget, progress
        )

    def run_continuous(
        self,
        max_seconds: float,
        progress: Callable[[str], None] | None = None,
    ) -> CampaignResult:
        """Keep planning batches until the wall-clock deadline (and, if
        a budget was given, until it runs out).  The stopping point is
        wall-clock-dependent; everything executed before it is as
        deterministic as budget mode."""
        deadline = time.perf_counter() + max_seconds

        def keep_going(executed: int) -> bool:
            if self.budget > 0 and executed >= self.budget:
                return False
            return time.perf_counter() < deadline

        return self._run_batches(keep_going, progress)


def save_campaign(
    result: CampaignResult,
    directory: str | Path,
    *,
    shrink: bool = False,
    max_shrink_executions: int = 200,
) -> dict[str, Any]:
    """Persist a campaign's artifacts under ``directory``:

    * ``corpus/`` — the **distilled** minimal-covering corpus;
    * ``findings/`` — every failing run (plus ``*-min`` ddmin-shrunk
      reproducers when ``shrink`` is set);
    * ``coverage.json`` — the merged coverage map (edge id, feature,
      hits);
    * ``summary.json`` — campaign stats.

    Returns the summary dict (with the file manifest folded in).
    """
    import json

    from repro.fuzz.corpus import corpus_name, save_run
    from repro.fuzz.shrink import shrink_run

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    distilled = result.distilled()
    corpus_paths = [
        save_run(run, directory / "corpus") for run in distilled.kept
    ]
    finding_paths = []
    for run in result.findings:
        finding_paths.append(save_run(run, directory / "findings"))
        if shrink:
            minimized = shrink_run(
                run, max_executions=max_shrink_executions
            ).minimized
            finding_paths.append(
                save_run(
                    minimized,
                    directory / "findings",
                    name=f"min-{corpus_name(minimized)}",
                )
            )
    (directory / "coverage.json").write_text(
        json.dumps(result.coverage.to_dict(), indent=1, sort_keys=True) + "\n"
    )
    summary = result.summary_dict()
    summary["files"] = {
        "corpus": sorted(p.name for p in corpus_paths),
        "findings": sorted(p.name for p in finding_paths),
    }
    (directory / "summary.json").write_text(
        json.dumps(summary, indent=1, sort_keys=True) + "\n"
    )
    return summary
