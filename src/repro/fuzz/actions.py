"""The fuzz action taxonomy.

An :class:`Action` is one concrete guest (or management-plane) operation
with fully resolved parameters — slot indexes instead of enclave ids,
page indexes instead of raw addresses — so a recorded sequence replays
identically on a fresh environment regardless of what ids that
environment mints.  Actions are plain JSON-serializable data; all
interpretation lives in :mod:`repro.fuzz.engine`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ActionKind(enum.Enum):
    """Everything the fuzzer knows how to do to the machine."""

    # lifecycle
    LAUNCH = "launch"  # boot a supervised enclave into a free slot
    SHUTDOWN = "shutdown"  # orderly teardown of a slot
    # memory
    TOUCH_INSIDE = "touch_inside"  # legit access within the assignment
    TOUCH_OUTSIDE = "touch_outside"  # wild access → terminating fault
    TOUCH_FOREIGN = "touch_foreign"  # access inside a *sibling* enclave
    # IPIs
    IPI_OWNED = "ipi_owned"  # to one of the sender's own cores
    IPI_FOREIGN = "ipi_foreign"  # to a core it does not own
    # MSRs / ports
    MSR_READ = "msr_read"
    MSR_WRITE_BENIGN = "msr_write_benign"
    MSR_WRITE_SENSITIVE = "msr_write_sensitive"  # denied-and-logged
    IO_PORT_HOST = "io_port_host"  # host-owned port → denied
    # XEMEM churn
    XEMEM_MAKE = "xemem_make"
    XEMEM_ATTACH = "xemem_attach"
    XEMEM_DETACH = "xemem_detach"
    XEMEM_REMOVE = "xemem_remove"
    # dynamic reassignment
    HOTPLUG_ADD = "hotplug_add"
    HOTPLUG_REMOVE = "hotplug_remove"
    REVOKE_THEN_TOUCH = "revoke_then_touch"  # reassignment race
    # exceptions / control plane
    RAISE_ABORT = "raise_abort"  # double fault → containment
    COMMAND_PING = "command_ping"  # full command-queue round trip
    TICK = "tick"  # elapse time + checkpoint housekeeping
    ARM_MID_RECOVERY_FAULT = "arm_mid_recovery_fault"  # re-fault during recovery


@dataclass(frozen=True)
class Action:
    """One concrete, replayable operation."""

    kind: ActionKind
    #: Fully resolved parameters (slot indexes, page indexes, vectors…).
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind.value, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Action":
        return cls(kind=ActionKind(data["kind"]), params=dict(data["params"]))

    def describe(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind.value}({inner})" if inner else self.kind.value
