"""Named deterministic RNG streams.

Every source of randomness in the reproduction — the fuzz engine, the
stress walk, workload reference kernels, property tests — draws from a
:class:`FuzzRng` stream identified by ``(seed, name)``.  The name is
hashed into the underlying seed, so independent components get
decorrelated streams from one printed seed, and any run anywhere in the
repo is reproducible by quoting that single number.

The stream seed derivation is SHA-256 based and therefore stable across
Python versions and platforms (unlike ``hash()``, which is salted).
"""

from __future__ import annotations

import hashlib
import random

#: The repo-wide default seed; tests print whichever seed they use so a
#: failure report is always reproducible.
DEFAULT_SEED = 0xC0517  # "COVIRT", squinting


def derive_seed(seed: int, name: str) -> int:
    """Collapse ``(seed, name)`` into one 64-bit stream seed."""
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class FuzzRng(random.Random):
    """A ``random.Random`` that knows its own identity.

    Carries the root seed and stream name it was derived from, can
    :meth:`fork` decorrelated child streams, and can mint a seeded
    ``numpy`` generator for array-heavy consumers (workload reference
    kernels) from the same identity.
    """

    def __init__(self, seed: int = DEFAULT_SEED, name: str = "repro") -> None:
        self.root_seed = int(seed)
        self.name = name
        super().__init__(derive_seed(self.root_seed, name))

    def fork(self, child: str) -> "FuzzRng":
        """A decorrelated child stream; forking is order-independent."""
        return FuzzRng(self.root_seed, f"{self.name}/{child}")

    def numpy_generator(self):
        """A ``numpy.random.Generator`` seeded from this stream's
        identity (imported lazily: the fuzz core itself is stdlib-only)."""
        import numpy as np

        return np.random.default_rng(derive_seed(self.root_seed, self.name))

    def describe(self) -> str:
        """The line a test prints so any failure is reproducible."""
        return f"rng stream {self.name!r} seed={self.root_seed}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FuzzRng(seed={self.root_seed}, name={self.name!r})"


def named_stream(name: str, seed: int = DEFAULT_SEED) -> FuzzRng:
    """The stream ``name`` under ``seed`` — the one entry point every
    component uses, so ``grep named_stream`` finds all randomness."""
    return FuzzRng(seed, name)
