"""The fault-injection engine.

One :class:`FuzzEngine` owns one fresh :class:`CovirtEnvironment` and
drives it with a seeded stream of :class:`~repro.fuzz.actions.Action`\\ s.
Because the whole simulator is deterministic, the engine's RNG is the
*only* entropy in a run: generation consults machine state (which slots
are live, which segments exist) but that state is itself a pure function
of the actions applied so far, so ``(seed, schedule, steps)`` fully
determines the run — and replaying a recorded action list needs no RNG
at all.

Actions address enclaves by **slot index** (0..MAX_SLOTS-1), never by
enclave id: ids are minted by the environment and change across
recoveries, slots don't.  An action whose slot is empty (because the
shrinker deleted the LAUNCH, or a quarantine emptied it) degrades to a
recorded ``skip`` — never an error — which is what makes arbitrary
subsequences of a run valid runs and ddmin shrinking sound.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import TYPE_CHECKING

from repro.core.commands import CommandType
from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.fuzz.actions import Action, ActionKind
from repro.fuzz.coverage import StepCoverage
from repro.fuzz.oracles import OraclePack, OracleViolation
from repro.fuzz.recorder import FuzzRun, StepRecord, fingerprint_lines
from repro.fuzz.rng import DEFAULT_SEED, named_stream
from repro.harness.env import CovirtEnvironment, Layout
from repro.hobbes.registry import RegistryError
from repro.hw.interrupts import ExceptionVector
from repro.hw.ioports import (
    IoPortError,
    KBD_CONTROLLER,
    PIT_CHANNEL0,
    RTC_INDEX,
    SERIAL_COM1,
)
from repro.hw.memory import OwnershipError, PAGE_SIZE
from repro.hw.msr import MSR, MsrAccessError
from repro.perf.counters import PerfCounters
from repro.perf.trace import TraceKind
from repro.pisces.enclave import EnclaveDead, EnclaveState
from repro.pisces.kmod import PiscesError
from repro.recovery.policy import Quarantine, RestartAlways, RestartWithBackoff
from repro.recovery.scrub import ScrubError
from repro.recovery.supervisor import RecoveryPhase
from repro.vmx.ept import EptError
from repro.xemem.segment import SegmentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import EnclaveVirtContext
    from repro.recovery.supervisor import SupervisedService

GiB = 1 << 30
MiB = 1 << 20

#: Concurrent enclave slots the fuzzer juggles.
MAX_SLOTS = 3

#: Small layouts so several enclaves, plus recovery relaunches, always
#: fit the 12-core/64-GiB testbed.
FUZZ_LAYOUTS: list[Layout] = [
    Layout("fz-1c/1n", {0: 1}, {0: 256 * MiB}),
    Layout("fz-2c/2n", {0: 1, 1: 1}, {0: 256 * MiB, 1: 256 * MiB}),
    Layout("fz-2c/1n", {1: 2}, {1: 512 * MiB}),
]

#: Only MEMORY-bearing configs: a wild touch must always be *contained*
#: (with covirt-none it would scribble over host canaries, and the
#: host-integrity oracle would blame Covirt for a fault it never saw).
FUZZ_CONFIGS: list[CovirtConfig] = [
    CovirtConfig.memory_only(),
    CovirtConfig.memory_ipi(),
    CovirtConfig.full(),
]


def _policies():
    return [
        RestartAlways(),
        RestartWithBackoff(max_retries=4),
        Quarantine(max_repeats=2),
    ]


#: Exceptions the simulator *models*: seeing one is an outcome, not a
#: finding.  Anything else escaping an action is a genuine failure.
EXPECTED_ERRORS = (
    EnclaveDead,
    EptError,
    IoPortError,
    MsrAccessError,
    OwnershipError,
    PiscesError,
    RegistryError,
    ScrubError,
    SegmentError,
)

#: Named weight tables: which mix of hostility a campaign runs.
SCHEDULES: dict[str, dict[ActionKind, int]] = {
    # Mostly-legit workload with occasional violations — the steady
    # state a production co-kernel node would see.
    "baseline": {
        ActionKind.LAUNCH: 4,
        ActionKind.SHUTDOWN: 1,
        ActionKind.TOUCH_INSIDE: 10,
        ActionKind.TOUCH_OUTSIDE: 2,
        ActionKind.TOUCH_FOREIGN: 1,
        ActionKind.IPI_OWNED: 4,
        ActionKind.IPI_FOREIGN: 2,
        ActionKind.MSR_READ: 3,
        ActionKind.MSR_WRITE_BENIGN: 3,
        ActionKind.MSR_WRITE_SENSITIVE: 1,
        ActionKind.IO_PORT_HOST: 1,
        ActionKind.XEMEM_MAKE: 3,
        ActionKind.XEMEM_ATTACH: 3,
        ActionKind.XEMEM_DETACH: 2,
        ActionKind.XEMEM_REMOVE: 1,
        ActionKind.HOTPLUG_ADD: 2,
        ActionKind.HOTPLUG_REMOVE: 1,
        ActionKind.REVOKE_THEN_TOUCH: 1,
        ActionKind.RAISE_ABORT: 1,
        ActionKind.COMMAND_PING: 2,
        ActionKind.TICK: 4,
        ActionKind.ARM_MID_RECOVERY_FAULT: 1,
    },
    # Every guest is out to get the node: heavy on violations.
    "hostile": {
        ActionKind.LAUNCH: 4,
        ActionKind.SHUTDOWN: 1,
        ActionKind.TOUCH_INSIDE: 2,
        ActionKind.TOUCH_OUTSIDE: 6,
        ActionKind.TOUCH_FOREIGN: 5,
        ActionKind.IPI_OWNED: 1,
        ActionKind.IPI_FOREIGN: 6,
        ActionKind.MSR_READ: 1,
        ActionKind.MSR_WRITE_BENIGN: 1,
        ActionKind.MSR_WRITE_SENSITIVE: 4,
        ActionKind.IO_PORT_HOST: 4,
        ActionKind.RAISE_ABORT: 4,
        ActionKind.COMMAND_PING: 1,
        ActionKind.TICK: 2,
        ActionKind.ARM_MID_RECOVERY_FAULT: 2,
    },
    # Reconfiguration churn: XEMEM + hot-plug races against the async
    # update protocol.
    "churn": {
        ActionKind.LAUNCH: 4,
        ActionKind.SHUTDOWN: 2,
        ActionKind.TOUCH_INSIDE: 4,
        ActionKind.TOUCH_OUTSIDE: 1,
        ActionKind.XEMEM_MAKE: 6,
        ActionKind.XEMEM_ATTACH: 6,
        ActionKind.XEMEM_DETACH: 4,
        ActionKind.XEMEM_REMOVE: 3,
        ActionKind.HOTPLUG_ADD: 5,
        ActionKind.HOTPLUG_REMOVE: 4,
        ActionKind.REVOKE_THEN_TOUCH: 4,
        ActionKind.COMMAND_PING: 2,
        ActionKind.TICK: 3,
    },
    # Recovery under fire: faults, re-faults mid-recovery, and parks.
    "recovery": {
        ActionKind.LAUNCH: 5,
        ActionKind.TOUCH_INSIDE: 3,
        ActionKind.TOUCH_OUTSIDE: 5,
        ActionKind.RAISE_ABORT: 4,
        ActionKind.REVOKE_THEN_TOUCH: 2,
        ActionKind.ARM_MID_RECOVERY_FAULT: 5,
        ActionKind.XEMEM_MAKE: 2,
        ActionKind.XEMEM_ATTACH: 2,
        ActionKind.COMMAND_PING: 1,
        ActionKind.TICK: 5,
    },
}

#: MSRs the MSR_READ action samples (benign and sensitive mixed).
_READ_MSRS = [
    MSR.IA32_FS_BASE,
    MSR.IA32_GS_BASE,
    MSR.IA32_TSC_AUX,
    MSR.IA32_APIC_BASE,
    MSR.IA32_MISC_ENABLE,
]
_BENIGN_WRITE_MSRS = [MSR.IA32_FS_BASE, MSR.IA32_GS_BASE, MSR.IA32_TSC_AUX]
_SENSITIVE_WRITE_MSRS = [
    MSR.IA32_APIC_BASE,
    MSR.IA32_FEATURE_CONTROL,
    MSR.IA32_MISC_ENABLE,
    MSR.IA32_MC0_CTL,
]
_HOST_PORTS = [SERIAL_COM1, PIT_CHANNEL0, KBD_CONTROLLER, RTC_INDEX]

#: Where TOUCH_OUTSIDE aims: high in the host's half of DRAM, never
#: mapped into any enclave EPT.
_WILD_BASE = 50 * GiB


def flatten_counters(counters: PerfCounters) -> dict[str, int]:
    """A :class:`PerfCounters` as a flat, JSON-friendly dict."""
    flat: dict[str, int] = {}
    for f in dataclass_fields(counters):
        value = getattr(counters, f.name)
        if f.name == "exits":
            for reason, count in sorted(value.items()):
                flat[f"exits.{reason}"] = int(count)
        else:
            flat[f.name] = int(value)
    return flat


class FuzzEngine:
    """Drives one environment through a seeded action sequence."""

    def __init__(
        self,
        seed: int = DEFAULT_SEED,
        schedule: str = "baseline",
        env: CovirtEnvironment | None = None,
    ) -> None:
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; choose from {sorted(SCHEDULES)}"
            )
        self.seed = int(seed)
        self.schedule = schedule
        self.rng = named_stream(f"fuzz/{schedule}", self.seed)
        self.env = env or CovirtEnvironment()
        self.oracles = OraclePack(self.env)
        self.slots: list["SupervisedService | None"] = [None] * MAX_SLOTS
        #: Retained context references: the controller pops a context on
        #: death, but its hypervisors' counters are part of the run's
        #: observable behaviour, so the engine keeps them reachable.
        self._ctxs: list["EnclaveVirtContext | None"] = [None] * MAX_SLOTS
        self._last_eids: list[int | None] = [None] * MAX_SLOTS
        self.steps: list[StepRecord] = []
        self.failure: dict | None = None
        self._dead_counters = PerfCounters()
        self._svc_counter = 0
        self._seg_counter = 0
        self._armed: tuple[str, int] | None = None
        self.env.recovery.phase_hooks.append(self._on_phase)
        #: Passive behavioural coverage: span closures and recovery
        #: phases feed per-step features into a :class:`CoverageMap`.
        #: Observers never touch simulation state, so coverage cannot
        #: perturb outcomes or fingerprints.
        self.cov = StepCoverage()
        self.env.machine.obs.tracer.on_close.append(self.cov.on_span_close)
        self.env.recovery.phase_hooks.append(self.cov.on_phase)

    # -- public driving ----------------------------------------------------

    def run(self, steps: int) -> FuzzRun:
        """Generate-and-apply ``steps`` actions (stops early on failure)."""
        for _ in range(steps):
            action = self._generate()
            self._apply(action)
            if self.failure is not None:
                break
        return self._finish()

    def replay(self, actions: list[Action]) -> FuzzRun:
        """Apply a recorded action list verbatim; consumes no RNG."""
        for action in actions:
            self._apply(action)
            if self.failure is not None:
                break
        return self._finish()

    def finish(self) -> FuzzRun:
        """Snapshot everything applied so far as a :class:`FuzzRun`.

        :meth:`run` and :meth:`replay` call this implicitly; external
        drivers that interleave ``run``/``inject`` with direct
        environment work (the sweep harness) call it once at the end."""
        return self._finish()

    def inject(self, action: Action) -> StepRecord:
        """Apply one externally supplied action and return its step
        record.  This is the serving daemon's ``session.inject`` path:
        like :meth:`replay` it consumes no RNG, so injections into a
        live session never perturb the seeded action stream around
        them."""
        self._apply(action)
        return self.steps[-1]

    # -- generation --------------------------------------------------------

    def _live_slots(self) -> list[int]:
        return [
            i
            for i, svc in enumerate(self.slots)
            if svc is not None
            and svc.phase is RecoveryPhase.RUNNING
            and svc.enclave.state is EnclaveState.RUNNING
        ]

    def _free_slots(self) -> list[int]:
        return [i for i, svc in enumerate(self.slots) if svc is None]

    def _generate(self) -> Action:
        """One action with fully resolved parameters, drawn from the
        schedule's weight table and filtered to what is applicable."""
        self._sweep()
        live = self._live_slots()
        free = self._free_slots()
        weights = SCHEDULES[self.schedule]
        if not live:
            kind = ActionKind.LAUNCH if free else ActionKind.TICK
        else:
            candidates = [
                (k, w)
                for k, w in sorted(weights.items(), key=lambda kv: kv[0].value)
                if not (k is ActionKind.LAUNCH and not free)
            ]
            kinds = [k for k, _ in candidates]
            kind = self.rng.choices(kinds, [w for _, w in candidates])[0]
        return Action(kind, self._params_for(kind, live, free))

    def _params_for(
        self, kind: ActionKind, live: list[int], free: list[int]
    ) -> dict:
        rng = self.rng
        slot = rng.choice(live) if live else 0
        if kind is ActionKind.LAUNCH:
            return {
                "slot": rng.choice(free) if free else 0,
                "layout": rng.randrange(len(FUZZ_LAYOUTS)),
                "config": rng.randrange(len(FUZZ_CONFIGS)),
                "policy": rng.randrange(len(_policies())),
            }
        if kind is ActionKind.SHUTDOWN:
            return {"slot": slot}
        if kind in (ActionKind.TOUCH_INSIDE, ActionKind.TOUCH_OUTSIDE):
            return {
                "slot": slot,
                "page": rng.randrange(4096),
                "write": rng.random() < 0.5,
            }
        if kind is ActionKind.TOUCH_FOREIGN:
            victims = [i for i in live if i != slot]
            return {
                "slot": slot,
                "victim": rng.choice(victims) if victims else (slot + 1) % MAX_SLOTS,
                "page": rng.randrange(4096),
                "write": rng.random() < 0.5,
            }
        if kind is ActionKind.IPI_OWNED:
            return {"slot": slot, "sender": rng.randrange(8), "pick": rng.randrange(8)}
        if kind is ActionKind.IPI_FOREIGN:
            return {
                "slot": slot,
                "sender": rng.randrange(8),
                "dest": rng.randrange(self.env.machine.num_cores),
                "vector": rng.randrange(48, 240),
            }
        if kind is ActionKind.MSR_READ:
            return {"slot": slot, "msr": rng.randrange(len(_READ_MSRS))}
        if kind is ActionKind.MSR_WRITE_BENIGN:
            return {
                "slot": slot,
                "msr": rng.randrange(len(_BENIGN_WRITE_MSRS)),
                "value": rng.randrange(1 << 32),
            }
        if kind is ActionKind.MSR_WRITE_SENSITIVE:
            return {
                "slot": slot,
                "msr": rng.randrange(len(_SENSITIVE_WRITE_MSRS)),
                "value": rng.randrange(1 << 32),
            }
        if kind is ActionKind.IO_PORT_HOST:
            return {
                "slot": slot,
                "port": rng.randrange(len(_HOST_PORTS)),
                "value": rng.randrange(256),
                "write": rng.random() < 0.7,
            }
        if kind is ActionKind.XEMEM_MAKE:
            self._seg_counter += 1
            return {
                "slot": slot,
                "name": f"fz{self._seg_counter}",
                "pages": rng.randrange(1, 9),
                "off": rng.randrange(64),
            }
        if kind is ActionKind.XEMEM_ATTACH:
            others = [i for i in live if i != slot]
            return {
                "slot": rng.choice(others) if others else slot,
                "owner": slot,
                "pick": rng.randrange(8),
            }
        if kind in (ActionKind.XEMEM_DETACH, ActionKind.XEMEM_REMOVE):
            return {"slot": slot, "pick": rng.randrange(8)}
        if kind is ActionKind.HOTPLUG_ADD:
            return {
                "slot": slot,
                "zone": rng.randrange(self.env.machine.topology.num_zones),
                "pages": rng.randrange(1, 33),
            }
        if kind in (ActionKind.HOTPLUG_REMOVE, ActionKind.REVOKE_THEN_TOUCH):
            return {"slot": slot, "pick": rng.randrange(8)}
        if kind is ActionKind.RAISE_ABORT:
            return {"slot": slot, "core": rng.randrange(8)}
        if kind is ActionKind.COMMAND_PING:
            return {"slot": slot}
        if kind is ActionKind.TICK:
            return {"cycles": rng.randrange(1, 9) * 10_000_000}
        if kind is ActionKind.ARM_MID_RECOVERY_FAULT:
            return {
                "victim": slot,
                "phase": rng.choice(
                    [
                        RecoveryPhase.SCRUBBING.value,
                        RecoveryPhase.RELAUNCHING.value,
                        RecoveryPhase.REPLAYING.value,
                    ]
                ),
            }
        raise AssertionError(f"unhandled kind {kind}")  # pragma: no cover

    # -- application -------------------------------------------------------

    def _apply(self, action: Action) -> None:
        self._sweep()
        index = len(self.steps)
        # The step span is passive: spans/metrics are not part of the
        # fingerprint, so instrumentation cannot perturb determinism.
        obs = self.env.machine.obs
        step_span = obs.tracer.begin(
            f"fuzz.step.{action.kind.name.lower()}",
            category="fuzz",
            track="fuzz",
            step=index,
        )
        try:
            outcome = self._dispatch(action)
        except EnclaveFaultError:
            key = self.env.controller.fault_log[-1].key()
            outcome = f"fault:{key.kind}/{key.detail_class}"
        except EXPECTED_ERRORS as exc:
            outcome = f"refused:{type(exc).__name__}"
        except OracleViolation:
            raise  # never expected from a dispatch; re-raise loudly
        except Exception as exc:  # the fuzzer's whole reason to exist
            outcome = f"error:{type(exc).__name__}"
            self.failure = {
                "step": index,
                "kind": "exception",
                "detail": f"{type(exc).__name__}: {exc}",
            }
        step_span.args["outcome"] = outcome
        obs.tracer.end(step_span)
        from repro.obs import metric_names

        obs.metrics.counter(
            metric_names.FUZZ_STEPS, "fuzz actions applied"
        ).inc(kind=action.kind.name.lower(), outcome=outcome.split(":", 1)[0])
        self._sweep()
        try:
            self.oracles.check_all()
        except OracleViolation as violation:
            self.env.recovery.trace.record(
                self.env.machine.clock.now, TraceKind.ORACLE, str(violation)
            )
            self.cov.observe_oracle(violation.oracle)
            if self.failure is None:
                self.failure = {
                    "step": index,
                    "kind": "oracle",
                    "detail": str(violation),
                }
        self.cov.observe_step(action.kind.value, outcome)
        self.steps.append(
            StepRecord(index, action, outcome, self.env.machine.clock.now)
        )

    def _service(self, slot: int) -> "SupervisedService | None":
        if not 0 <= slot < MAX_SLOTS:
            return None
        svc = self.slots[slot]
        if (
            svc is None
            or svc.phase is not RecoveryPhase.RUNNING
            or svc.enclave.state is not EnclaveState.RUNNING
        ):
            return None
        return svc

    def _dispatch(self, action: Action) -> str:
        p = action.params
        kind = action.kind
        if kind is ActionKind.LAUNCH:
            return self._do_launch(p)
        if kind is ActionKind.TICK:
            self.env.machine.elapse(int(p["cycles"]))
            taken = self.env.recovery.tick()
            return f"ok:checkpoints={len(taken)}"
        if kind is ActionKind.ARM_MID_RECOVERY_FAULT:
            self._armed = (str(p["phase"]), int(p["victim"]))
            return f"ok:armed@{p['phase']}"

        svc = self._service(int(p["slot"]))
        if svc is None:
            return "skip:no-target"
        enclave = svc.enclave
        eid = enclave.enclave_id
        bsp = enclave.assignment.core_ids[0]
        core = enclave.assignment.core_ids[
            int(p.get("sender", p.get("core", 0))) % len(enclave.assignment.core_ids)
        ]

        if kind is ActionKind.SHUTDOWN:
            self._retire_slot(int(p["slot"]))
            self.env.recovery.services.pop(svc.name, None)
            self.env.teardown(enclave)
            self.oracles.dead_enclave_ids.add(eid)
            self.slots[int(p["slot"])] = None
            return "ok:shutdown"
        if kind is ActionKind.TOUCH_INSIDE:
            region = enclave.assignment.regions[0]
            addr = region.start + (int(p["page"]) * PAGE_SIZE) % region.size
            if p["write"]:
                enclave.port.write(bsp, addr, b"\xa5" * 8)
            else:
                enclave.port.read(bsp, addr, 8)
            return "ok"
        if kind is ActionKind.TOUCH_OUTSIDE:
            addr = _WILD_BASE + int(p["page"]) * PAGE_SIZE
            if p["write"]:
                enclave.port.write(bsp, addr, b"\x5a" * 8)
            else:
                enclave.port.read(bsp, addr, 8)
            return "ok:uncontained!"  # MEMORY configs must never get here
        if kind is ActionKind.TOUCH_FOREIGN:
            victim = self._service(int(p["victim"]))
            if victim is None or victim is svc:
                return "skip:no-victim"
            vregion = victim.enclave.assignment.regions[0]
            addr = vregion.start + (int(p["page"]) * PAGE_SIZE) % vregion.size
            if p["write"]:
                enclave.port.write(bsp, addr, b"\x5a" * 8)
            else:
                enclave.port.read(bsp, addr, 8)
            return "ok:uncontained!"
        if kind is ActionKind.IPI_OWNED:
            pairs = sorted(
                (g.dest_core, g.vector)
                for g in self.env.mcp.vectors.active_grants()
                if eid in g.allowed_senders
                and g.dest_core in enclave.assignment.core_ids
            )
            if not pairs:
                return "skip:no-grant"
            dest, vector = pairs[int(p["pick"]) % len(pairs)]
            forwarded = enclave.port.send_ipi(core, dest, vector)
            return "ok:forwarded" if forwarded else "ok:filtered"
        if kind is ActionKind.IPI_FOREIGN:
            dest = int(p["dest"]) % self.env.machine.num_cores
            while dest in enclave.assignment.core_ids:
                dest = (dest + 1) % self.env.machine.num_cores
            forwarded = enclave.port.send_ipi(core, dest, int(p["vector"]))
            return "ok:forwarded!" if forwarded else "ok:filtered"
        if kind is ActionKind.MSR_READ:
            msr = _READ_MSRS[int(p["msr"]) % len(_READ_MSRS)]
            value = enclave.port.rdmsr(core, msr)
            return f"ok:{value & 0xFFFF:#x}"
        if kind is ActionKind.MSR_WRITE_BENIGN:
            msr = _BENIGN_WRITE_MSRS[int(p["msr"]) % len(_BENIGN_WRITE_MSRS)]
            enclave.port.wrmsr(core, msr, int(p["value"]))
            return "ok"
        if kind is ActionKind.MSR_WRITE_SENSITIVE:
            msr = _SENSITIVE_WRITE_MSRS[int(p["msr"]) % len(_SENSITIVE_WRITE_MSRS)]
            ctx = self._ctxs[int(p["slot"])]
            before = len(ctx.denied_msr_writes) if ctx else 0
            enclave.port.wrmsr(core, msr, int(p["value"]))
            after = len(ctx.denied_msr_writes) if ctx else 0
            return "ok:denied" if after > before else "ok:native"
        if kind is ActionKind.IO_PORT_HOST:
            port = _HOST_PORTS[int(p["port"]) % len(_HOST_PORTS)]
            ctx = self._ctxs[int(p["slot"])]
            before = len(ctx.denied_io) if ctx else 0
            if p["write"]:
                enclave.port.io_out(core, port, int(p["value"]))
            else:
                enclave.port.io_in(core, port)
            after = len(ctx.denied_io) if ctx else 0
            return "ok:denied" if after > before else "ok:native"
        if kind is ActionKind.XEMEM_MAKE:
            region = enclave.assignment.regions[0]
            size = int(p["pages"]) * PAGE_SIZE
            max_off = max(region.size // PAGE_SIZE - int(p["pages"]), 1)
            start = region.start + (int(p["off"]) % max_off) * PAGE_SIZE
            seg = self.env.mcp.xemem.make(eid, str(p["name"]), start, size)
            return f"ok:segid={seg.segid}"
        if kind is ActionKind.XEMEM_ATTACH:
            owner = self._service(int(p["owner"]))
            if owner is None or owner is svc:
                return "skip:no-owner"
            segs = [
                s
                for s in self.env.mcp.xemem.names.segments_owned_by(
                    owner.enclave.enclave_id
                )
                if eid not in s.attachments
            ]
            if not segs:
                return "skip:no-segment"
            seg = segs[int(p["pick"]) % len(segs)]
            self.env.mcp.xemem.attach(eid, seg.segid)
            return f"ok:segid={seg.segid}"
        if kind is ActionKind.XEMEM_DETACH:
            segs = self.env.mcp.xemem.names.segments_attached_by(eid)
            if not segs:
                return "skip:no-attachment"
            seg = segs[int(p["pick"]) % len(segs)]
            self.env.mcp.xemem.detach(eid, seg.segid)
            return f"ok:segid={seg.segid}"
        if kind is ActionKind.XEMEM_REMOVE:
            segs = self.env.mcp.xemem.names.segments_owned_by(eid)
            if not segs:
                return "skip:no-segment"
            seg = segs[int(p["pick"]) % len(segs)]
            self.env.mcp.xemem.remove(seg.segid)  # raises if still attached
            return f"ok:segid={seg.segid}"
        if kind is ActionKind.HOTPLUG_ADD:
            region = self.env.mcp.kmod.add_memory(
                eid, int(p["pages"]) * PAGE_SIZE, int(p["zone"])
            )
            return f"ok:+{region.size:#x}@{region.start:#x}"
        if kind in (ActionKind.HOTPLUG_REMOVE, ActionKind.REVOKE_THEN_TOUCH):
            removable = self._removable_regions(svc)
            if not removable:
                return "skip:no-removable-region"
            region = removable[int(p["pick"]) % len(removable)]
            self.env.mcp.kmod.remove_memory(eid, region)
            if kind is ActionKind.HOTPLUG_REMOVE:
                return f"ok:-{region.size:#x}@{region.start:#x}"
            # The race: the guest touches memory it just lost.  With the
            # flush protocol intact this *must* fault.
            enclave.port.read(bsp, region.start, 8)
            return "ok:uncontained!"
        if kind is ActionKind.RAISE_ABORT:
            enclave.port.raise_exception(core, ExceptionVector.DOUBLE_FAULT)
            return "ok:uncontained!"  # abort-class must always terminate
        if kind is ActionKind.COMMAND_PING:
            ctx = self.env.controller.context_for(eid)
            if ctx is None:
                return "skip:no-context"
            serviced = self.env.controller.issue_command(ctx, CommandType.PING)
            return f"ok:cores={serviced}"
        raise AssertionError(f"unhandled kind {kind}")  # pragma: no cover

    def _do_launch(self, p: dict) -> str:
        slot = int(p["slot"]) % MAX_SLOTS
        if self.slots[slot] is not None:
            return "skip:slot-occupied"
        layout = FUZZ_LAYOUTS[int(p["layout"]) % len(FUZZ_LAYOUTS)]
        config = FUZZ_CONFIGS[int(p["config"]) % len(FUZZ_CONFIGS)]
        policies = _policies()
        policy = policies[int(p["policy"]) % len(policies)]
        self._svc_counter += 1
        name = f"fz-svc{self._svc_counter}"
        enclave = self.env.launch(layout, config, name)
        eid = enclave.enclave_id
        # A self-signalling grant so IPI_OWNED has a legitimate pair to
        # exercise (whitelists start empty; rights are always explicit).
        # Allocated *before* supervision so the baseline checkpoint
        # carries it and recovery replay must rewire it to the new id.
        self.env.mcp.vectors.allocate(
            dest_core=enclave.assignment.core_ids[0],
            dest_enclave_id=eid,
            allowed_senders={eid},
            purpose=f"fuzz:{name}",
        )
        svc = self.env.recovery.supervise(
            enclave, policy=policy, config=config, name=name
        )
        self.slots[slot] = svc
        self._ctxs[slot] = self.env.controller.context_for(eid)
        self._last_eids[slot] = eid
        return f"ok:enclave={eid} {layout.label} {config.label()} {policy.name}"

    def _removable_regions(self, svc: "SupervisedService"):
        """Hot-removable regions: never the boot region, never one an
        exported segment lives in (removal under an export would model a
        host bug, not a guest one)."""
        enclave = svc.enclave
        segs = self.env.mcp.xemem.names.segments_owned_by(enclave.enclave_id)
        out = []
        for region in enclave.assignment.regions[1:]:
            if any(
                s.start < region.start + region.size
                and s.start + s.size > region.start
                for s in segs
            ):
                continue
            out.append(region)
        return out

    # -- recovery integration ----------------------------------------------

    def _on_phase(self, service, phase: RecoveryPhase) -> None:
        """Supervisor phase hook: if a mid-recovery fault is armed and
        the machine just entered the armed phase, crash the victim *now*
        — while another service's recovery is in flight."""
        if self._armed is None or phase.value != self._armed[0]:
            return
        victim = self._service(self._armed[1])
        if victim is None or victim is service:
            return
        self._armed = None  # one-shot, and never recurse
        self.env.recovery.trace.record(
            self.env.machine.clock.now,
            TraceKind.INJECT,
            f"mid-recovery fault into {victim.name!r} "
            f"while {service.name!r} is {phase.value}",
        )
        try:
            victim.enclave.port.read(
                victim.enclave.assignment.core_ids[0], _WILD_BASE, 8
            )
        except EnclaveFaultError:
            pass  # contained, as it must be

    def _retire_slot(self, slot: int) -> None:
        """Fold a dying incarnation's counters into the dead pool."""
        ctx = self._ctxs[slot]
        if ctx is not None:
            self._dead_counters = self._dead_counters.merge(ctx.aggregate_counters())
        self._ctxs[slot] = None

    def _sweep(self) -> None:
        """Reconcile slots with reality: recoveries swapped incarnations
        under us, parks emptied slots, faults minted dead enclave ids."""
        for i, svc in enumerate(self.slots):
            if svc is None:
                continue
            eid = svc.enclave.enclave_id
            if eid != self._last_eids[i]:
                # Recovered into a fresh incarnation.
                if self._last_eids[i] is not None:
                    self.oracles.dead_enclave_ids.add(self._last_eids[i])
                self._retire_slot(i)
                self._ctxs[i] = self.env.controller.context_for(eid)
                self._last_eids[i] = eid
            if svc.phase.terminal or svc.enclave.state is not EnclaveState.RUNNING:
                self.oracles.dead_enclave_ids.add(eid)
                self._retire_slot(i)
                self.slots[i] = None
                self._last_eids[i] = None

    # -- finishing ---------------------------------------------------------

    def total_counters(self) -> PerfCounters:
        total = PerfCounters()
        total = total.merge(self._dead_counters)
        for ctx in self._ctxs:
            if ctx is not None:
                total = total.merge(ctx.aggregate_counters())
        return total

    def fingerprint(self) -> str:
        """Hash of the full behavioural transcript.  Two runs of the same
        ``(seed, schedule, steps)`` must agree on every line."""
        env = self.env
        lines = [f"seed={self.seed} schedule={self.schedule}"]
        lines += [step.describe() for step in self.steps]
        lines.append(f"clock={env.machine.clock.now}")
        lines += [
            f"counter {name}={value}"
            for name, value in sorted(flatten_counters(self.total_counters()).items())
        ]
        lines += [f"config {tsc} {detail}" for tsc, detail in env.controller.config_log]
        lines += [
            f"fault {f.enclave_id} {f.key().kind}/{f.key().detail_class}"
            for f in env.controller.fault_log
        ]
        lines += [
            f"rtrace {r.tsc} {r.kind.value} {r.detail}"
            for r in env.recovery.trace.tail(env.recovery.trace.capacity)
        ]
        lines += [
            f"pending {when} {seq} {tag}"
            for when, seq, tag in env.machine.events.pending_summary()
        ]
        lines.append(f"dead={sorted(self.oracles.dead_enclave_ids)}")
        return fingerprint_lines(lines)

    @property
    def coverage(self):
        """The run's accumulated :class:`~repro.fuzz.coverage.CoverageMap`."""
        return self.cov.map

    def _finish(self) -> FuzzRun:
        self._sweep()
        return FuzzRun(
            seed=self.seed,
            schedule=self.schedule,
            steps=list(self.steps),
            fingerprint=self.fingerprint(),
            final_clock=self.env.machine.clock.now,
            counters=flatten_counters(self.total_counters()),
            failure=self.failure,
            coverage=sorted(self.cov.map.ids()),
        )
