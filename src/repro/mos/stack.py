"""The mOS stack: boot-time LWK cores embedded in Linux.

Differences from Pisces/IHK, each load-bearing for the tests:

* **No dynamic enclaves.**  LWK cores are designated once, "at boot";
  there is no create/destroy churn (``designate`` can be called once).
* **Shared kernel state.**  A window of *Linux-owned* memory (task
  structs, the syscall machinery) is legitimately shared with the LWK.
  Under Covirt it is mapped into the partition's EPT even though Linux
  keeps owning it — the high-integration adaptation.
* **Syscalls are function calls.**  Delegation costs a trampoline into
  host-kernel code (~hundreds of cycles), not a channel round trip —
  the integration benefit mOS buys with its weaker isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.hobbes.forwarding import SyscallForwarder
from repro.hw.interrupts import Interrupt, InterruptKind
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, PAGE_SIZE, page_align_up
from repro.kitten.memmap import GuestMemoryMap
from repro.kitten.pagetable import GuestPageTable
from repro.kitten.syscalls import (
    DELEGATED_SYSCALLS,
    ENOMEM,
    ENOSYS,
    Syscall,
    SyscallError,
)
from repro.linuxhost.host import LinuxHost, OFFLINE_OWNER
from repro.pisces.bootparams import PiscesBootParams
from repro.pisces.enclave import Enclave, EnclaveState, NativeAccessPort
from repro.pisces.kmod import ControlHooks
from repro.pisces.resources import ResourceAssignment, ResourceSpec, enclave_owner
from repro.pisces.trampoline import NativeBootProtocol, boot_params_address_for

#: mOS partitions get their own id range.
MOS_ID = 2000

#: In-kernel syscall trampoline cost (a function call plus mode fixup,
#: not a cross-enclave channel).
MOS_SYSCALL_TRAMPOLINE_CYCLES = 400

#: Size of the shared Linux kernel-state window the LWK legitimately
#: touches (task structs, runqueues, the syscall path).
SHARED_WINDOW_BYTES = 64 << 20


class MosError(Exception):
    pass


@dataclass
class LwkProcess:
    pid: int
    name: str
    ranges: list[tuple[int, int]] = field(default_factory=list)

    def owns(self, addr: int, length: int = 1) -> bool:
        return any(
            s <= addr and addr + length <= s + n for s, n in self.ranges
        )


class MosLwk:
    """The embedded LWK half of mOS."""

    def __init__(
        self, machine: Machine, enclave: "Enclave", params: PiscesBootParams
    ) -> None:
        self.machine = machine
        self.enclave = enclave
        self.params = params
        self.memmap = GuestMemoryMap()
        self.pgtable = GuestPageTable()
        for region in params.regions:
            self.memmap.add_region(region)
            self.pgtable.map(region.start, region.start, region.size)
        self.online_cores: list[int] = [params.core_ids[0]]
        self.console: list[str] = []
        self.running = True
        self.buggy_cleanup = False
        self.hobbes_client: Any = None
        #: Wired by the stack: direct (in-kernel) Linux services.
        self.linux_services: SyscallForwarder | None = None
        self.shared_window: MemoryRegion | None = None
        self.processes: dict[int, LwkProcess] = {}
        self._next_pid = 1
        self._alloc = params.regions[0].start + (1 << 20)
        self.irq_log: dict[int, list[Interrupt]] = {c: [] for c in params.core_ids}
        self._irq_handlers: dict[int, Callable[[int, Interrupt], None]] = {}
        #: Cycles spent in syscall trampolines (integration-cost metric).
        self.trampoline_cycles = 0
        self._configure_core(params.core_ids[0])

    @classmethod
    def boot(cls, machine: Machine, enclave: "Enclave") -> "MosLwk":
        assert enclave.boot_params is not None
        params = PiscesBootParams.read_from(
            machine.memory, enclave.boot_params.address
        )
        params.address = enclave.boot_params.address
        lwk = cls(machine, enclave, params)
        lwk.console.append(
            f"mOS LWK online: {len(params.core_ids)} designated cores"
        )
        return lwk

    def _configure_core(self, core_id: int) -> None:
        from repro.hw.cpu import CpuMode

        core = self.machine.core(core_id)
        assert core.apic is not None
        core.apic.configure_timer(None)  # LWK cores run tickless
        if core.mode is not CpuMode.GUEST:
            core.apic.delivery_hook = lambda irq, c=core_id: self.inject_interrupt(
                c, irq
            )

    def join_secondary_core(self, core_id: int) -> None:
        if core_id in self.online_cores:
            raise ValueError(f"core {core_id} already designated")
        self.online_cores.append(core_id)
        self.irq_log.setdefault(core_id, [])
        self._configure_core(core_id)

    def shutdown(self) -> None:
        self.running = False

    def register_irq_handler(
        self, vector: int, handler: Callable[[int, Interrupt], None], desc: str = ""
    ) -> None:
        self._irq_handlers[vector] = handler

    def inject_interrupt(self, core_id: int, interrupt: Interrupt) -> None:
        if not self.running:
            return
        self.irq_log.setdefault(core_id, []).append(interrupt)
        handler = self._irq_handlers.get(interrupt.vector)
        if handler is not None:
            handler(core_id, interrupt)
        apic = self.machine.core(core_id).apic
        if apic is not None and interrupt.kind is not InterruptKind.NMI:
            apic.ack(interrupt.vector)

    # -- memory (same surface as the other guests) ----------------------

    def memory_hotplug_add(self, region: MemoryRegion) -> None:
        self.memmap.add_region(region)
        self.pgtable.map(region.start, region.start, region.size)
        self.params.regions.append(region)

    def memory_hotplug_remove(self, region: MemoryRegion) -> bool:
        if region in self.params.regions:
            self.params.regions.remove(region)
        if not self.buggy_cleanup:
            self.memmap.remove_region(region)
            self.pgtable.unmap(region.start, region.size)
        return True

    def map_shared(self, region: MemoryRegion) -> None:
        self.memmap.add_region(region)
        self.pgtable.map(region.start, region.start, region.size)

    def unmap_shared(self, region: MemoryRegion) -> None:
        self.memmap.remove_region(region)
        self.pgtable.unmap(region.start, region.size)

    def touch(
        self, core_id: int, addr: int, length: int = 8, *, write: bool = False
    ) -> bytes | None:
        if not self.pgtable.covers(addr, length):
            raise SyscallError(ENOMEM, f"mos: {addr:#x} unmapped")
        assert self.enclave.port is not None
        if write:
            self.enclave.port.write(core_id, addr, b"\x05" * length)
            return None
        return self.enclave.port.read(core_id, addr, length)

    # -- processes ---------------------------------------------------------

    def spawn_process(self, name: str, mem_bytes: int = PAGE_SIZE) -> LwkProcess:
        process = LwkProcess(self._next_pid, name)
        self._next_pid += 1
        size = page_align_up(mem_bytes)
        region = self.params.regions[0]
        if self._alloc + size > region.end:
            raise SyscallError(ENOMEM, "mos: partition exhausted")
        process.ranges.append((self._alloc, size))
        self._alloc += size
        self.processes[process.pid] = process
        return process

    def syscall(self, process: LwkProcess, nr: int, *args: Any) -> Any:
        """mOS syscalls trampoline straight into host-kernel code: no
        channel, no proxy — a function call with a fixed small cost.
        This is the payoff of extreme integration."""
        try:
            syscall = Syscall(nr)
        except ValueError:
            raise SyscallError(ENOSYS, f"unknown syscall {nr}") from None
        core = self.machine.core(self.online_cores[0])
        core.advance(MOS_SYSCALL_TRAMPOLINE_CYCLES)
        self.trampoline_cycles += MOS_SYSCALL_TRAMPOLINE_CYCLES
        if syscall is Syscall.GETPID:
            return process.pid
        if syscall is Syscall.UNAME:
            return "Linux + mOS LWK (repro)"
        if syscall in DELEGATED_SYSCALLS:
            # The shared window *is* the host kernel's state: touching it
            # is part of every trampolined call (and must be mapped).
            if self.shared_window is not None:
                self.touch(self.online_cores[0], self.shared_window.start, 8)
            assert self.linux_services is not None
            return self.linux_services.execute(syscall, args)
        raise SyscallError(ENOSYS, f"{syscall.name} not modelled on mOS")


class MosStack:
    """The host-side half: boot-time designation of LWK resources."""

    MODULE_NAME = "mos"

    def __init__(self, machine: Machine, host: LinuxHost) -> None:
        self.machine = machine
        self.host = host
        self.hooks = ControlHooks()
        self.boot_protocol = NativeBootProtocol(machine)
        self.partition: Enclave | None = None
        self.shared_window: MemoryRegion | None = None
        self.linux_services = SyscallForwarder()
        self._ioctl_extensions: dict[int, Callable[[Any], Any]] = {}
        host.load_module(self.MODULE_NAME, self)

    # The Covirt interposition surface.
    def register_ioctl(self, cmd: int, handler: Callable[[Any], Any]) -> None:
        if cmd in self._ioctl_extensions:
            raise MosError(f"ioctl {cmd} already registered")
        self._ioctl_extensions[cmd] = handler

    def ioctl(self, cmd: int, arg: Any = None) -> Any:
        handler = self._ioctl_extensions.get(cmd)
        if handler is None:
            raise MosError(f"unknown ioctl {cmd}")
        return handler(arg)

    @property
    def instances(self) -> dict[int, Enclave]:
        """Fault-routing surface (same shape as IHK's)."""
        return {0: self.partition} if self.partition is not None else {}

    def terminate(self, _index: int, fault) -> None:
        assert self.partition is not None
        partition = self.partition
        if partition.state in (EnclaveState.FAILED, EnclaveState.DESTROYED):
            return
        partition.state = EnclaveState.FAILED
        partition.fault = fault
        for core_id in partition.assignment.core_ids:
            self.machine.core(core_id).halt()
        # mOS cannot reclaim into a fresh partition — the designation was
        # at boot — but the *host* keeps running, which is the point.

    # -- boot-time designation -------------------------------------------

    def designate(
        self, cores_per_zone: dict[int, int], mem_per_zone: dict[int, int]
    ) -> Enclave:
        """One-shot, boot-time: carve the LWK partition out of Linux and
        bring the designated cores up running the embedded LWK."""
        if self.partition is not None:
            raise MosError("mOS designates LWK cores once, at boot")
        spec = ResourceSpec(
            cores_per_zone=dict(cores_per_zone),
            mem_per_zone={z: page_align_up(m) for z, m in mem_per_zone.items()},
            name="mos-lwk",
            kernel_type="mos-lwk",
        )
        assignment = ResourceAssignment()
        for zone_id, n in sorted(spec.cores_per_zone.items()):
            free = [
                c.core_id
                for c in self.machine.cores_in_zone(zone_id)
                if self.host.can_offline(c.core_id)
            ]
            if len(free) < n:
                raise MosError(f"zone {zone_id}: need {n} cores")
            chosen = free[:n]
            self.host.offline_cores(chosen)
            assignment.core_ids += chosen
        for zone_id, size in sorted(spec.mem_per_zone.items()):
            region = self.host.offline_memory(size, zone_id)
            self.machine.memory.transfer(
                region, OFFLINE_OWNER, enclave_owner(MOS_ID)
            )
            assignment.add_region(region)
        partition = Enclave(MOS_ID, spec.name, spec, assignment)
        partition.port = NativeAccessPort(self.machine, partition, self.host)
        self.partition = partition
        # Boot the designated cores.
        partition.state = EnclaveState.BOOTING
        params = PiscesBootParams(
            enclave_id=MOS_ID,
            core_ids=list(assignment.core_ids),
            regions=list(assignment.regions),
        )
        params.write_to(self.machine.memory, boot_params_address_for(partition))
        partition.boot_params = params
        ControlHooks._fire(self.hooks.pre_boot, partition)
        bsp, *aps = assignment.core_ids
        self.boot_protocol.boot_core(partition, bsp, is_bsp=True)
        for core_id in aps:
            self.boot_protocol.boot_core(partition, core_id, is_bsp=False)
        partition.state = EnclaveState.RUNNING
        # Wire the embedded-kernel integration: direct Linux services
        # plus the shared kernel-state window, mapped through the grant
        # path so a Covirt EPT (if any) learns about it first.
        lwk = partition.kernel
        assert isinstance(lwk, MosLwk)
        lwk.linux_services = self.linux_services
        # The shared window sits at the top of zone 0, just under the
        # device MMIO region — Linux-owned kernel text/data the LWK
        # cores legitimately reach into.
        zone0 = self.machine.topology.zones[0]
        window_start = zone0.mem_end - 16 * PAGE_SIZE - SHARED_WINDOW_BYTES
        self.shared_window = MemoryRegion(window_start, SHARED_WINDOW_BYTES, 0)
        ControlHooks._fire(self.hooks.pre_memory_add, partition, self.shared_window)
        lwk.map_shared(self.shared_window)
        lwk.shared_window = self.shared_window
        ControlHooks._fire(self.hooks.post_boot, partition)
        return partition
