"""mOS-style embedded LWK (simulated).

mOS sits at the extreme end of the integration axis (Section III-A):
the LWK is *compiled into* Linux, runs on cores designated at boot
time, and LWK processes are nearly indistinguishable from Linux
processes — system calls are function calls into the host kernel, and
a large amount of kernel state is genuinely shared.

For Covirt this is the hardest adaptation target, and the most
interesting: the protection boundary cannot be "the enclave's memory"
because correct operation *requires* the LWK cores to touch shared
Linux structures.  The adaptation maps the designated partition plus an
explicit shared-state window into the EPT — everything else is still
contained.
"""

from repro.mos.stack import MosStack, MosLwk, MosError

__all__ = ["MosStack", "MosLwk", "MosError"]
