"""Comparison baselines.

The paper motivates Covirt against *traditional virtualization*: running
each co-kernel in a conventional VM would give the same fault isolation
but "has so far been rejected due to the perceived overhead cost"
(Section I), because conventional VMMs abstract the hardware, mediate
IPC through virtual devices, and assume static resource assignment
(Section III-B / Fig. 1b).  This package implements that conventional
VMM as an explicit baseline so the trade-off is measurable rather than
asserted.
"""

from repro.baselines.fullvirt import TraditionalVmm

__all__ = ["TraditionalVmm"]
