"""A conventional (QEMU/KVM- or Palacios-style) VMM baseline.

Three deliberate design differences versus Covirt, each taken from the
paper's Related Work discussion (Section III-B):

* **Abstracted memory** — the guest sees a contiguous, zero-based
  physical address space; the VMM remaps it wherever host memory is
  free.  Consequences: the EPT is *not* identity (deeper effective
  nested walks: page-walk caches are far less effective when guest and
  host page numbers disagree), and NUMA topology is hidden, so the
  guest cannot place memory (a fixed, layout-independent remote
  fraction).
* **Mediated IPC** — no shared hardware mappings across VMs; messages
  cross a virtio-style device: one hypercall exit on the send side, a
  copy through a bounce buffer, and an injected interrupt + exit on the
  receive side.
* **Static assignment** — growing or shrinking a VM's memory requires a
  stop-the-world pause: every vCPU exits, the VMM rewrites the map,
  reloads contexts, and resumes.

Everything is computed from the same :class:`~repro.perf.costs.CostModel`
Covirt's own numbers come from, so the comparison is internally
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.clock import CYCLES_PER_SECOND
from repro.hw.memory import PAGE_SIZE
from repro.hw.tlb import estimate_miss_rate
from repro.kitten.kernel import HOUSEKEEPING_TICK_CYCLES
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.workloads.base import Workload, WorkloadResult

#: Non-identity nested walks miss the page-walk caches far more often;
#: measured slowdowns for abstracted-memory guests put the per-miss
#: increment at several times the identity-map case.
NON_IDENTITY_WALK_FACTOR = 4.0

#: The guest cannot see NUMA: with interleaved backing on a two-socket
#: host, roughly half of all accesses are remote.
BLIND_REMOTE_FRACTION = 0.5

#: Virtio-style message path: hypercall exit + descriptor processing on
#: send, interrupt injection + exit on receive.
VIRTIO_TOUCH_CYCLES_PER_BYTE = 0.5  # bounce-buffer copy


@dataclass
class IpcCostBreakdown:
    send_exit: int
    copy: int
    receive_path: int

    @property
    def total(self) -> int:
        return self.send_exit + self.copy + self.receive_path


class TraditionalVmm:
    """The conventional-VM baseline."""

    name = "traditional-vm"

    def __init__(self, costs: CostModel = DEFAULT_COSTS) -> None:
        self.costs = costs

    # -- workload execution ---------------------------------------------

    def run(self, workload: Workload, ncores: int = 1) -> WorkloadResult:
        """Model one workload run inside a conventional VM.

        Comparable to :meth:`ExecutionEngine.run` with the conventional
        VMM's three design differences applied.
        """
        eff = workload.efficiency_at(ncores)
        breakdown = {k: 0.0 for k in (
            "compute", "tlb", "ept", "numa", "ipi", "timer", "baseline")}
        per_core = 0.0
        for phase in workload.phases():
            compute = phase.total_cycles / ncores / eff
            accesses = phase.total_mem_accesses / ncores
            per_core_fp = (
                phase.footprint_bytes
                if phase.shared_footprint
                else phase.footprint_bytes // max(ncores, 1)
            )
            miss_rate = estimate_miss_rate(
                per_core_fp, phase.pattern, page_size=phase.page_size
            )
            tlb = accesses * miss_rate * self.costs.tlb_miss_native
            # Non-identity EPT: the nested dimension misses its caches.
            ept = (
                accesses
                * miss_rate
                * self.costs.ept_extra_4k
                * NON_IDENTITY_WALK_FACTOR
            )
            # NUMA-blind placement, charged with the engine's own spill
            # and latency-exposure model so native/VM numbers compare.
            from repro.workloads.engine import (
                NUMA_LATENCY_EXPOSURE,
                NUMA_SPILL_FACTOR,
            )

            numa = (
                accesses
                * BLIND_REMOTE_FRACTION
                * NUMA_SPILL_FACTOR
                * NUMA_LATENCY_EXPOSURE[phase.pattern]
                * self.costs.remote_numa_extra
            )
            # All inter-vCPU signalling crosses the VMM (trap mode).
            ipis = phase.total_ipis / ncores
            ipi = ipis * (
                self.costs.exit_cost(emulation=True)
                + self.costs.exit_cost()
                + self.costs.irq_injection
            )
            baseline = compute * max(workload.vmx_sensitivity, 0.002)
            breakdown["compute"] += compute
            breakdown["tlb"] += tlb
            breakdown["ept"] += ept
            breakdown["numa"] += numa
            breakdown["ipi"] += ipi
            breakdown["baseline"] += baseline
            per_core += compute + tlb + ept + numa + ipi + baseline
        # Every timer tick and device interrupt exits, always.
        ticks = per_core / HOUSEKEEPING_TICK_CYCLES
        timer = ticks * (
            self.costs.exit_cost()
            + self.costs.irq_injection
            + self.costs.housekeeping_tick
        )
        breakdown["timer"] = timer
        elapsed = int(per_core + timer)
        seconds = elapsed / CYCLES_PER_SECOND
        return WorkloadResult(
            workload=workload.name,
            config_label=self.name,
            layout_label=f"{ncores}c/vm",
            ncores=ncores,
            elapsed_cycles=elapsed,
            fom=workload.figure_of_merit(seconds, ncores),
            fom_name=workload.fom_name,
            higher_is_better=workload.higher_is_better,
            breakdown=breakdown,
        )

    # -- IPC -------------------------------------------------------------

    def ipc_message_cost(self, message_bytes: int) -> IpcCostBreakdown:
        """Cost of one cross-VM message through the virtio-style device.

        Covirt's equivalent is *zero* additional cycles: attached XEMEM
        segments are directly mapped, and doorbell IPIs cost one trapped
        ICR write (posted delivery on the receive side).
        """
        return IpcCostBreakdown(
            send_exit=self.costs.exit_cost(emulation=True),
            copy=int(message_bytes * VIRTIO_TOUCH_CYCLES_PER_BYTE),
            receive_path=self.costs.exit_cost() + self.costs.irq_injection,
        )

    def covirt_message_cost(self, message_bytes: int) -> int:
        """The same message under Covirt: direct shared mapping (no copy,
        no per-byte cost), one trapped doorbell send, posted receive."""
        return self.costs.exit_cost(emulation=True) + self.costs.posted_delivery

    # -- dynamic memory ----------------------------------------------------

    def attach_latency_cycles(self, size: int, vcpus: int) -> int:
        """Stop-the-world memory reconfiguration.

        Every vCPU is paused (exit), the VMM rewrites its (non-identity)
        map page by page, reloads each context, and resumes.
        """
        pages = size // PAGE_SIZE
        pause_resume = vcpus * (
            self.costs.exit_cost() + self.costs.vmcs_load + self.costs.vm_launch
        )
        # The VMM still builds/parses the frame list and the guest still
        # updates its map (as in the Covirt path), *plus* non-identity
        # remap bookkeeping per page.
        remap = int(
            pages
            * (
                self.costs.page_list_per_page
                + self.costs.guest_memmap_per_page
                + 3.0
            )
        )
        return pause_resume + remap + self.costs.xemem_control_rtt
