"""Kitten Lightweight Kernel (simulated).

Kitten is the co-kernel OS/R that runs inside Pisces enclaves: a
POSIX-like LWK with contiguous physical memory, identity mappings, a
run-to-completion scheduler, and minimal timer noise.  It is also —
deliberately — the software whose bugs Covirt contains: its memory map
is only a *belief* about what it owns, and the fault-injection tests
desynchronize that belief from reality exactly as the paper's war
stories describe.
"""

from repro.kitten.memmap import GuestMemoryMap, MemoryMapError
from repro.kitten.task import Task, TaskState
from repro.kitten.sched import Scheduler
from repro.kitten.syscalls import Syscall, SyscallError, LOCAL_SYSCALLS, DELEGATED_SYSCALLS
from repro.kitten.kernel import KittenKernel, GuestPageFault

__all__ = [
    "GuestMemoryMap",
    "MemoryMapError",
    "Task",
    "TaskState",
    "Scheduler",
    "Syscall",
    "SyscallError",
    "LOCAL_SYSCALLS",
    "DELEGATED_SYSCALLS",
    "KittenKernel",
    "GuestPageFault",
]
