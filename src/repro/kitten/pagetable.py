"""x86-64 four-level guest page tables.

Kitten maps its world identity-style, but it still builds real page
tables: PML4 → PDPT → PD → PT, with 1 GiB and 2 MiB huge-page entries
where alignment allows (LWKs lean hard on huge pages).  The walker
reports how many levels it touched, which is what makes guest-side
translation costs and the "identity mappings make nested paging cheap"
story concrete.

This is the *guest's own* translation structure — the layer above the
EPT.  A correct Kitten's page tables cover exactly its memory map; the
fault-injection knobs desynchronise the two layers the way real bugs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.hw.memory import (
    PAGE_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    is_page_aligned,
)

#: Bits of virtual address translated per level.
_LEVEL_SHIFTS = (39, 30, 21, 12)  # PML4, PDPT, PD, PT
_INDEX_MASK = 0x1FF


class PageTableError(Exception):
    pass


@dataclass
class PTEntry:
    """One page-table entry (any level)."""

    present: bool = False
    writable: bool = True
    #: For leaf entries: physical frame base.  For interior entries: the
    #: next-level table.
    frame: int = 0
    huge: bool = False
    table: "PageTable | None" = None


@dataclass
class PageTable:
    """One 512-entry table."""

    level: int  # 0 = PML4 ... 3 = PT
    entries: dict[int, PTEntry] = field(default_factory=dict)

    def entry(self, index: int, create: bool = False) -> PTEntry | None:
        entry = self.entries.get(index)
        if entry is None and create:
            entry = PTEntry()
            self.entries[index] = entry
        return entry


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a successful page walk."""

    paddr: int
    page_size: int
    writable: bool
    levels_touched: int


class GuestPageTable:
    """A guest's four-level translation structure."""

    def __init__(self) -> None:
        self.root = PageTable(level=0)
        #: Leaf entries installed, for introspection.
        self.leaf_count: dict[int, int] = {
            PAGE_SIZE: 0, PAGE_SIZE_2M: 0, PAGE_SIZE_1G: 0
        }

    @staticmethod
    def _indices(vaddr: int) -> tuple[int, int, int, int]:
        return tuple((vaddr >> shift) & _INDEX_MASK for shift in _LEVEL_SHIFTS)

    # -- mapping -------------------------------------------------------

    def map(
        self,
        virt: int,
        phys: int,
        size: int,
        *,
        writable: bool = True,
        max_page: int = PAGE_SIZE_1G,
    ) -> int:
        """Map [virt, +size) → [phys, +size); returns leaf entries made.

        Greedily uses 1 GiB / 2 MiB leaves where both addresses align
        (capped by ``max_page``).  Overlapping an existing mapping is an
        error — Kitten never double-maps.
        """
        if not (is_page_aligned(virt) and is_page_aligned(phys) and is_page_aligned(size)) or size <= 0:
            raise PageTableError(f"bad map [{virt:#x},+{size:#x})")
        created = 0
        remaining = size
        while remaining:
            for page_size in (PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE):
                if page_size > max_page:
                    continue
                if virt % page_size or phys % page_size or remaining < page_size:
                    continue
                self._install_leaf(virt, phys, page_size, writable)
                virt += page_size
                phys += page_size
                remaining -= page_size
                created += 1
                break
        return created

    def _install_leaf(
        self, virt: int, phys: int, page_size: int, writable: bool
    ) -> None:
        leaf_level = {PAGE_SIZE_1G: 1, PAGE_SIZE_2M: 2, PAGE_SIZE: 3}[page_size]
        table = self.root
        indices = self._indices(virt)
        for level in range(leaf_level):
            entry = table.entry(indices[level], create=True)
            assert entry is not None
            if entry.present and entry.table is None:
                raise PageTableError(
                    f"{virt:#x}: huge mapping already covers this range"
                )
            if entry.table is None:
                entry.table = PageTable(level=level + 1)
                entry.present = True
            table = entry.table
        leaf = table.entry(indices[leaf_level], create=True)
        assert leaf is not None
        if leaf.present:
            raise PageTableError(f"{virt:#x} already mapped")
        leaf.present = True
        leaf.writable = writable
        leaf.frame = phys
        leaf.huge = page_size != PAGE_SIZE
        self.leaf_count[page_size] += 1

    def unmap(self, virt: int, size: int) -> int:
        """Unmap [virt, +size); huge leaves are split when partially
        covered.  Returns leaf entries removed (post-split)."""
        if not is_page_aligned(virt) or not is_page_aligned(size) or size <= 0:
            raise PageTableError(f"bad unmap [{virt:#x},+{size:#x})")
        removed = 0
        addr = virt
        end = virt + size
        while addr < end:
            result = self.walk(addr)
            if result is None:
                raise PageTableError(f"{addr:#x} not mapped")
            base = addr & ~(result.page_size - 1)
            leaf_end = base + result.page_size
            if base < addr or leaf_end > end:
                # Split the huge leaf and retry at finer granularity.
                self._split_leaf(base, result)
                continue
            self._remove_leaf(base, result.page_size)
            removed += 1
            addr = leaf_end
        return removed

    def _split_leaf(self, base: int, result: WalkResult) -> None:
        if result.page_size == PAGE_SIZE:
            raise PageTableError("cannot split a 4K leaf")
        at_base = self.walk(base)
        assert at_base is not None
        phys_base = at_base.paddr  # leaf-aligned physical base
        smaller = PAGE_SIZE_2M if result.page_size == PAGE_SIZE_1G else PAGE_SIZE
        self._remove_leaf(base, result.page_size)
        for offset in range(0, result.page_size, smaller):
            self._install_leaf(
                base + offset, phys_base + offset, smaller, result.writable
            )

    def _remove_leaf(self, virt: int, page_size: int) -> None:
        leaf_level = {PAGE_SIZE_1G: 1, PAGE_SIZE_2M: 2, PAGE_SIZE: 3}[page_size]
        indices = self._indices(virt)
        path: list[tuple[PageTable, int]] = []
        table = self.root
        for level in range(leaf_level):
            entry = table.entry(indices[level])
            if entry is None or entry.table is None:
                raise PageTableError(f"{virt:#x}: broken interior node")
            path.append((table, indices[level]))
            table = entry.table
        leaf = table.entry(indices[leaf_level])
        if leaf is None or not leaf.present:
            raise PageTableError(f"{virt:#x} not mapped at {page_size:#x}")
        del table.entries[indices[leaf_level]]
        self.leaf_count[page_size] -= 1
        # Prune now-empty interior tables so the slot can later hold a
        # huge leaf again (real kernels free empty page-table pages too).
        for parent, index in reversed(path):
            child = parent.entries[index].table
            if child is not None and not child.entries:
                del parent.entries[index]
            else:
                break

    # -- walking ---------------------------------------------------------

    def walk(self, vaddr: int) -> WalkResult | None:
        """Translate ``vaddr``; None on a guest page fault."""
        indices = self._indices(vaddr)
        table = self.root
        for level in range(4):
            entry = table.entry(indices[level])
            if entry is None or not entry.present:
                return None
            if entry.table is None:  # leaf
                page_size = {1: PAGE_SIZE_1G, 2: PAGE_SIZE_2M, 3: PAGE_SIZE}[level]
                offset = vaddr & (page_size - 1)
                return WalkResult(
                    paddr=entry.frame + offset,
                    page_size=page_size,
                    writable=entry.writable,
                    levels_touched=level + 1,
                )
            table = entry.table
        return None  # pragma: no cover

    def translate(self, vaddr: int, *, write: bool = False) -> WalkResult | None:
        result = self.walk(vaddr)
        if result is None or (write and not result.writable):
            return None
        return result

    def covers(self, addr: int, length: int) -> bool:
        """Is [addr, +length) fully mapped?"""
        pos = addr
        end = addr + max(length, 1)
        while pos < end:
            result = self.walk(pos)
            if result is None:
                return False
            pos = (pos & ~(result.page_size - 1)) + result.page_size
        return True

    # -- introspection -------------------------------------------------

    def mapped_bytes(self) -> int:
        return sum(size * count for size, count in self.leaf_count.items())

    def tables(self) -> Iterator[PageTable]:
        stack = [self.root]
        while stack:
            table = stack.pop()
            yield table
            for entry in table.entries.values():
                if entry.table is not None:
                    stack.append(entry.table)
