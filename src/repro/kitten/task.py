"""Kitten tasks (processes).

Kitten gives each task contiguous physical memory and identity
mappings; tasks are the unit that XEMEM segments attach to and that
Hobbes composes across enclaves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"
    KILLED = "killed"


@dataclass
class MemorySlice:
    """A contiguous allocation inside the enclave's physical memory."""

    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass
class Task:
    """One LWK process."""

    tid: int
    name: str
    enclave_id: int
    state: TaskState = TaskState.READY
    #: Physical memory slices allocated to this task (contiguous, identity
    #: mapped — Kitten's simple resource management policy).
    slices: list[MemorySlice] = field(default_factory=list)
    #: XEMEM segment ids this task has attached, mapped to local addresses.
    attachments: dict[int, int] = field(default_factory=dict)
    #: Core the scheduler bound the task to (LWK tasks don't migrate).
    bound_core: int | None = None
    exit_code: int | None = None

    @property
    def memory_bytes(self) -> int:
        return sum(s.size for s in self.slices)

    def owns_addr(self, addr: int, length: int = 1) -> bool:
        end = addr + length
        for s in self.slices:
            if s.start <= addr and end <= s.end:
                return True
        return False

    def exit(self, code: int = 0) -> None:
        self.state = TaskState.EXITED
        self.exit_code = code

    def kill(self) -> None:
        self.state = TaskState.KILLED
