"""The co-kernel's internal memory map.

This is the enclave OS/R's *view* of which physical ranges it may use:
Kitten configures its (identity) mappings from this set, and a correct
kernel never touches an address outside it.  The paper's central
observation is that nothing *enforces* that view — it must be kept in
sync with the system-wide assignment by the co-kernel framework, and
when synchronization breaks (a missed cleanup, a version-skewed
interface), the kernel faithfully acts on stale beliefs.

The map is an ordered set of disjoint, page-aligned intervals.
"""

from __future__ import annotations

from repro.hw.memory import MemoryRegion, is_page_aligned


class MemoryMapError(Exception):
    """Structural misuse of the memory map."""


class GuestMemoryMap:
    """Disjoint interval set over (guest-)physical addresses."""

    def __init__(self) -> None:
        self._intervals: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def total_bytes(self) -> int:
        return sum(e - s for s, e in self._intervals)

    def intervals(self) -> list[tuple[int, int]]:
        return list(self._intervals)

    def _validate(self, start: int, size: int) -> int:
        if size <= 0 or not is_page_aligned(start) or not is_page_aligned(size):
            raise MemoryMapError(f"bad range [{start:#x},+{size:#x})")
        return start + size

    def add(self, start: int, size: int) -> None:
        """Insert a range; overlap with an existing range is a bug."""
        end = self._validate(start, size)
        for s, e in self._intervals:
            if start < e and s < end:
                raise MemoryMapError(
                    f"range [{start:#x},{end:#x}) overlaps [{s:#x},{e:#x})"
                )
        self._intervals.append((start, end))
        self._intervals.sort()
        self._merge()

    def _merge(self) -> None:
        merged: list[tuple[int, int]] = []
        for s, e in self._intervals:
            if merged and merged[-1][1] == s:
                merged[-1] = (merged[-1][0], e)
            else:
                merged.append((s, e))
        self._intervals = merged

    def remove(self, start: int, size: int) -> None:
        """Remove a range; it must be entirely present."""
        end = self._validate(start, size)
        out: list[tuple[int, int]] = []
        covered = 0
        for s, e in self._intervals:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            covered += min(e, end) - max(s, start)
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        if covered != size:
            raise MemoryMapError(
                f"remove [{start:#x},{end:#x}) not fully mapped"
            )
        self._intervals = out

    def add_region(self, region: MemoryRegion) -> None:
        self.add(region.start, region.size)

    def remove_region(self, region: MemoryRegion) -> None:
        self.remove(region.start, region.size)

    def contains(self, addr: int, length: int = 1) -> bool:
        """Is [addr, +length) entirely believed-usable?"""
        remaining_start = addr
        end = addr + length
        for s, e in self._intervals:
            if s <= remaining_start < e:
                if end <= e:
                    return True
                remaining_start = e  # continue into the next interval
        return False

    def find_free_within(self, owned: "GuestMemoryMap") -> None:  # pragma: no cover
        raise NotImplementedError

    def check_invariants(self) -> None:
        for (s1, e1), (s2, _e2) in zip(self._intervals, self._intervals[1:]):
            assert s1 < e1, "empty interval"
            assert e1 < s2, "unmerged or overlapping intervals"
        if self._intervals:
            s, e = self._intervals[-1]
            assert s < e
