"""The Kitten kernel proper.

One :class:`KittenKernel` instance runs per enclave.  It parses the
Pisces boot-parameter structure out of guest memory, builds its memory
map, brings up secondary cores, and exposes the task/syscall machinery
workloads run on.

Two aspects are load-bearing for the reproduction:

* **Every architectural access goes through the enclave's port.** The
  kernel never touches ``machine.memory`` directly after boot; whether
  the access is policed (Covirt) or not (native) is entirely the port's
  business, and the kernel is bit-for-bit oblivious to which one it got
  — the transparency property the paper claims.
* **The kernel acts on its own memory map, not on ground truth.**  The
  ``buggy_cleanup`` knob makes hot-remove "forget" to retire mappings,
  reproducing the stale-XEMEM-segment bug from Section V's anecdote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.hw.apic import DeliveryMode
from repro.hw.interrupts import Interrupt, InterruptKind
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, PAGE_SIZE, page_align_up
from repro.kitten.memmap import GuestMemoryMap
from repro.kitten.pagetable import GuestPageTable
from repro.kitten.sched import Scheduler
from repro.kitten.syscalls import (
    DELEGATED_SYSCALLS,
    EFAULT,
    EINVAL,
    ENOMEM,
    ENOSYS,
    LOCAL_SYSCALLS,
    Syscall,
    SyscallError,
)
from repro.kitten.task import MemorySlice, Task, TaskState
from repro.pisces.bootparams import PiscesBootParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.pisces.enclave import Enclave

#: Kitten keeps the local APIC timer nearly silent: one housekeeping
#: tick every 100 ms (LWKs minimise timer interrupts; Section IV-C).
HOUSEKEEPING_TICK_CYCLES = 170_000_000

#: First megabyte of the first region is kernel image + boot structures.
KERNEL_RESERVED_BYTES = 1 << 20


class GuestPageFault(Exception):
    """A task touched memory outside its allocation (guest-level #PF)."""


@dataclass
class IrqBinding:
    handler: Callable[[int, Interrupt], None]
    description: str = ""


class KittenKernel:
    """The LWK instance managing one enclave's resources."""

    def __init__(
        self, machine: Machine, enclave: "Enclave", params: PiscesBootParams
    ) -> None:
        self.machine = machine
        self.enclave = enclave
        self.params = params
        self.memmap = GuestMemoryMap()
        #: The kernel's real 4-level identity page tables (huge pages
        #: where alignment allows, as LWKs do).
        self.pgtable = GuestPageTable()
        for region in params.regions:
            self.memmap.add_region(region)
            self.pgtable.map(region.start, region.start, region.size)
        self.online_cores: list[int] = [params.core_ids[0]]
        self.sched = Scheduler([params.core_ids[0]])
        self.tasks: dict[int, Task] = {}
        self._next_tid = 1
        # Bump allocator over owned memory, skipping the kernel image.
        self._alloc_cursor: dict[int, int] = {}
        first = params.regions[0]
        self._heap_starts = {
            r.start: (
                r.start + KERNEL_RESERVED_BYTES if r.start == first.start else r.start
            )
            for r in params.regions
        }
        self._alloc_cursor = dict(self._heap_starts)
        self._irq_handlers: dict[int, IrqBinding] = {}
        self.irq_log: dict[int, list[Interrupt]] = {c: [] for c in params.core_ids}
        self.console: list[str] = []
        self.running = True
        #: Fault-injection knob: skip memory-map retirement on hot-remove.
        self.buggy_cleanup = False
        #: Hobbes runtime attach point (set by the runtime when present).
        self.hobbes_client: Any = None
        self._configure_core(params.core_ids[0])

    # -- boot ------------------------------------------------------------

    @classmethod
    def boot(cls, machine: Machine, enclave: "Enclave") -> "KittenKernel":
        """BSP entry point: parse boot params out of guest memory."""
        assert enclave.boot_params is not None
        params = PiscesBootParams.read_from(
            machine.memory, enclave.boot_params.address
        )
        params.address = enclave.boot_params.address
        kernel = cls(machine, enclave, params)
        kernel.console.append(
            f"Kitten booting: enclave {params.enclave_id}, "
            f"{len(params.core_ids)} cores, "
            f"{sum(r.size for r in params.regions) >> 20} MiB"
        )
        return kernel

    def _configure_core(self, core_id: int) -> None:
        core = self.machine.core(core_id)
        assert core.apic is not None
        core.apic.configure_timer(HOUSEKEEPING_TICK_CYCLES)
        # Under native execution Kitten owns the physical delivery hook;
        # under Covirt the hypervisor owns it and calls inject_interrupt.
        from repro.hw.cpu import CpuMode

        if core.mode is not CpuMode.GUEST:
            core.apic.delivery_hook = lambda irq, c=core_id: self.inject_interrupt(
                c, irq
            )

    def join_secondary_core(self, core_id: int) -> None:
        if core_id in self.online_cores:
            raise ValueError(f"core {core_id} already online in enclave")
        self.online_cores.append(core_id)
        self.sched.add_core(core_id)
        self.irq_log.setdefault(core_id, [])
        self._configure_core(core_id)

    def shutdown(self) -> None:
        self.running = False
        for task in self.tasks.values():
            if task.state in (TaskState.READY, TaskState.RUNNING, TaskState.BLOCKED):
                task.kill()

    # -- interrupts --------------------------------------------------------

    def register_irq_handler(
        self, vector: int, handler: Callable[[int, Interrupt], None], desc: str = ""
    ) -> None:
        self._irq_handlers[vector] = IrqBinding(handler, desc)

    def inject_interrupt(self, core_id: int, interrupt: Interrupt) -> None:
        """IRQ dispatch: called by the APIC hook (native) or by the
        Covirt delivery engine (virtualized)."""
        if not self.running:
            return
        self.irq_log.setdefault(core_id, []).append(interrupt)
        binding = self._irq_handlers.get(interrupt.vector)
        if binding is not None:
            binding.handler(core_id, interrupt)
        apic = self.machine.core(core_id).apic
        if apic is not None and interrupt.kind is not InterruptKind.NMI:
            apic.ack(interrupt.vector)

    def send_ipi(
        self, from_core: int, dest_core: int, vector: int,
        mode: DeliveryMode = DeliveryMode.FIXED,
    ) -> bool:
        """Kernel-level IPI transmission (goes through the port)."""
        assert self.enclave.port is not None
        return self.enclave.port.send_ipi(from_core, dest_core, vector, mode)

    # -- memory ------------------------------------------------------------

    def kmalloc(self, size: int, zone_pref: int | None = None) -> MemorySlice:
        """Contiguous physical allocation (Kitten's signature policy)."""
        size = page_align_up(size)
        regions = sorted(
            self.params.regions,
            key=lambda r: (r.zone != zone_pref, r.start),
        )
        for region in regions:
            cursor = self._alloc_cursor.get(region.start)
            if cursor is None:
                continue
            if cursor + size <= region.end:
                self._alloc_cursor[region.start] = cursor + size
                return MemorySlice(cursor, size)
        raise SyscallError(ENOMEM, f"kitten: cannot allocate {size:#x} bytes")

    def memory_hotplug_add(self, region: MemoryRegion) -> None:
        """Receive a page-frame list for newly granted memory."""
        self.memmap.add_region(region)
        self.pgtable.map(region.start, region.start, region.size)
        self.params.regions.append(region)
        self._alloc_cursor[region.start] = region.start
        self._heap_starts[region.start] = region.start

    def memory_hotplug_remove(self, region: MemoryRegion) -> bool:
        """Receive and acknowledge a page-frame removal list.

        With ``buggy_cleanup`` set, the kernel acknowledges but fails to
        retire its own mappings — the stale-state bug class from the
        paper's evaluation narrative.
        """
        if region in self.params.regions:
            self.params.regions.remove(region)
        self._alloc_cursor.pop(region.start, None)
        self._heap_starts.pop(region.start, None)
        if not self.buggy_cleanup:
            self.memmap.remove_region(region)
            self.pgtable.unmap(region.start, region.size)
        return True  # ack

    def map_shared(self, region: MemoryRegion) -> None:
        """Install an XEMEM attachment into the kernel's mappings."""
        self.memmap.add_region(region)
        self.pgtable.map(region.start, region.start, region.size)

    def unmap_shared(self, region: MemoryRegion) -> None:
        """Retire an XEMEM attachment (the ack half of detach)."""
        self.memmap.remove_region(region)
        self.pgtable.unmap(region.start, region.size)

    def inject_stale_mapping(self, start: int, size: int) -> None:
        """Fault-injection helper: make the kernel *believe* it owns
        [start, +size) — memory map and page tables both — the way a
        missed cleanup would."""
        self.memmap.add(start, size)
        self.pgtable.map(start, start, size)

    def touch(
        self, core_id: int, addr: int, length: int = 8, *, write: bool = False
    ) -> bytes | None:
        """Kernel-mode memory access.

        The kernel walks its *own* page tables and then issues the
        access through the enclave port.  When those tables are stale,
        the kernel believes the access is fine — and only the layer
        underneath (Covirt, or nothing) decides what actually happens.
        """
        if not self.pgtable.covers(addr, length):
            raise GuestPageFault(
                f"kitten: {addr:#x} not mapped in guest page tables"
            )
        assert self.enclave.port is not None
        if write:
            self.enclave.port.write(core_id, addr, b"\xAB" * length)
            return None
        return self.enclave.port.read(core_id, addr, length)

    # -- tasks & syscalls ----------------------------------------------

    def spawn(self, name: str, mem_bytes: int = PAGE_SIZE, core_id: int | None = None) -> Task:
        task = Task(self._next_tid, name, self.params.enclave_id)
        self._next_tid += 1
        if mem_bytes:
            task.slices.append(self.kmalloc(mem_bytes))
        self.tasks[task.tid] = task
        self.sched.enqueue(task, core_id if core_id is not None else self.sched.least_loaded_core())
        return task

    def syscall(self, task: Task, nr: int, *args: Any) -> Any:
        """System-call entry."""
        try:
            syscall = Syscall(nr)
        except ValueError:
            raise SyscallError(ENOSYS, f"unknown syscall {nr}") from None
        if syscall in DELEGATED_SYSCALLS:
            if self.hobbes_client is None:
                raise SyscallError(
                    ENOSYS, f"{syscall.name} requires Hobbes forwarding"
                )
            return self.hobbes_client.forward_syscall(task, syscall, args)
        if syscall not in LOCAL_SYSCALLS:
            raise SyscallError(ENOSYS, f"{syscall.name} not supported")
        return self._local_syscall(task, syscall, args)

    def _local_syscall(self, task: Task, syscall: Syscall, args: tuple) -> Any:
        if syscall is Syscall.GETPID or syscall is Syscall.GETTID:
            return task.tid
        if syscall is Syscall.UNAME:
            return "Kitten co-kernel (repro) 4.0"
        if syscall is Syscall.EXIT:
            task.exit(args[0] if args else 0)
            if task.bound_core is not None:
                self.sched.task_done(task.bound_core)
            return 0
        if syscall is Syscall.WRITE:
            fd, text = args[0], args[1]
            if fd not in (1, 2):
                raise SyscallError(EINVAL, f"write: bad fd {fd}")
            self.console.append(str(text))
            return len(str(text))
        if syscall in (Syscall.MMAP, Syscall.BRK):
            size = args[0]
            chunk = self.kmalloc(size)
            task.slices.append(chunk)
            return chunk.start
        if syscall in (
            Syscall.XEMEM_MAKE,
            Syscall.XEMEM_GET,
            Syscall.XEMEM_ATTACH,
            Syscall.XEMEM_DETACH,
        ):
            if self.hobbes_client is None:
                raise SyscallError(ENOSYS, "XEMEM requires the Hobbes runtime")
            return self.hobbes_client.xemem_syscall(task, syscall, args)
        raise SyscallError(ENOSYS, f"{syscall.name} unhandled")  # pragma: no cover

    def user_access(
        self, task: Task, core_id: int, addr: int, length: int, *, write: bool
    ) -> bytes | None:
        """User-mode access: checked against the task's allocation plus
        its XEMEM attachments, then issued through the kernel path."""
        if not (task.owns_addr(addr, length) or self._in_attachment(task, addr, length)):
            task.kill()
            raise GuestPageFault(
                f"task {task.tid} segfault at {addr:#x} (+{length})"
            )
        return self.touch(core_id, addr, length, write=write)

    def _in_attachment(self, task: Task, addr: int, length: int) -> bool:
        if self.hobbes_client is None:
            return False
        return self.hobbes_client.attachment_covers(task, addr, length)
