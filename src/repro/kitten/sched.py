"""Kitten's scheduler.

LWK scheduling policy is deliberately trivial — one run queue per core,
run-to-completion, no preemption, tasks pinned to the core they were
spawned on.  That simplicity is what buys the low-noise profile the
Selfish Detour experiment measures.
"""

from __future__ import annotations

from collections import deque

from repro.kitten.task import Task, TaskState


class SchedulerError(Exception):
    pass


class Scheduler:
    """Per-core run queues with run-to-completion semantics."""

    def __init__(self, core_ids: list[int]) -> None:
        if not core_ids:
            raise SchedulerError("scheduler needs at least one core")
        self._queues: dict[int, deque[Task]] = {c: deque() for c in core_ids}
        self._current: dict[int, Task | None] = {c: None for c in core_ids}

    @property
    def core_ids(self) -> list[int]:
        return sorted(self._queues)

    def add_core(self, core_id: int) -> None:
        if core_id in self._queues:
            raise SchedulerError(f"core {core_id} already scheduled")
        self._queues[core_id] = deque()
        self._current[core_id] = None

    def enqueue(self, task: Task, core_id: int) -> None:
        if core_id not in self._queues:
            raise SchedulerError(f"core {core_id} not managed by this scheduler")
        task.bound_core = core_id
        self._queues[core_id].append(task)

    def least_loaded_core(self) -> int:
        """Placement policy for unpinned spawns."""
        return min(
            self._queues,
            key=lambda c: len(self._queues[c]) + (self._current[c] is not None),
        )

    def current(self, core_id: int) -> Task | None:
        return self._current[core_id]

    def pick_next(self, core_id: int) -> Task | None:
        """Dispatch the next READY task on ``core_id``."""
        running = self._current[core_id]
        if running is not None and running.state is TaskState.RUNNING:
            return running  # run to completion
        queue = self._queues[core_id]
        while queue:
            task = queue.popleft()
            if task.state is TaskState.READY:
                task.state = TaskState.RUNNING
                self._current[core_id] = task
                return task
        self._current[core_id] = None
        return None

    def task_done(self, core_id: int) -> None:
        """The running task exited; the core goes back to the queue."""
        self._current[core_id] = None

    def queued(self, core_id: int) -> int:
        return len(self._queues[core_id])
