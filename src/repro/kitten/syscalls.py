"""Kitten's system-call surface.

A small set of performance-critical syscalls is handled locally in the
LWK; heavyweight functionality (filesystem, sockets, ...) is *delegated*
to the host Linux OS through Hobbes' system-call forwarding service.
The split below mirrors what the Hobbes stack forwards in practice.
"""

from __future__ import annotations

import enum


class Syscall(enum.IntEnum):
    """Syscall numbers (Linux-compatible where it matters)."""

    READ = 0
    WRITE = 1
    OPEN = 2
    CLOSE = 3
    STAT = 4
    MMAP = 9
    BRK = 12
    GETPID = 39
    SOCKET = 41
    EXIT = 60
    UNAME = 63
    GETTID = 186
    # XEMEM control calls (XPMEM-compatible extension range).
    XEMEM_MAKE = 800
    XEMEM_GET = 801
    XEMEM_ATTACH = 802
    XEMEM_DETACH = 803


#: Handled entirely inside the LWK — these are the fast paths that make
#: co-kernels attractive.
LOCAL_SYSCALLS: frozenset[Syscall] = frozenset(
    {
        Syscall.MMAP,
        Syscall.BRK,
        Syscall.GETPID,
        Syscall.GETTID,
        Syscall.EXIT,
        Syscall.UNAME,
        Syscall.WRITE,  # console fast path
        Syscall.XEMEM_MAKE,
        Syscall.XEMEM_GET,
        Syscall.XEMEM_ATTACH,
        Syscall.XEMEM_DETACH,
    }
)

#: Offloaded to the general-purpose OS via Hobbes forwarding.
DELEGATED_SYSCALLS: frozenset[Syscall] = frozenset(
    {
        Syscall.READ,
        Syscall.OPEN,
        Syscall.CLOSE,
        Syscall.STAT,
        Syscall.SOCKET,
    }
)


class SyscallError(Exception):
    """Syscall-level failure, carrying a errno-style code."""

    def __init__(self, errno: int, message: str) -> None:
        super().__init__(message)
        self.errno = errno


ENOSYS = 38
EINVAL = 22
ENOMEM = 12
EFAULT = 14
