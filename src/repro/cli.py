"""Command-line interface: ``python -m repro <experiment>``.

Gives every table, figure, and ablation a shell-invokable entry point,
plus a fault-demo command that prints a Covirt crash dossier.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.harness import experiments as ex

#: experiment name → driver
EXPERIMENTS: dict[str, Callable[[], "ex.ExperimentResult"]] = {
    "table1": ex.run_table1,
    "fig3": ex.run_fig3_selfish,
    "fig4": ex.run_fig4_xemem,
    "fig5a": ex.run_fig5_stream,
    "fig5b": ex.run_fig5_randomaccess,
    "fig6": ex.run_fig6_minife,
    "fig7": ex.run_fig7_hpcg,
    "fig8": ex.run_fig8_lammps,
    "ablation-coalescing": ex.run_ablation_coalescing,
    "ablation-ipi-mode": ex.run_ablation_ipi_mode,
    "ablation-async": ex.run_ablation_async_config,
    "motivation": ex.run_motivation_fullvirt,
    "isolation": ex.run_isolation_corun,
    "integration-spectrum": ex.run_integration_spectrum,
    "sensitivity": ex.run_sensitivity,
}


def run_experiments(names: list[str], json_dir: str | None = None) -> int:
    for name in names:
        driver = EXPERIMENTS.get(name)
        if driver is None:
            print(f"unknown experiment {name!r}; "
                  f"choose from: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
            return 2
        result = driver()
        print(result.render())
        if json_dir is not None:
            path = result.save(json_dir, name)
            print(f"[wrote {path}]")
        print()
    return 0


def run_fault_demo() -> int:
    """Crash a protected enclave and print its dossier."""
    from repro.core.faults import EnclaveFaultError
    from repro.core.features import CovirtConfig
    from repro.harness.env import CovirtEnvironment, Layout

    GiB = 1 << 30
    env = CovirtEnvironment()
    enclave = env.launch(
        Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}),
        CovirtConfig.full(),
        name="demo",
    )
    enclave.kernel.console.append("worker: entering exchange phase")
    bsp = enclave.assignment.core_ids[0]
    enclave.port.send_ipi(bsp, 0, 99)  # errant, dropped
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass
    print(env.controller.dossiers[enclave.enclave_id].render())
    print(f"\nhost survived: {env.host.alive}; "
          f"resources reclaimed: {env.host.owner_summary()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Covirt reproduction: regenerate the paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    run.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write machine-readable results to DIR/<experiment>.json",
    )
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("fault-demo", help="crash an enclave, print its dossier")
    sub.add_parser(
        "verify", help="check every paper shape claim against its band"
    )
    args = parser.parse_args(argv)

    if args.command == "verify":
        from repro.harness.verify import run_verification

        report, ok = run_verification()
        print(report)
        print("\nALL CLAIMS REPRODUCED" if ok else "\nSOME CLAIMS OUT OF BAND")
        return 0 if ok else 1
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"  {name:22s} {EXPERIMENTS[name].__doc__.splitlines()[0]}")
        return 0
    if args.command == "fault-demo":
        return run_fault_demo()
    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    return run_experiments(names, json_dir=args.json)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
