"""Command-line interface: ``python -m repro <experiment>``.

Gives every table, figure, and ablation a shell-invokable entry point,
plus a fault-demo command that prints a Covirt crash dossier.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.harness import experiments as ex

#: experiment name → driver
EXPERIMENTS: dict[str, Callable[[], "ex.ExperimentResult"]] = {
    "table1": ex.run_table1,
    "fig3": ex.run_fig3_selfish,
    "fig4": ex.run_fig4_xemem,
    "fig5a": ex.run_fig5_stream,
    "fig5b": ex.run_fig5_randomaccess,
    "fig6": ex.run_fig6_minife,
    "fig7": ex.run_fig7_hpcg,
    "fig8": ex.run_fig8_lammps,
    "ablation-coalescing": ex.run_ablation_coalescing,
    "ablation-ipi-mode": ex.run_ablation_ipi_mode,
    "ablation-async": ex.run_ablation_async_config,
    "motivation": ex.run_motivation_fullvirt,
    "isolation": ex.run_isolation_corun,
    "integration-spectrum": ex.run_integration_spectrum,
    "sensitivity": ex.run_sensitivity,
}


def run_experiments(names: list[str], json_dir: str | None = None) -> int:
    for name in names:
        driver = EXPERIMENTS.get(name)
        if driver is None:
            print(f"unknown experiment {name!r}; "
                  f"choose from: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
            return 2
        result = driver()
        print(result.render())
        if json_dir is not None:
            path = result.save(json_dir, name)
            print(f"[wrote {path}]")
        print()
    return 0


def run_fault_demo() -> int:
    """Crash a protected enclave and print its dossier."""
    from repro.core.faults import EnclaveFaultError
    from repro.core.features import CovirtConfig
    from repro.harness.env import CovirtEnvironment, Layout

    GiB = 1 << 30
    env = CovirtEnvironment()
    enclave = env.launch(
        Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}),
        CovirtConfig.full(),
        name="demo",
    )
    enclave.kernel.console.append("worker: entering exchange phase")
    bsp = enclave.assignment.core_ids[0]
    enclave.port.send_ipi(bsp, 0, 99)  # errant, dropped
    try:
        enclave.port.read(bsp, 50 * GiB, 8)
    except EnclaveFaultError:
        pass
    print(env.controller.dossiers[enclave.enclave_id].render())
    print(f"\nhost survived: {env.host.alive}; "
          f"resources reclaimed: {env.host.owner_summary()}")
    return 0


def run_recovery_demo() -> int:
    """Inject every terminating Section-V fault class into supervised
    enclaves under restart-with-backoff and print per-class MTTR."""
    from repro.core.commands import CommandType
    from repro.core.faults import EnclaveFaultError
    from repro.core.features import CovirtConfig
    from repro.harness.env import CovirtEnvironment, Layout
    from repro.hw.interrupts import ExceptionVector
    from repro.recovery import RecoveryMetrics, RecoveryPhase, RestartWithBackoff

    GiB = 1 << 30
    MiB = 1 << 20
    layout = Layout("2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB})

    def policy() -> RestartWithBackoff:
        return RestartWithBackoff(base_delay_cycles=100_000)

    def wild_read(env: CovirtEnvironment):
        """Memory-map misconfiguration: read far outside the enclave."""
        svc = env.launch_supervised(layout, CovirtConfig.full(), policy(), name="wild")
        bsp = svc.enclave.assignment.core_ids[0]
        try:
            svc.enclave.port.read(bsp, 50 * GiB, 8)
        except EnclaveFaultError:
            pass
        return svc

    def stale_segment(env: CovirtEnvironment):
        """The paper's crash anecdote: touch a buggily-reclaimed segment."""
        config = CovirtConfig.memory_only()
        owner = env.launch(layout, config, name="owner")
        svc = env.launch_supervised(layout, config, policy(), name="attacher")
        task = owner.kernel.spawn("exporter", mem_bytes=MiB)
        seg = env.mcp.xemem.make(
            owner.enclave_id, "shared", task.slices[0].start, MiB
        )
        env.mcp.xemem.attach(svc.enclave.enclave_id, seg.segid)
        core = svc.enclave.assignment.core_ids[0]
        svc.enclave.kernel.touch(core, task.slices[0].start, 8)  # warm: works
        env.mcp.xemem.force_remove_buggy(seg.segid)
        try:
            svc.enclave.kernel.touch(core, task.slices[0].start, 8, write=True)
        except EnclaveFaultError:
            pass
        return svc

    def double_fault(env: CovirtEnvironment):
        """Abort-class exception with exception interposition on."""
        svc = env.launch_supervised(layout, CovirtConfig.full(), policy(), name="df")
        bsp = svc.enclave.assignment.core_ids[0]
        try:
            svc.enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
        except EnclaveFaultError:
            pass
        return svc

    def triple_fault(env: CovirtEnvironment):
        """Abort escalation without exception interposition: the guest's
        unhandled abort becomes a triple fault, which VMX always exits on."""
        from repro.core.features import Feature

        svc = env.launch_supervised(
            layout, CovirtConfig(features=Feature.MEMORY), policy(), name="tf"
        )
        bsp = svc.enclave.assignment.core_ids[0]
        try:
            svc.enclave.port.raise_exception(bsp, ExceptionVector.DOUBLE_FAULT)
        except EnclaveFaultError:
            pass
        return svc

    def controller_terminate(env: CovirtEnvironment):
        """Administrative TERMINATE through the command queue."""
        svc = env.launch_supervised(layout, CovirtConfig.full(), policy(), name="ctl")
        ctx = env.controller.context_for(svc.enclave.enclave_id)
        bsp = svc.enclave.assignment.core_ids[0]
        env.controller.issue_command_to(ctx, bsp, CommandType.TERMINATE)
        return svc

    scenarios = [
        ("memory-map misconfiguration", wild_read),
        ("stale XEMEM segment", stale_segment),
        ("double fault", double_fault),
        ("triple fault", triple_fault),
        ("controller terminate", controller_terminate),
    ]
    combined = RecoveryMetrics()
    failures = 0
    for label, scenario in scenarios:
        env = CovirtEnvironment()
        svc = scenario(env)
        recovered = svc.phase is RecoveryPhase.RUNNING and svc.incarnation > 1
        print(
            f"{label:32s} fault: {svc.history[-1].describe() if svc.history else '-':45s} "
            f"→ {svc.phase.value}"
            + (f" (incarnation {svc.incarnation})" if recovered else "")
        )
        if not recovered:
            failures += 1
        for rec in env.recovery.metrics.records:
            combined.record(rec)
        combined.counters.checkpoints_taken += (
            env.recovery.metrics.counters.checkpoints_taken
        )
        combined.counters.checkpoint_cycles += (
            env.recovery.metrics.counters.checkpoint_cycles
        )
    print()
    print(combined.render())
    print(
        "\n(MSR and I/O-port abuse are deny-and-log under Covirt —"
        " no termination, so nothing to recover.)"
    )
    return 1 if failures else 0


def _prepare_postmortem_dir(path: str) -> str | None:
    """Make ``--postmortem-dir`` usable before the scenario runs: create
    it (parents included) if missing and prove it is writable with a
    probe file.  Returns a one-line error string on failure so callers
    never surface a traceback for a bad path."""
    import os
    from pathlib import Path

    target = Path(path)
    try:
        target.mkdir(parents=True, exist_ok=True)
        probe = target / ".write-probe"
        probe.write_bytes(b"")
        os.unlink(probe)
    except OSError as exc:
        return f"trace-export: cannot write post-mortems to {path!r}: {exc}"
    return None


def run_trace_export(args) -> int:
    """Run the canonical demo scenario and export its span stream as
    Chrome-trace JSON (loads in Perfetto / chrome://tracing)."""
    from repro.obs import validate_chrome_trace, write_chrome_trace
    from repro.obs.export import chrome_trace
    from repro.obs.scenario import run_canonical_scenario

    if args.postmortem_dir is not None:
        problem = _prepare_postmortem_dir(args.postmortem_dir)
        if problem is not None:
            print(problem, file=sys.stderr)
            return 2
    env = run_canonical_scenario(
        seed=args.seed, postmortem_dir=args.postmortem_dir
    )
    tracer = env.machine.obs.tracer
    if args.golden:
        for line in tracer.golden_lines():
            print(line)
        return 0
    doc = chrome_trace(tracer.spans)
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - would be a bug in the exporter
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    events = write_chrome_trace(tracer.spans, args.out)
    print(
        f"[wrote {args.out}: {events} events, {len(tracer.spans)} spans"
        f" ({tracer.dropped} dropped)]"
    )
    for path in env.machine.obs.flight.dumped_paths:
        print(f"[wrote post-mortem {path}]")
    return 0


def run_trace_analyze(args) -> int:
    """Analyze an exported trace: critical paths, exit attribution,
    rollups — or a structural diff between two traces."""
    from repro.obs.analyze import (
        diff_traces,
        load_trace,
        render_diff,
        render_report,
    )

    model = load_trace(args.trace)
    if args.diff is not None:
        other = load_trace(args.diff)
        diff = diff_traces(model, other, threshold=args.threshold)
        print(
            render_diff(diff, source_a=args.trace, source_b=args.diff),
            end="",
        )
        return 1 if (args.fail_on_diff and not diff.empty) else 0
    print(render_report(model, source=args.trace, top_k=args.top_k), end="")
    return 0


def bench_compare_main(argv: list[str] | None = None) -> int:
    """The ``bench-compare`` entry point (also used by
    ``benchmarks/sentinel.py``): compare two BENCH_*.json sets against
    the tolerance bands; exit 1 on regression."""
    import argparse as _argparse

    from repro.obs.sentinel import (
        ToleranceError,
        compare_sets,
        load_tolerances,
        render_markdown,
    )

    parser = _argparse.ArgumentParser(
        prog="bench-compare",
        description="Compare two BENCH_*.json sets against tolerance bands.",
    )
    parser.add_argument("baseline", help="directory with baseline BENCH_*.json")
    parser.add_argument("candidate", help="directory with candidate BENCH_*.json")
    parser.add_argument(
        "--tolerances",
        default="benchmarks/tolerances.json",
        help="tolerance-band config (default: benchmarks/tolerances.json)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the markdown report to FILE",
    )
    args = parser.parse_args(argv)
    try:
        tolerances = load_tolerances(args.tolerances)
    except (OSError, ValueError) as exc:
        print(f"bench-compare: bad tolerances: {exc}", file=sys.stderr)
        return 2
    report = compare_sets(args.baseline, args.candidate, tolerances)
    rendered = render_markdown(
        report, baseline_label=args.baseline, candidate_label=args.candidate
    )
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(rendered)
    print(rendered, end="")
    return 0 if report.ok else 1


def run_metrics_dump(args) -> int:
    """Run the canonical demo scenario and dump its metrics registry."""
    import json

    from repro.obs.scenario import run_canonical_scenario

    env = run_canonical_scenario(seed=args.seed)
    metrics = env.machine.obs.metrics
    if args.prom:
        print(metrics.render_prom(), end="")
    elif args.json:
        print(json.dumps(metrics.to_dict(), indent=1, sort_keys=True))
    else:
        print(metrics.render_text())
        print()
        print("exits by reason:")
        for reason, count in metrics.exit_counts_by_reason().items():
            print(f"  {reason:24s} {count}")
    return 0


def run_bench_validate(args) -> int:
    """Validate BENCH_*.json files against the covirt-bench schema."""
    import json
    from pathlib import Path

    from repro.obs import validate_bench

    paths = sorted(
        Path(p) for pattern in (args.paths or ["BENCH_*.json"])
        for p in (
            [pattern] if Path(pattern).is_file() else Path(".").glob(pattern)
        )
    )
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 2
    bad = 0
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable: {exc}")
            bad += 1
            continue
        problems = validate_bench(doc)
        if problems:
            bad += 1
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            exits = sum(doc["exits_by_reason"].values())
            print(f"{path}: ok ({doc['bench']}, {exits} exits)")
    return 1 if bad else 0


# Exit-code contract for the fuzz family (fuzz / replay / shrink /
# distill / sweep), pinned by tests/fuzz/test_cli_exitcodes.py:
#   0 — clean: no finding, no divergence;
#   1 — a *finding*: an oracle violation or unexpected exception was
#       (re)produced, or a corpus replay diverged;
#   2 — internal error: bad arguments, unreadable/incompatible corpus
#       entries, or a crash in the tool itself.
FUZZ_EXIT_HELP = (
    "exit status: 0 clean, 1 finding (oracle violation, unexpected "
    "exception, or replay divergence), 2 internal error"
)


def _fuzz_internal_error(tool: str, exc: Exception) -> int:
    import traceback

    traceback.print_exc()
    print(f"{tool}: internal error: {exc}", file=sys.stderr)
    return 2


def _run_fuzz_single(args) -> int:
    """One seeded run: print the transcript and verdict."""
    from repro.fuzz import FuzzEngine, SCHEDULES, save_run, shrink_run

    if args.schedule not in SCHEDULES:
        print(
            f"unknown schedule {args.schedule!r}; "
            f"choose from: {', '.join(sorted(SCHEDULES))}",
            file=sys.stderr,
        )
        return 2
    engine = FuzzEngine(seed=args.seed, schedule=args.schedule)
    run = engine.run(args.steps if args.steps is not None else 200)
    for step in run.steps:
        print(step.describe())
    print()
    print(run.describe())
    print(engine.coverage.describe())
    if args.save is not None:
        path = save_run(run, args.save)
        print(f"[wrote {path}]")
    if run.failure is not None and args.shrink_on_failure:
        result = shrink_run(run)
        print(result.describe())
        if args.save is not None:
            path = save_run(result.minimized, args.save)
            print(f"[wrote shrunk reproducer {path}]")
    return 1 if run.failure is not None else 0


def _run_fuzz_campaign(args) -> int:
    """Coverage-guided (or pure-random) parallel campaign."""
    from repro.fuzz import FuzzCampaign, save_campaign

    if not args.continuous and not args.budget:
        print(
            "fuzz: campaign mode needs --budget N (or --continuous "
            "--max-seconds S)",
            file=sys.stderr,
        )
        return 2
    schedules = None
    if args.schedules:
        schedules = tuple(
            s.strip() for s in args.schedules.split(",") if s.strip()
        )
    try:
        campaign = FuzzCampaign(
            args.budget or 0,
            workers=args.workers,
            steps=args.steps if args.steps is not None else 60,
            schedules=schedules,
            guided=not args.random,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(line, flush=True)
    if args.continuous:
        result = campaign.run_continuous(args.max_seconds, progress=progress)
    else:
        result = campaign.run(progress=progress)
    print(result.describe())
    print(result.distilled().describe())
    for run in result.findings:
        print(f"FINDING: {run.describe()}")
    if args.out is not None:
        summary = save_campaign(result, args.out, shrink=args.shrink_on_failure)
        print(
            f"[wrote campaign artifacts to {args.out}: "
            f"{len(summary['files']['corpus'])} corpus entries, "
            f"{len(summary['files']['findings'])} finding files]"
        )
    return 1 if result.findings else 0


def run_fuzz(args) -> int:
    """Fuzz entry point: a single transcripted run by default, a
    parallel coverage-guided campaign with ``--budget``/``--continuous``."""
    try:
        if args.budget is not None or args.continuous:
            return _run_fuzz_campaign(args)
        return _run_fuzz_single(args)
    except Exception as exc:
        return _fuzz_internal_error("fuzz", exc)


def run_replay(args) -> int:
    """Re-execute recorded corpus runs; fail on any divergence."""
    from pathlib import Path

    from repro.fuzz import load_corpus, replay_run
    from repro.fuzz.corpus import load_run

    target = Path(args.path)
    try:
        entries = (
            load_corpus(target)
            if target.is_dir()
            else [(target, load_run(target))]
        )
    except (OSError, ValueError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"no corpus entries under {target}", file=sys.stderr)
        return 2
    try:
        divergent = 0
        for path, run in entries:
            result = replay_run(run)
            status = "ok" if result.matches else "DIVERGED"
            print(f"{path.name:60s} {run.describe()}")
            print(f"{'':60s} replay: {status}")
            if not result.matches:
                divergent += 1
                for diff in result.diffs:
                    print(f"{'':62s} {diff}")
        print(
            f"\n{len(entries) - divergent}/{len(entries)} corpus entries "
            f"reproduced byte-for-byte"
        )
        return 1 if divergent else 0
    except Exception as exc:
        return _fuzz_internal_error("replay", exc)


def run_shrink(args) -> int:
    """Minimize a recorded failing run to its shortest reproducer."""
    from repro.fuzz import save_run, shrink_run
    from repro.fuzz.corpus import load_run

    try:
        run = load_run(args.path)
    except (OSError, ValueError) as exc:
        print(f"shrink: {exc}", file=sys.stderr)
        return 2
    if run.failure is None:
        print(f"{args.path} recorded a clean run; nothing to shrink")
        return 0
    try:
        result = shrink_run(run, max_executions=args.max_executions)
        print(result.describe())
        for step in result.minimized.steps:
            print(step.describe())
        if args.save is not None:
            path = save_run(result.minimized, args.save)
            print(f"[wrote {path}]")
        if result.minimized.failure is None:
            # The recorded failure no longer reproduces — the bug it
            # pinned is gone (or the entry is stale).  Clean exit.
            print("recorded failure no longer reproduces")
            return 0
        # The minimized run still reproduces a genuine finding.
        return 1
    except Exception as exc:
        return _fuzz_internal_error("shrink", exc)


def run_distill(args) -> int:
    """Reduce a corpus directory to a minimal-covering subset."""
    from repro.fuzz import distill_runs, load_corpus, save_run

    try:
        entries = load_corpus(args.path)
    except (OSError, ValueError) as exc:
        print(f"distill: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"no corpus entries under {args.path}", file=sys.stderr)
        return 2
    try:
        result = distill_runs([run for _, run in entries])
        print(result.describe())
        kept_fps = {run.fingerprint for run in result.kept}
        for path, run in entries:
            marker = "keep" if run.fingerprint in kept_fps else "drop"
            print(f"  {marker}  {path.name}  ({len(run.coverage)} edges)")
        if args.out is not None:
            for run in result.kept:
                save_run(run, args.out)
            print(f"[wrote {len(result.kept)} distilled entries to {args.out}]")
        if args.prune:
            pruned = 0
            for path, run in entries:
                if run.fingerprint not in kept_fps:
                    path.unlink()
                    pruned += 1
            print(f"[pruned {pruned} subsumed entries from {args.path}]")
        return 0
    except Exception as exc:
        return _fuzz_internal_error("distill", exc)


def _run_sweep_inner(args) -> int:
    """Scenario sweep: resolve the spec, execute the grid, emit stats
    artifacts.  Follows the fuzz-family exit contract: 0 clean, 1 when
    any cell run ends in an oracle violation or unexpected exception,
    2 on bad input or a crash in the harness itself."""
    import json
    from pathlib import Path

    from repro.sweep import (
        SweepExecutor,
        SweepSpec,
        full_spec,
        quick_spec,
        render_markdown,
        write_artifacts,
    )

    try:
        if args.spec is not None:
            spec = SweepSpec.from_dict(
                json.loads(Path(args.spec).read_text())
            )
        elif args.quick:
            spec = quick_spec(base_seed=args.seed)
        else:
            spec = full_spec(base_seed=args.seed)
        if args.seeds is not None:
            import dataclasses

            spec = dataclasses.replace(
                spec, seeds_per_cell=int(args.seeds)
            )
        if args.list_cells:
            for cell in spec.cells():
                print(cell.cell_id())
            print(spec.describe())
            return 0
        executor = SweepExecutor(spec, workers=args.workers)
    except (OSError, ValueError) as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(line, flush=True)
    result = executor.run(progress=progress)
    print(result.describe())
    print()
    print(render_markdown(result), end="")
    for cell_id, run in result.failures:
        print(
            f"FINDING: {cell_id} seed={run.seed}: "
            f"{run.failure['kind']} — {run.failure['detail']}"
        )
    if args.out is not None:
        quick = bool(args.quick) if args.spec is None else False
        paths = write_artifacts(result, args.out, quick=quick)
        print(
            f"[wrote {', '.join(p.name for p in paths.values())} "
            f"to {args.out}]"
        )
    return 1 if result.failures else 0


def run_sweep(args) -> int:
    try:
        return _run_sweep_inner(args)
    except Exception as exc:
        return _fuzz_internal_error("sweep", exc)


def run_serve_demo(args) -> int:
    """The docs/serving.md quickstart, executable: drive one session
    through its whole lifecycle against a covirt-serve daemon.  By
    default the demo self-hosts a daemon on a background thread; with
    ``--connect`` it exercises an external one (the CI smoke job)."""
    import json

    from repro.serve.client import ServeClient
    from repro.serve.daemon import ServeDaemon

    daemon = None
    endpoint = args.connect
    if endpoint is None:
        daemon = ServeDaemon(tcp=("127.0.0.1", 0))
        daemon.start()
        endpoint = daemon.endpoint

    def show(label: str, result) -> None:
        print(f"--> {label}")
        print(f"    {json.dumps(result, sort_keys=True)}")

    try:
        with ServeClient(endpoint, tenant="demo") as client:
            show("ping", client.ping())
            launched = client.launch(scenario=args.scenario, seed=args.seed)
            sid = launched["session_id"]
            show("session.launch", launched)
            show("session.step", client.step(sid, steps=5))
            show("session.run", client.run(sid, cycles=200_000_000))
            inspected = client.inspect(sid)
            show("session.inspect", {
                k: inspected[k]
                for k in ("session_id", "state", "clock", "steps_applied",
                          "enclaves", "postmortems")
            })
            show("session.inject", client.inject(
                sid, "touch_outside", {"slot": 0, "page": 7, "write": False}
            ))
            trace = client.trace(sid, cursor=0, limit=5)
            show("session.trace", {
                "events": len(trace["events"]),
                "cursor": trace["cursor"],
                "dropped": trace["dropped"],
                "recorded": trace["recorded"],
            })
            show("session.kill", client.kill(sid))
            show("stats", client.stats())
            if args.shutdown:
                show("shutdown", client.shutdown())
    finally:
        if daemon is not None:
            daemon.stop()
    print("serve-demo: ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # Hand everything after "serve" to the daemon's own parser.
        # argparse REMAINDER cannot capture a leading option token
        # (e.g. ``repro serve --help``), so route before parsing.
        from repro.serve.daemon import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Covirt reproduction: regenerate the paper's evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}, or 'all'",
    )
    run.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write machine-readable results to DIR/<experiment>.json",
    )
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("fault-demo", help="crash an enclave, print its dossier")
    sub.add_parser(
        "recovery-demo",
        help="inject the terminating fault gallery under supervision, "
        "print per-fault-class MTTR",
    )
    sub.add_parser(
        "verify", help="check every paper shape claim against its band"
    )
    trace = sub.add_parser(
        "trace-export",
        help="run the canonical demo scenario, export spans as "
        "Chrome-trace/Perfetto JSON (see docs/observability.md)",
    )
    trace.add_argument("--seed", type=int, default=0xC0517)
    trace.add_argument(
        "--out", metavar="FILE", default="trace.json", help="output path"
    )
    trace.add_argument(
        "--golden",
        action="store_true",
        help="print the timestamp-free golden transcript instead of "
        "writing a trace file",
    )
    trace.add_argument(
        "--postmortem-dir",
        metavar="DIR",
        default=None,
        help="write the run's post-mortem bundles (the containment fault"
        " produces one) into DIR as sorted-key JSON",
    )
    tana = sub.add_parser(
        "trace-analyze",
        help="critical paths, exit-latency attribution, and rollups for "
        "an exported trace; --diff compares two traces structurally",
    )
    tana.add_argument(
        "trace", help="Chrome-trace JSON (trace-export) or golden transcript"
    )
    tana.add_argument(
        "--diff", metavar="TRACE", default=None,
        help="second trace: report added/removed/retimed span paths",
    )
    tana.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative retiming threshold for --diff (default 0.05)",
    )
    tana.add_argument(
        "--top-k", type=int, default=10,
        help="rows in the exit-attribution table (default 10)",
    )
    tana.add_argument(
        "--fail-on-diff", action="store_true",
        help="exit 1 when --diff finds any structural difference",
    )
    bcmp = sub.add_parser(
        "bench-compare",
        help="compare two BENCH_*.json sets against tolerance bands "
        "(benchmarks/tolerances.json); exit 1 on regression",
        add_help=False,
    )
    bcmp.add_argument("rest", nargs=argparse.REMAINDER)
    mdump = sub.add_parser(
        "metrics-dump",
        help="run the canonical demo scenario, dump the metrics registry",
    )
    mdump.add_argument("--seed", type=int, default=0xC0517)
    mdump.add_argument(
        "--json", action="store_true", help="JSON instead of text"
    )
    mdump.add_argument(
        "--prom", action="store_true",
        help="Prometheus text exposition (v0.0.4) instead of text",
    )
    bval = sub.add_parser(
        "bench-validate",
        help="validate BENCH_*.json files against the covirt-bench schema",
    )
    bval.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or globs (default: BENCH_*.json in the CWD)",
    )
    fuzz = sub.add_parser(
        "fuzz",
        help="seeded deterministic fault-injection fuzzing; --budget/"
        "--continuous runs a coverage-guided parallel campaign "
        "(see docs/fuzzing.md)",
        epilog=FUZZ_EXIT_HELP,
    )
    fuzz.add_argument("--seed", type=int, default=0xC0517)
    fuzz.add_argument(
        "--steps", type=int, default=None,
        help="actions per run (default: 200 single-run, 60 in a campaign)",
    )
    fuzz.add_argument(
        "--schedule",
        default="baseline",
        help="single-run action-mix weight table: baseline, hostile, "
        "churn, recovery",
    )
    fuzz.add_argument(
        "--save", metavar="DIR", default=None,
        help="single-run mode: serialize the run to DIR",
    )
    fuzz.add_argument(
        "--shrink-on-failure",
        action="store_true",
        help="minimize failing sequences (ddmin) before exiting",
    )
    fuzz.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="campaign mode: execute exactly N runs (deterministic in "
        "--seed regardless of --workers)",
    )
    fuzz.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="campaign mode: multiprocessing workers (default 1)",
    )
    fuzz.add_argument(
        "--schedules", default=None, metavar="A,B,...",
        help="campaign mode: comma-separated schedule rotation "
        "(default: all four)",
    )
    fuzz.add_argument(
        "--random", action="store_true",
        help="campaign mode: disable coverage guidance (pure-random "
        "baseline; fresh seeds only, no mutation)",
    )
    fuzz.add_argument(
        "--continuous", action="store_true",
        help="campaign mode: keep fuzzing until --max-seconds elapses "
        "(the nightly bug-mining farm)",
    )
    fuzz.add_argument(
        "--max-seconds", type=float, default=300.0, metavar="S",
        help="wall-clock bound for --continuous (default 300)",
    )
    fuzz.add_argument(
        "--out", metavar="DIR", default=None,
        help="campaign mode: write distilled corpus, findings, "
        "coverage.json, summary.json under DIR",
    )
    fuzz.add_argument(
        "--quiet", action="store_true",
        help="campaign mode: suppress per-batch progress lines",
    )
    distill = sub.add_parser(
        "distill",
        help="reduce a corpus directory to a minimal-covering subset "
        "(greedy set cover over coverage edges; failures always kept)",
        epilog=FUZZ_EXIT_HELP,
    )
    distill.add_argument("path", help="corpus directory")
    distill.add_argument(
        "--out", metavar="DIR", default=None,
        help="write the distilled entries to DIR",
    )
    distill.add_argument(
        "--prune", action="store_true",
        help="delete subsumed entries from the corpus directory in place",
    )
    sweep = sub.add_parser(
        "sweep",
        help="scenario sweep + adaptation harness: run a cell grid of "
        "(schedule x enclaves x NUMA x workloads x adaptation x policy) "
        "seeds and emit per-cell stats artifacts (see docs/scenarios.md)",
        epilog=FUZZ_EXIT_HELP,
    )
    sweep.add_argument("--seed", type=int, default=0xC0517)
    sweep.add_argument(
        "--quick", action="store_true",
        help="the small CI grid (6 cells x 2 seeds) instead of the "
        "full one",
    )
    sweep.add_argument(
        "--spec", metavar="FILE", default=None,
        help="load a covirt-sweep-spec JSON grid instead of the "
        "built-in quick/full presets",
    )
    sweep.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="override the spec's seeds_per_cell",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="multiprocessing workers; artifacts are byte-identical "
        "for any value (default 1)",
    )
    sweep.add_argument(
        "--out", metavar="DIR", default=None,
        help="write sweep.json, tables.md, boxplot.json, and "
        "BENCH_sweep.json under DIR",
    )
    sweep.add_argument(
        "--list-cells", action="store_true",
        help="print the grid's cell ids and exit without running",
    )
    sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress per-batch progress lines",
    )
    # "serve" is routed to the daemon's own parser before parse_args
    # (see the top of this function); registered here for help listing.
    sub.add_parser(
        "serve",
        help="run the covirt-serve multi-tenant session daemon "
        "(see docs/serving.md)",
        add_help=False,
    )
    sdemo = sub.add_parser(
        "serve-demo",
        help="drive one session through launch/step/run/inspect/inject/"
        "trace/kill against a covirt-serve daemon",
    )
    sdemo.add_argument("--seed", type=int, default=0xC0517)
    sdemo.add_argument(
        "--scenario", default="baseline",
        help="fuzz schedule to serve: baseline, hostile, churn, recovery",
    )
    sdemo.add_argument(
        "--connect", metavar="SPEC", default=None,
        help="use an external daemon at unix:PATH or tcp:HOST:PORT "
        "instead of self-hosting one",
    )
    sdemo.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to shut down at the end (CI smoke)",
    )
    top = sub.add_parser(
        "top",
        help="live dashboard over a covirt-serve daemon's telemetry "
        "plane (interval-polling, curses-free)",
    )
    top.add_argument(
        "--connect", metavar="SPEC", required=True,
        help="daemon endpoint: unix:PATH or tcp:HOST:PORT",
    )
    top.add_argument(
        "--tenant", default="_top",
        help="tenant name for the dashboard connection (default _top)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="seconds between snapshot polls (default 2.0)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="redraw N times then exit (default: until Ctrl-C)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single snapshot and exit",
    )
    top.add_argument(
        "--plain", action="store_true",
        help="append frames instead of clearing the screen (CI logs)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="print the raw telemetry.snapshot document and exit",
    )
    top.add_argument(
        "--probe", type=float, default=None, metavar="SECONDS",
        help="CI smoke: subscribe, stir traffic, schema-validate every "
        "received frame for SECONDS; exit 1 on any invalid frame",
    )
    top.add_argument(
        "--min-frames", type=int, default=1, metavar="N",
        help="--probe fails unless at least N frames arrive (default 1)",
    )
    replay = sub.add_parser(
        "replay",
        help="re-execute a recorded fuzz run (file or corpus dir)",
        epilog=FUZZ_EXIT_HELP,
    )
    replay.add_argument("path", help="corpus .json file or directory")
    shrink = sub.add_parser(
        "shrink",
        help="minimize a recorded failing run (ddmin)",
        epilog=FUZZ_EXIT_HELP,
    )
    shrink.add_argument("path", help="corpus .json file")
    shrink.add_argument("--max-executions", type=int, default=200)
    shrink.add_argument(
        "--save", metavar="DIR", default=None, help="write the minimized run to DIR"
    )
    args = parser.parse_args(argv)

    if args.command == "verify":
        from repro.harness.verify import run_verification

        report, ok = run_verification()
        print(report)
        print("\nALL CLAIMS REPRODUCED" if ok else "\nSOME CLAIMS OUT OF BAND")
        return 0 if ok else 1
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"  {name:22s} {EXPERIMENTS[name].__doc__.splitlines()[0]}")
        return 0
    if args.command == "trace-export":
        return run_trace_export(args)
    if args.command == "trace-analyze":
        return run_trace_analyze(args)
    if args.command == "bench-compare":
        return bench_compare_main(args.rest)
    if args.command == "metrics-dump":
        return run_metrics_dump(args)
    if args.command == "bench-validate":
        return run_bench_validate(args)
    if args.command == "fault-demo":
        return run_fault_demo()
    if args.command == "recovery-demo":
        return run_recovery_demo()
    if args.command == "serve-demo":
        return run_serve_demo(args)
    if args.command == "top":
        from repro.serve.top import run_top

        return run_top(args)
    if args.command == "fuzz":
        return run_fuzz(args)
    if args.command == "replay":
        return run_replay(args)
    if args.command == "shrink":
        return run_shrink(args)
    if args.command == "distill":
        return run_distill(args)
    if args.command == "sweep":
        return run_sweep(args)
    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    return run_experiments(names, json_dir=args.json)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
