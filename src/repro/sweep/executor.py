"""The sweep executor: the grid fanned out with a deterministic merge.

Built on the same :func:`repro.fuzz.pool.run_batched` driver the fuzz
campaign uses, with the same guarantee made the same way: the full task
list (cell x seed, in spec order) is planned up front, batches have a
fixed size independent of ``--workers``, ``Pool.map`` returns results
in task order, and folding happens in that order — so a
:class:`SweepResult` (and every artifact derived from it) is
byte-identical whether the sweep ran on 1 worker or 16.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.fuzz.pool import BATCH_SIZE, run_batched
from repro.sweep.runner import CellRun, execute_task
from repro.sweep.spec import SweepSpec


@dataclass
class SweepResult:
    """Everything a sweep produced, folded in task order."""

    spec: SweepSpec
    workers: int
    #: cell id -> per-seed runs (seed-index order), insertion in the
    #: spec's deterministic cell order.
    runs: dict[str, list[CellRun]]
    wall_seconds: float

    @property
    def failures(self) -> list[tuple[str, CellRun]]:
        """Every (cell id, run) that ended in an oracle violation or
        unexpected exception — the CLI's exit-1 surface."""
        return [
            (cell_id, run)
            for cell_id, cell_runs in self.runs.items()
            for run in cell_runs
            if run.failure is not None
        ]

    @property
    def total_runs(self) -> int:
        return sum(len(r) for r in self.runs.values())

    def describe(self) -> str:
        return (
            f"sweep: {self.total_runs} runs over {len(self.runs)} cells, "
            f"{len(self.failures)} failures "
            f"({self.wall_seconds:.1f}s wall, {self.workers} workers)"
        )


class SweepExecutor:
    """Plan the grid, execute it batched, fold deterministically."""

    def __init__(
        self,
        spec: SweepSpec,
        *,
        workers: int = 1,
        batch_size: int = BATCH_SIZE,
    ) -> None:
        problems = spec.validate()
        if problems:
            raise ValueError("; ".join(problems))
        self.spec = spec
        self.workers = max(1, int(workers))
        self.batch_size = max(1, int(batch_size))
        # The complete task list, planned before anything executes: the
        # plan is a pure function of the spec, never of worker timing.
        self.tasks: list[dict[str, Any]] = []
        for cell in spec.cells():
            for k in range(spec.seeds_per_cell):
                self.tasks.append(
                    {
                        "index": len(self.tasks),
                        "cell": cell.to_dict(),
                        "seed": spec.seed_for(cell, k),
                    }
                )

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> SweepResult:
        t0 = time.perf_counter()
        runs: dict[str, list[CellRun]] = {
            cell.cell_id(): [] for cell in self.spec.cells()
        }
        cursor = 0

        def plan(n: int) -> list[dict[str, Any]]:
            nonlocal cursor
            batch = self.tasks[cursor: cursor + n]
            cursor += len(batch)
            return batch

        def fold(result: dict[str, Any]) -> None:
            runs[result["cell_id"]].append(
                CellRun.from_dict(result["run"])
            )

        def on_batch(stats) -> None:
            if progress is not None:
                failures = sum(
                    1
                    for cell_runs in runs.values()
                    for r in cell_runs
                    if r.failure is not None
                )
                progress(
                    f"[batch {stats.batches}] "
                    f"{stats.executed}/{len(self.tasks)} runs, "
                    f"{failures} failures"
                )

        run_batched(
            execute_task,
            plan,
            fold,
            lambda executed: executed < len(self.tasks),
            workers=self.workers,
            batch_size=self.batch_size,
            on_batch=on_batch,
        )
        return SweepResult(
            spec=self.spec,
            workers=self.workers,
            runs=runs,
            wall_seconds=time.perf_counter() - t0,
        )
