"""Execute one (cell, seed) scenario run.

``run_cell`` is the sweep's unit of work and the conformance surface:
it boots a fresh seeded :class:`~repro.fuzz.engine.FuzzEngine`, applies
the cell's prologue (LAUNCH injections for ``enclaves`` slots — no RNG
consumed, so the seeded schedule stream is untouched), then drives the
scheduled action stream in phase chunks with the cell's adaptation
applied at the interior boundaries, runs the workload mix on a live
enclave, and audits the full oracle pack after every non-engine
mutation.  A pure cell (``enclaves == 0``) degenerates to exactly
``FuzzEngine(seed, schedule).run(steps)``, which is what the
cross-subsystem determinism tests compare against the serve daemon and
the CLI.

``execute_task`` is the top-level dict-in/dict-out payload runner that
:func:`repro.fuzz.pool.run_batched` fans out over a multiprocessing
pool; like the fuzz campaign's, it is the inline path too, so 1-worker
and N-worker sweeps run the exact same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.fuzz.actions import Action, ActionKind
from repro.fuzz.engine import FuzzEngine
from repro.fuzz.oracles import OracleViolation
from repro.fuzz.rng import named_stream
from repro.harness.env import CovirtEnvironment
from repro.sweep.adapt import ADAPT_PHASES, ADAPTATIONS
from repro.sweep.spec import NUMA_SHAPES, POLICIES, ScenarioCell
from repro.workloads.registry import workload_by_name

#: The config index every sweep launch uses: CovirtConfig.full() — the
#: protection surface the oracles assert over must always be armed.
FULL_CONFIG_INDEX = 2


@dataclass
class CellRun:
    """Everything one (cell, seed) run observed, JSON-friendly."""

    cell_id: str
    seed: int
    fingerprint: str
    final_clock: int
    steps_applied: int
    #: Step outcomes bucketed by prefix (ok / fault / refused / skip).
    outcome_counts: dict[str, int]
    faults: int
    adapt_events: list[str]
    #: Workload name -> figure of merit, for cells with a mix.
    workload_foms: dict[str, float]
    exits_by_reason: dict[str, int]
    failure: dict | None = None
    #: Grant/segment counts after the run settled (adaptation residue).
    active_grants: int = 0
    postmortems: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell_id": self.cell_id,
            "seed": int(self.seed),
            "fingerprint": self.fingerprint,
            "final_clock": int(self.final_clock),
            "steps_applied": int(self.steps_applied),
            "outcome_counts": dict(sorted(self.outcome_counts.items())),
            "faults": int(self.faults),
            "adapt_events": list(self.adapt_events),
            "workload_foms": dict(sorted(self.workload_foms.items())),
            "exits_by_reason": dict(self.exits_by_reason),
            "failure": self.failure,
            "active_grants": int(self.active_grants),
            "postmortems": int(self.postmortems),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellRun":
        return cls(
            cell_id=str(data["cell_id"]),
            seed=int(data["seed"]),
            fingerprint=str(data["fingerprint"]),
            final_clock=int(data["final_clock"]),
            steps_applied=int(data["steps_applied"]),
            outcome_counts=dict(data["outcome_counts"]),
            faults=int(data["faults"]),
            adapt_events=list(data["adapt_events"]),
            workload_foms=dict(data["workload_foms"]),
            exits_by_reason=dict(data["exits_by_reason"]),
            failure=data.get("failure"),
            active_grants=int(data.get("active_grants", 0)),
            postmortems=int(data.get("postmortems", 0)),
        )


def _audit(engine: FuzzEngine) -> None:
    """Check the full oracle pack after a non-engine mutation (the
    engine audits its own steps; direct registry work between steps
    must be audited explicitly)."""
    try:
        engine.oracles.check_all()
    except OracleViolation as violation:
        if engine.failure is None:
            engine.failure = {
                "step": len(engine.steps),
                "kind": "oracle",
                "detail": str(violation),
            }


def _chunks(steps: int, phases: int) -> list[int]:
    """Split ``steps`` into ``phases`` near-equal chunks (first chunks
    absorb the remainder; all chunks >= 0, sum == steps)."""
    base, rem = divmod(steps, phases)
    return [base + (1 if i < rem else 0) for i in range(phases)]


def run_cell(
    cell: ScenarioCell,
    seed: int,
    env: CovirtEnvironment | None = None,
) -> CellRun:
    """One scenario run: pure in ``(cell, seed)``."""
    engine = FuzzEngine(seed=seed, schedule=cell.schedule, env=env)
    adaptation = ADAPTATIONS[cell.adaptation]()
    adapt_events: list[str] = []

    # Prologue: launch the cell's enclaves via inject() — no RNG drawn,
    # so the scheduled stream after the prologue matches a pure run's.
    for slot in range(min(cell.enclaves, len(engine.slots))):
        if engine.failure is not None:
            break
        record = engine.inject(
            Action(
                ActionKind.LAUNCH,
                {
                    "slot": slot,
                    "layout": NUMA_SHAPES[cell.numa],
                    "config": FULL_CONFIG_INDEX,
                    "policy": POLICIES[cell.policy],
                },
            )
        )
        adapt_events.append(f"prologue:{record.outcome}")

    # Scheduled stream in phase chunks; adaptation at interior bounds.
    phases = ADAPT_PHASES if cell.adaptation != "none" else 1
    plan = _chunks(cell.steps, phases)
    for phase, chunk in enumerate(plan):
        if engine.failure is not None:
            break
        if chunk:
            engine.run(chunk)
        if engine.failure is not None or phase == len(plan) - 1:
            break
        rng = named_stream(
            f"sweep/adapt/{cell.cell_id()}/{phase}", seed
        )
        adapt_events.extend(adaptation.apply(engine, rng, phase))
        _audit(engine)

    # Workload mix: run each on the first live slot, recording its FOM.
    workload_foms: dict[str, float] = {}
    for name in cell.workloads:
        if engine.failure is not None:
            break
        live = engine._live_slots()
        if not live:
            adapt_events.append(f"workload:{name}:skip:no-live-slot")
            continue
        svc = engine.slots[live[0]]
        result = engine.env.engine.run(workload_by_name(name), svc.enclave)
        workload_foms[name] = round(result.fom, 4)
        _audit(engine)

    run = engine.finish()
    outcome_counts: dict[str, int] = {}
    for step in run.steps:
        prefix = step.outcome.split(":", 1)[0]
        outcome_counts[prefix] = outcome_counts.get(prefix, 0) + 1
    registry = engine.env.machine.obs.metrics
    return CellRun(
        cell_id=cell.cell_id(),
        seed=int(seed),
        fingerprint=run.fingerprint,
        final_clock=run.final_clock,
        steps_applied=len(run.steps),
        outcome_counts=outcome_counts,
        faults=outcome_counts.get("fault", 0),
        adapt_events=adapt_events,
        workload_foms=workload_foms,
        exits_by_reason=registry.exit_counts_by_reason(),
        failure=run.failure,
        active_grants=len(engine.env.mcp.vectors.active_grants()),
        postmortems=len(engine.env.machine.obs.flight.postmortems),
    )


def execute_task(payload: dict[str, Any]) -> dict[str, Any]:
    """One planned sweep task in a fresh engine — top-level and
    dict-in/dict-out so :func:`repro.fuzz.pool.run_batched` can hand it
    to a multiprocessing pool; also the inline 1-worker path."""
    cell = ScenarioCell.from_dict(payload["cell"])
    run = run_cell(cell, int(payload["seed"]))
    return {
        "index": int(payload["index"]),
        "cell_id": cell.cell_id(),
        "run": run.to_dict(),
    }
