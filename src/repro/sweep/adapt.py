"""Adaptation scenarios: reconfigure the machine *while it runs*.

The paper's core claim is that Covirt's asynchronous update protocol
lets resources be reassigned and protection state rewritten without
stopping co-kernel workloads.  Each :class:`Adaptation` here is one
such mid-run reconfiguration pattern, applied at the phase boundaries
of a sweep cell (the cell's step budget is cut into
:data:`ADAPT_PHASES` chunks and the adaptation fires between chunks):

* ``reassign`` — mid-run resource reassignment: hot-plug memory into a
  live enclave, hot-remove another region, and race a revoke against a
  guest touch (the ReHype-style recovery-under-load shape).
* ``rewrite`` — whitelist/EPT rewrites under load: allocate and revoke
  IPI vector grants on live cores (the whitelists rewire through the
  registry's on_grant/on_revoke hooks) and churn XEMEM exports/attaches
  (EPT rewrites) while the schedule keeps running.
* ``ramp`` — a worsening fault-rate ramp: phase ``k`` injects ``k+1``
  wild accesses / abort-class exceptions, challenging the recovery
  policy with an accelerating failure arrival rate.

Every adaptation decision draws from its own named RNG stream
(``sweep/adapt/<cell>/<phase>``) and every injected action goes through
:meth:`FuzzEngine.inject`, which consumes **no engine RNG** — so an
adaptation never perturbs the seeded schedule stream around it, and a
cell's scheduled actions are identical with or without adaptation
enabled.  After each application the runner audits the full oracle
pack, so "the rewrite broke an invariant" is a recorded failure, not a
silent corruption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fuzz.actions import Action, ActionKind
from repro.fuzz.rng import FuzzRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.fuzz.engine import FuzzEngine

#: Chunks a cell's step budget is divided into when an adaptation is
#: active; adaptations fire at the interior boundaries (phases 0..2).
ADAPT_PHASES = 4


class Adaptation:
    """Base: the ``none`` adaptation (also the registry's null object)."""

    name = "none"

    def apply(
        self, engine: "FuzzEngine", rng: FuzzRng, phase: int
    ) -> list[str]:
        """Reconfigure the live machine; return event strings for the
        cell transcript.  Called only between schedule chunks."""
        return []

    def _live(self, engine: "FuzzEngine") -> list[int]:
        return engine._live_slots()

    def _inject(
        self, engine: "FuzzEngine", kind: ActionKind, params: dict
    ) -> str:
        record = engine.inject(Action(kind, params))
        return f"{kind.value}:{record.outcome}"


class Reassign(Adaptation):
    """Mid-run enclave reassignment: grow, shrink, and race a revoke."""

    name = "reassign"

    def apply(self, engine, rng, phase):
        live = self._live(engine)
        if not live:
            return ["reassign:skip:no-live-slot"]
        slot = live[rng.randrange(len(live))]
        zones = engine.env.machine.topology.num_zones
        events = [
            self._inject(
                engine,
                ActionKind.HOTPLUG_ADD,
                {
                    "slot": slot,
                    "zone": rng.randrange(zones),
                    "pages": rng.randrange(1, 17),
                },
            ),
            self._inject(
                engine,
                ActionKind.HOTPLUG_REMOVE,
                {"slot": slot, "pick": rng.randrange(8)},
            ),
        ]
        if engine.failure is None:
            events.append(
                self._inject(
                    engine,
                    ActionKind.REVOKE_THEN_TOUCH,
                    {"slot": slot, "pick": rng.randrange(8)},
                )
            )
        return events


class Rewrite(Adaptation):
    """Whitelist/EPT rewrites under load.

    Vector grants are allocated (and earlier adaptation grants revoked)
    directly through the MCP registry — the exact path a management
    plane would drive — while XEMEM export/attach churn rewrites EPT
    mappings through injected actions.  The revoke is guarded with
    ``grant_for``: recovery teardown may have already reclaimed a dead
    incarnation's grants, and re-revoking those would model a host bug.
    """

    name = "rewrite"

    def __init__(self) -> None:
        self._grants: list = []

    def apply(self, engine, rng, phase):
        live = self._live(engine)
        if not live:
            return ["rewrite:skip:no-live-slot"]
        slot = live[rng.randrange(len(live))]
        svc = engine.slots[slot]
        eid = svc.enclave.enclave_id
        core = svc.enclave.assignment.core_ids[0]
        vectors = engine.env.mcp.vectors
        events = []
        while self._grants:
            old = self._grants.pop(0)
            if vectors.grant_for(old.dest_core, old.vector) is old:
                vectors.revoke(old)
                events.append(
                    f"revoke:vec{old.vector}@core{old.dest_core}"
                )
                break
        grant = vectors.allocate(
            dest_core=core,
            dest_enclave_id=eid,
            allowed_senders={eid},
            purpose=f"sweep-rewrite-p{phase}",
        )
        self._grants.append(grant)
        events.append(f"grant:vec{grant.vector}@core{core}")
        events.append(
            self._inject(
                engine,
                ActionKind.XEMEM_MAKE,
                {
                    "slot": slot,
                    "name": f"adapt-p{phase}-s{slot}",
                    "pages": rng.randrange(1, 5),
                    "off": rng.randrange(32),
                },
            )
        )
        others = [i for i in live if i != slot]
        if others and engine.failure is None:
            events.append(
                self._inject(
                    engine,
                    ActionKind.XEMEM_ATTACH,
                    {
                        "slot": others[rng.randrange(len(others))],
                        "owner": slot,
                        "pick": rng.randrange(8),
                    },
                )
            )
        return events


class Ramp(Adaptation):
    """Worsening fault rate: phase ``k`` injects ``k + 1`` faults."""

    name = "ramp"

    def apply(self, engine, rng, phase):
        events = []
        for i in range(phase + 1):
            live = self._live(engine)
            if not live or engine.failure is not None:
                events.append(f"ramp:skip@{i}")
                break
            slot = live[rng.randrange(len(live))]
            if i % 2 == 0:
                events.append(
                    self._inject(
                        engine,
                        ActionKind.TOUCH_OUTSIDE,
                        {
                            "slot": slot,
                            "page": rng.randrange(4096),
                            "write": rng.random() < 0.5,
                        },
                    )
                )
            else:
                events.append(
                    self._inject(
                        engine,
                        ActionKind.RAISE_ABORT,
                        {"slot": slot, "core": rng.randrange(8)},
                    )
                )
        return events


#: Adaptation name -> factory.  Factories, not instances: ``rewrite``
#: carries per-run grant state, so every cell run gets a fresh one.
ADAPTATIONS: dict[str, type[Adaptation]] = {
    "none": Adaptation,
    "reassign": Reassign,
    "rewrite": Rewrite,
    "ramp": Ramp,
}
