"""repro.sweep — the scenario sweep + adaptation harness.

A schema-versioned grid DSL (:class:`~repro.sweep.spec.SweepSpec`)
sweeps fault schedules, enclave counts, NUMA shapes, workload mixes,
recovery policies, and mid-run *adaptations* (enclave reassignment,
whitelist/EPT rewrites under load, worsening fault ramps); the
executor runs N derived seeds per cell through the fuzz engine + oracle
pack + obs layer with the fuzz pool's deterministic-merge guarantee
(byte-identical artifacts for any worker count); and the artifact
layer emits per-cell medians/p95s as ``sweep.json`` / ``tables.md`` /
``boxplot.json`` / ``BENCH_sweep.json``.  See docs/scenarios.md.
"""

from repro.sweep.adapt import ADAPT_PHASES, ADAPTATIONS, Adaptation
from repro.sweep.artifact import (
    BENCH_TITLE,
    bench_doc,
    representative_env,
    sweep_doc,
    write_artifacts,
)
from repro.sweep.executor import SweepExecutor, SweepResult
from repro.sweep.runner import CellRun, execute_task, run_cell
from repro.sweep.spec import (
    NUMA_SHAPES,
    POLICIES,
    SPEC_SCHEMA_NAME,
    SPEC_SCHEMA_VERSION,
    WORKLOADS,
    ScenarioCell,
    SweepSpec,
    full_spec,
    quick_spec,
)
from repro.sweep.stats import (
    aggregate,
    boxplot_doc,
    cell_row,
    nearest_rank,
    render_markdown,
)

__all__ = [
    "ADAPTATIONS",
    "ADAPT_PHASES",
    "Adaptation",
    "BENCH_TITLE",
    "CellRun",
    "NUMA_SHAPES",
    "POLICIES",
    "SPEC_SCHEMA_NAME",
    "SPEC_SCHEMA_VERSION",
    "ScenarioCell",
    "SweepExecutor",
    "SweepResult",
    "SweepSpec",
    "WORKLOADS",
    "aggregate",
    "bench_doc",
    "boxplot_doc",
    "cell_row",
    "execute_task",
    "full_spec",
    "nearest_rank",
    "quick_spec",
    "render_markdown",
    "representative_env",
    "run_cell",
    "sweep_doc",
    "write_artifacts",
]
