"""Schema-versioned sweep artifacts.

``write_artifacts`` emits four files, all derived purely from the
folded :class:`~repro.sweep.executor.SweepResult` (plus one
representative inline re-run for the BENCH doc's machine-level
sections):

* ``sweep.json`` — the full covirt-sweep document (spec + per-cell
  stats + per-run records), validated by
  :func:`repro.obs.schema.validate_sweep`;
* ``tables.md`` — the markdown summary table;
* ``boxplot.json`` — per-seed raw points grouped by cell;
* ``BENCH_sweep.json`` — a covirt-bench artifact (per-cell stat rows
  as results) that ``repro bench-validate`` accepts and
  ``bench-compare`` bands against the committed baseline.

Nothing here embeds the worker count or wall-clock time, so the files
are byte-identical for any ``--workers`` value — CI's sweep-smoke job
diffs a 1-worker and a 2-worker run to prove it.  The BENCH doc's
exit counts and metrics come from one representative (first cell,
first seed) re-run on a fresh environment in the calling process —
again independent of how the sweep itself was parallelised.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.features import CovirtConfig
from repro.harness.env import CovirtEnvironment, Layout
from repro.obs.scenario import protection_probe
from repro.obs.schema import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    SWEEP_SCHEMA_NAME,
    SWEEP_SCHEMA_VERSION,
)
from repro.sweep.runner import run_cell
from repro.sweep.stats import aggregate, boxplot_doc, render_markdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.executor import SweepResult

MiB = 1 << 20

#: The title both the CLI's BENCH doc and benchmarks/runner.py use.
BENCH_TITLE = "Scenario sweep: per-cell medians across the grid"

#: Same idea as the bench runner's probe enclave: one fully protected
#: enclave poked across the whole protection surface so the BENCH
#: artifact's ``exits_by_reason`` always covers every reason.
_PROBE_LAYOUT = Layout("sweep-probe-1c/1n", {0: 1}, {0: 256 * MiB})


def sweep_doc(result: "SweepResult", *, quick: bool) -> dict[str, Any]:
    """The covirt-sweep stats document (``sweep.json``)."""
    cells = []
    rows = aggregate(result)
    for cell, row in zip(result.spec.cells(), rows):
        cells.append(
            {
                "cell": cell.to_dict(),
                "cell_id": cell.cell_id(),
                "stats": row,
                "runs": [
                    r.to_dict() for r in result.runs[cell.cell_id()]
                ],
            }
        )
    return {
        "schema": SWEEP_SCHEMA_NAME,
        "schema_version": SWEEP_SCHEMA_VERSION,
        "quick": bool(quick),
        "base_seed": result.spec.base_seed,
        "spec": result.spec.to_dict(),
        "total_runs": result.total_runs,
        "failures": len(result.failures),
        "cells": cells,
    }


def representative_env(result: "SweepResult") -> CovirtEnvironment:
    """A fresh environment carrying one representative cell run plus
    the protection probe — the worker-count-independent source for the
    BENCH doc's exit counts, metrics, and sim_cycles."""
    env = CovirtEnvironment()
    cells = result.spec.cells()
    run_cell(cells[0], result.spec.seed_for(cells[0], 0), env=env)
    probe = env.launch(_PROBE_LAYOUT, CovirtConfig.full(), name="probe")
    protection_probe(env, probe)
    env.teardown(probe)
    return env


def bench_doc(
    result: "SweepResult",
    *,
    quick: bool,
    env: CovirtEnvironment | None = None,
) -> dict[str, Any]:
    """The covirt-bench artifact (``BENCH_sweep.json``)."""
    if env is None:
        env = representative_env(result)
    registry = env.machine.obs.metrics
    return {
        "schema": BENCH_SCHEMA_NAME,
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "sweep",
        "title": BENCH_TITLE,
        "quick": bool(quick),
        "seed": result.spec.base_seed,
        "sim_cycles": max(
            env.machine.clock.now,
            max(
                env.machine.core(i).read_tsc()
                for i in range(env.machine.num_cores)
            ),
        ),
        "exits_by_reason": registry.exit_counts_by_reason(),
        "metrics": registry.to_dict(),
        "results": aggregate(result),
    }


def _dump(doc: dict[str, Any]) -> str:
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def write_artifacts(
    result: "SweepResult", out_dir: str | Path, *, quick: bool
) -> dict[str, Path]:
    """Write all four artifacts under ``out_dir``; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "sweep": out / "sweep.json",
        "tables": out / "tables.md",
        "boxplot": out / "boxplot.json",
        "bench": out / "BENCH_sweep.json",
    }
    paths["sweep"].write_text(_dump(sweep_doc(result, quick=quick)))
    paths["tables"].write_text(render_markdown(result))
    paths["boxplot"].write_text(_dump(boxplot_doc(result)))
    paths["bench"].write_text(_dump(bench_doc(result, quick=quick)))
    return paths
