"""The scenario-generator DSL.

A :class:`SweepSpec` is a schema-versioned grid: each axis names values
drawn from surfaces the repo already pins — fault schedules are the
:data:`repro.fuzz.engine.SCHEDULES` weight tables, NUMA shapes index
the engine's :data:`~repro.fuzz.engine.FUZZ_LAYOUTS`, workloads come
from the Table-I registry (:func:`repro.workloads.registry
.workload_by_name`), recovery policies from the supervisor's policy
set, and adaptations from :data:`repro.sweep.adapt.ADAPTATIONS`.  The
cartesian product of the axes is the cell list; each
:class:`ScenarioCell` runs ``seeds_per_cell`` seeds derived from
``(base_seed, cell id, seed index)`` via the repo-wide
:func:`~repro.fuzz.rng.derive_seed`, so any single run anywhere in a
sweep is reproducible from the spec alone.

A cell with ``enclaves == 0`` is *pure*: no prologue launches, no
adaptation hooks — exactly ``FuzzEngine(seed, schedule).run(steps)``.
Pure cells are what the cross-subsystem conformance tests lean on: the
same (schedule, seed, steps) through the direct engine, the ``repro
sweep`` CLI, and a ``repro.serve`` session must fingerprint
identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.fuzz.engine import SCHEDULES
from repro.fuzz.rng import DEFAULT_SEED, derive_seed

SPEC_SCHEMA_NAME = "covirt-sweep-spec"
SPEC_SCHEMA_VERSION = 1

#: NUMA shape name -> index into :data:`repro.fuzz.engine.FUZZ_LAYOUTS`
#: (flat: 1 core / 1 zone; split: 1+1 cores across 2 zones; far: 2
#: cores pinned to the remote zone).
NUMA_SHAPES: dict[str, int] = {"flat": 0, "split": 1, "far": 2}

#: Recovery-policy name -> index into the engine's policy set
#: (restart-always, restart-with-backoff, quarantine).
POLICIES: dict[str, int] = {"restart": 0, "backoff": 1, "quarantine": 2}

#: Workload names a cell's mix may draw on (Table-I registry names).
WORKLOADS: tuple[str, ...] = (
    "STREAM",
    "RandomAccess_OMP",
    "HPCG",
    "miniFE",
)


def _adaptation_names() -> tuple[str, ...]:
    from repro.sweep.adapt import ADAPTATIONS

    return tuple(sorted(ADAPTATIONS))


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the grid: a fully resolved scenario."""

    schedule: str
    enclaves: int = 0
    numa: str = "flat"
    workloads: tuple[str, ...] = ()
    adaptation: str = "none"
    policy: str = "restart"
    steps: int = 40

    def cell_id(self) -> str:
        """The stable, human-greppable identity of this cell (also the
        seed-derivation salt, so renaming a cell re-seeds it loudly)."""
        mix = "+".join(self.workloads) if self.workloads else "-"
        return (
            f"{self.schedule}/e{self.enclaves}/{self.numa}/wl={mix}/"
            f"{self.adaptation}/{self.policy}/s{self.steps}"
        )

    def validate(self) -> list[str]:
        problems: list[str] = []
        if self.schedule not in SCHEDULES:
            problems.append(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {sorted(SCHEDULES)}"
            )
        if not 0 <= int(self.enclaves) <= 3:
            problems.append(
                f"enclaves must be in 0..3, got {self.enclaves}"
            )
        if self.numa not in NUMA_SHAPES:
            problems.append(
                f"unknown numa shape {self.numa!r}; "
                f"choose from {sorted(NUMA_SHAPES)}"
            )
        for name in self.workloads:
            if name not in WORKLOADS:
                problems.append(
                    f"unknown workload {name!r}; "
                    f"choose from {list(WORKLOADS)}"
                )
        if self.adaptation not in _adaptation_names():
            problems.append(
                f"unknown adaptation {self.adaptation!r}; "
                f"choose from {list(_adaptation_names())}"
            )
        if self.policy not in POLICIES:
            problems.append(
                f"unknown policy {self.policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )
        if int(self.steps) < 1:
            problems.append(f"steps must be >= 1, got {self.steps}")
        if self.enclaves == 0 and (self.workloads or self.adaptation != "none"):
            problems.append(
                f"cell {self.cell_id()!r}: workloads and adaptations need "
                f"enclaves >= 1 (enclaves=0 is the pure-engine cell)"
            )
        return problems

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule,
            "enclaves": int(self.enclaves),
            "numa": self.numa,
            "workloads": list(self.workloads),
            "adaptation": self.adaptation,
            "policy": self.policy,
            "steps": int(self.steps),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioCell":
        known = {
            "schedule", "enclaves", "numa", "workloads", "adaptation",
            "policy", "steps",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown cell keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            schedule=str(data["schedule"]),
            enclaves=int(data.get("enclaves", 0)),
            numa=str(data.get("numa", "flat")),
            workloads=tuple(data.get("workloads", ())),
            adaptation=str(data.get("adaptation", "none")),
            policy=str(data.get("policy", "restart")),
            steps=int(data.get("steps", 40)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """The grid: axes, seeds per cell, and the base seed.

    ``cells()`` is the cartesian product in axis order — a pure
    function of the spec, so two processes (or two worker counts)
    planning the same spec plan the identical task list.
    """

    schedules: tuple[str, ...] = ("baseline",)
    enclaves: tuple[int, ...] = (0,)
    numa_shapes: tuple[str, ...] = ("flat",)
    workload_mixes: tuple[tuple[str, ...], ...] = ((),)
    adaptations: tuple[str, ...] = ("none",)
    policies: tuple[str, ...] = ("restart",)
    steps: int = 40
    seeds_per_cell: int = 2
    base_seed: int = DEFAULT_SEED

    def cells(self) -> list[ScenarioCell]:
        out = []
        for sched, enc, numa, mix, adapt, policy in itertools.product(
            self.schedules,
            self.enclaves,
            self.numa_shapes,
            self.workload_mixes,
            self.adaptations,
            self.policies,
        ):
            cell = ScenarioCell(
                schedule=sched,
                enclaves=int(enc),
                numa=numa,
                workloads=tuple(mix),
                adaptation=adapt,
                policy=policy,
                steps=int(self.steps),
            )
            # Pure-engine cells (enclaves=0) only make sense unadorned;
            # the grid silently produces them once, not per mix/adapt.
            if cell.enclaves == 0 and (cell.workloads or cell.adaptation != "none"):
                continue
            if cell not in out:
                out.append(cell)
        return out

    def seed_for(self, cell: ScenarioCell, k: int) -> int:
        """Seed of the ``k``-th run of ``cell`` — pure in (base_seed,
        cell id, k), and clipped to the engine's printable 32-bit range."""
        return derive_seed(
            self.base_seed, f"sweep/{cell.cell_id()}/{k}"
        ) & 0xFFFFFFFF

    def validate(self) -> list[str]:
        problems: list[str] = []
        if int(self.seeds_per_cell) < 1:
            problems.append(
                f"seeds_per_cell must be >= 1, got {self.seeds_per_cell}"
            )
        cells = self.cells()
        if not cells:
            problems.append("spec produces no cells")
        seen: set[str] = set()
        for cell in cells:
            for problem in cell.validate():
                if problem not in seen:
                    seen.add(problem)
                    problems.append(problem)
        return problems

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA_NAME,
            "schema_version": SPEC_SCHEMA_VERSION,
            "schedules": list(self.schedules),
            "enclaves": list(self.enclaves),
            "numa_shapes": list(self.numa_shapes),
            "workload_mixes": [list(m) for m in self.workload_mixes],
            "adaptations": list(self.adaptations),
            "policies": list(self.policies),
            "steps": int(self.steps),
            "seeds_per_cell": int(self.seeds_per_cell),
            "base_seed": int(self.base_seed),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"spec must be an object, got {type(data).__name__}"
            )
        if data.get("schema") != SPEC_SCHEMA_NAME:
            raise ValueError(
                f"spec schema must be {SPEC_SCHEMA_NAME!r}, "
                f"got {data.get('schema')!r}"
            )
        if data.get("schema_version") != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unknown spec schema_version {data.get('schema_version')!r} "
                f"(this tool understands {SPEC_SCHEMA_VERSION})"
            )
        known = {
            "schema", "schema_version", "schedules", "enclaves",
            "numa_shapes", "workload_mixes", "adaptations", "policies",
            "steps", "seeds_per_cell", "base_seed",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            schedules=tuple(data.get("schedules", ("baseline",))),
            enclaves=tuple(int(e) for e in data.get("enclaves", (0,))),
            numa_shapes=tuple(data.get("numa_shapes", ("flat",))),
            workload_mixes=tuple(
                tuple(m) for m in data.get("workload_mixes", ((),))
            ),
            adaptations=tuple(data.get("adaptations", ("none",))),
            policies=tuple(data.get("policies", ("restart",))),
            steps=int(data.get("steps", 40)),
            seeds_per_cell=int(data.get("seeds_per_cell", 2)),
            base_seed=int(data.get("base_seed", DEFAULT_SEED)),
        )

    def describe(self) -> str:
        cells = self.cells()
        return (
            f"sweep spec: {len(cells)} cells x {self.seeds_per_cell} seeds "
            f"= {len(cells) * self.seeds_per_cell} runs "
            f"({self.steps} steps each, base seed {self.base_seed:#x})"
        )


def quick_spec(base_seed: int = DEFAULT_SEED) -> SweepSpec:
    """The CI smoke grid: 6 cells x 2 seeds x 24 steps, no workloads.

    Includes one pure-engine cell per schedule (the conformance
    anchors) and the rewrite adaptation so the smoke job still
    exercises whitelist/EPT rewrites under load.
    """
    return SweepSpec(
        schedules=("baseline", "churn"),
        enclaves=(0, 2),
        numa_shapes=("flat",),
        workload_mixes=((),),
        adaptations=("none", "rewrite"),
        policies=("restart",),
        steps=24,
        seeds_per_cell=2,
        base_seed=base_seed,
    )


def full_spec(base_seed: int = DEFAULT_SEED) -> SweepSpec:
    """The committed-artifact grid: every schedule and adaptation, two
    NUMA shapes, a STREAM co-run mix, 3 seeds per cell."""
    return SweepSpec(
        schedules=tuple(sorted(SCHEDULES)),
        enclaves=(2,),
        numa_shapes=("flat", "split"),
        workload_mixes=((), ("STREAM",)),
        adaptations=("none", "reassign", "rewrite", "ramp"),
        policies=("backoff",),
        steps=40,
        seeds_per_cell=3,
        base_seed=base_seed,
    )
