"""Deterministic aggregation over a sweep's cell runs.

Everything here is pure arithmetic over the executor's folded results:
medians via :func:`statistics.median`, p95 via the nearest-rank method
(no interpolation — integer inputs stay exactly reproducible), and the
three renderings the CLI writes: per-cell stat rows (the
``BENCH_sweep.json`` results table), a markdown summary table, and a
boxplot-ready per-seed document for plotting.
"""

from __future__ import annotations

import statistics
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.executor import SweepResult
    from repro.sweep.runner import CellRun
    from repro.sweep.spec import ScenarioCell


def nearest_rank(values: list[float], q: float) -> float:
    """The q-quantile by nearest rank: exact, interpolation-free."""
    if not values:
        raise ValueError("nearest_rank of an empty list")
    ordered = sorted(values)
    rank = max(int(-(-q * len(ordered) // 1)), 1)  # ceil(q*n), >= 1
    return ordered[min(rank, len(ordered)) - 1]


def _median(values: list[float]) -> float:
    return round(float(statistics.median(values)), 2)


def cell_row(cell: "ScenarioCell", runs: list["CellRun"]) -> dict[str, Any]:
    """One per-cell stats row (the covirt-bench ``results`` row shape)."""
    clocks = [float(r.final_clock) for r in runs]
    row: dict[str, Any] = {
        "cell": cell.cell_id(),
        "schedule": cell.schedule,
        "enclaves": cell.enclaves,
        "numa": cell.numa,
        "workloads": "+".join(cell.workloads) if cell.workloads else "-",
        "adaptation": cell.adaptation,
        "policy": cell.policy,
        "steps": cell.steps,
        "seeds": len(runs),
        "median_final_clock": _median(clocks),
        "p95_final_clock": round(nearest_rank(clocks, 0.95), 2),
        "median_faults": _median([float(r.faults) for r in runs]),
        "median_steps_applied": _median(
            [float(r.steps_applied) for r in runs]
        ),
        "failures": sum(1 for r in runs if r.failure is not None),
    }
    for name in cell.workloads:
        foms = [
            r.workload_foms[name] for r in runs if name in r.workload_foms
        ]
        row[f"median_fom_{name}"] = _median(foms) if foms else None
    return row


def aggregate(result: "SweepResult") -> list[dict[str, Any]]:
    """All per-cell rows, in the spec's deterministic cell order."""
    return [
        cell_row(cell, result.runs[cell.cell_id()])
        for cell in result.spec.cells()
    ]


def render_markdown(result: "SweepResult") -> str:
    """The summary the CLI prints and writes as ``tables.md``."""
    rows = aggregate(result)
    total_runs = sum(len(r) for r in result.runs.values())
    failures = sum(row["failures"] for row in rows)
    lines = [
        "# Scenario sweep",
        "",
        f"- cells: {len(rows)}",
        f"- runs: {total_runs} "
        f"({result.spec.seeds_per_cell} seeds/cell, "
        f"{result.spec.steps} steps each)",
        f"- base seed: {result.spec.base_seed:#x}",
        f"- oracle/exception failures: {failures}",
        "",
        "| cell | seeds | median clock | p95 clock | median faults "
        "| failures |",
        "|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| `{row['cell']}` | {row['seeds']} "
            f"| {row['median_final_clock']} | {row['p95_final_clock']} "
            f"| {row['median_faults']} | {row['failures']} |"
        )
    return "\n".join(lines) + "\n"


def boxplot_doc(result: "SweepResult") -> dict[str, Any]:
    """Per-seed raw points, grouped by cell — feedable straight into a
    boxplot (one box per cell over ``final_clocks``)."""
    cells = []
    for cell in result.spec.cells():
        runs = result.runs[cell.cell_id()]
        cells.append(
            {
                "cell": cell.cell_id(),
                "seeds": [r.seed for r in runs],
                "final_clocks": [r.final_clock for r in runs],
                "faults": [r.faults for r in runs],
                "steps_applied": [r.steps_applied for r in runs],
                "fingerprints": [r.fingerprint for r in runs],
            }
        )
    return {
        "schema": "covirt-sweep-boxplot",
        "schema_version": 1,
        "base_seed": result.spec.base_seed,
        "cells": cells,
    }
