"""I/O port permission bitmap.

One bit per port in the 64 KiB space; a set bit makes the guest's
IN/OUT take a VM exit.  Covirt traps everything except an explicit
allow list (typically just the enclave's console UART, if any).
"""

from __future__ import annotations

from repro.hw.ioports import PORT_SPACE_SIZE


class IoBitmap:
    """Which port accesses exit."""

    def __init__(self, trap_by_default: bool = True) -> None:
        self.trap_by_default = trap_by_default
        self._allowed: set[int] = set()
        self._trapped: set[int] = set()

    @classmethod
    def allow_all(cls) -> "IoBitmap":
        """Bitmap that never exits (I/O protection disabled)."""
        return cls(trap_by_default=False)

    @staticmethod
    def _check(port: int) -> None:
        if not 0 <= port < PORT_SPACE_SIZE:
            raise ValueError(f"port {port:#x} outside port space")

    def allow(self, port: int) -> None:
        self._check(port)
        self._allowed.add(port)
        self._trapped.discard(port)

    def allow_range(self, first: int, last: int) -> None:
        for port in range(first, last + 1):
            self.allow(port)

    def trap(self, port: int) -> None:
        self._check(port)
        self._trapped.add(port)
        self._allowed.discard(port)

    def allowed_ports(self) -> frozenset[int]:
        """Ports whose IN/OUT execute natively (never exit).

        Oracle introspection: with I/O protection enabled, host-owned
        ports must never appear here.
        """
        return frozenset(self._allowed - self._trapped)

    def should_exit(self, port: int) -> bool:
        self._check(port)
        if port in self._trapped:
            return True
        if port in self._allowed:
            return False
        return self.trap_by_default
