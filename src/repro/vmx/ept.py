"""Extended (nested) page tables.

The EPT is Covirt's primary enforcement mechanism: the controller builds
an *identity map* of exactly the physical regions assigned to an enclave,
and any guest access outside those regions takes an EPT violation exit.

Mappings exist at 4 KiB, 2 MiB and 1 GiB granularity.  ``map_region``
greedily coalesces into the largest page size that alignment permits —
the optimization the paper calls out — and ``unmap_region`` splinters
large pages when an unmap cuts through one, exactly as a real EPT
manager must.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.hw.memory import (
    PAGE_SIZE,
    PAGE_SIZE_1G,
    PAGE_SIZE_2M,
    is_page_aligned,
)

#: Page sizes from largest to smallest, for greedy coalescing.
PAGE_SIZES_DESC = (PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE)


class EptError(Exception):
    """Structural misuse of the EPT (overlapping map, bad alignment)."""


@dataclass(frozen=True)
class EptPermissions:
    """EPT entry permission bits."""

    read: bool = True
    write: bool = True
    execute: bool = True

    def allows(self, *, write: bool = False, execute: bool = False) -> bool:
        if not self.read and not write and not execute:
            return False
        if write and not self.write:
            return False
        if execute and not self.execute:
            return False
        return self.read or write or execute

    @classmethod
    def full(cls) -> "EptPermissions":
        """Covirt maps everything with full access: violations mean the
        address is *outside* the enclave, not a page-permission subtlety."""
        return cls(True, True, True)


@dataclass(frozen=True)
class EptMapping:
    """One EPT entry: a guest-physical page mapped to a host-physical page."""

    guest_page: int
    host_page: int
    page_size: int
    perms: EptPermissions

    def __post_init__(self) -> None:
        if self.page_size not in PAGE_SIZES_DESC:
            raise EptError(f"unsupported page size {self.page_size:#x}")
        if self.guest_page % self.page_size or self.host_page % self.page_size:
            raise EptError(
                f"mapping {self.guest_page:#x}->{self.host_page:#x} not "
                f"aligned to {self.page_size:#x}"
            )

    @property
    def guest_end(self) -> int:
        return self.guest_page + self.page_size

    @property
    def is_identity(self) -> bool:
        return self.guest_page == self.host_page

    def translate(self, gpa: int) -> int:
        if not self.guest_page <= gpa < self.guest_end:
            raise EptError(f"gpa {gpa:#x} outside mapping")
        return self.host_page + (gpa - self.guest_page)


@dataclass(frozen=True)
class EptViolationInfo:
    """Exit qualification for an EPT violation."""

    gpa: int
    is_write: bool
    is_exec: bool

    def describe(self) -> str:
        kind = "exec" if self.is_exec else ("write" if self.is_write else "read")
        return f"EPT violation: {kind} of unmapped gpa {self.gpa:#x}"


class ExtendedPageTable:
    """A software EPT for one enclave.

    The table is shared by every core of the enclave (as on hardware,
    where all VMCSs point at the same EPT root); per-core staleness lives
    in each core's TLB, not here.
    """

    def __init__(self) -> None:
        self._mappings: dict[int, EptMapping] = {}
        #: Monotonic generation number, bumped on every structural change;
        #: lets cores detect they are running on stale translations.
        self.generation: int = 0

    def __len__(self) -> int:
        return len(self._mappings)

    # -- mapping -------------------------------------------------------

    def map_region(
        self,
        guest_start: int,
        size: int,
        host_start: int | None = None,
        perms: EptPermissions | None = None,
        coalesce: bool = True,
    ) -> list[EptMapping]:
        """Map ``[guest_start, +size)`` — identity map unless ``host_start``.

        Greedily uses 1 GiB and 2 MiB pages where alignment of both sides
        allows (disable with ``coalesce=False`` for the ablation study).
        Raises :class:`EptError` if any byte of the range is already
        mapped: Covirt's controller is the single writer and never
        double-maps.
        """
        if size <= 0 or not is_page_aligned(size) or not is_page_aligned(guest_start):
            raise EptError(f"bad map range [{guest_start:#x},+{size:#x})")
        if host_start is None:
            host_start = guest_start
        if not is_page_aligned(host_start):
            raise EptError(f"host start {host_start:#x} not aligned")
        if self.overlaps(guest_start, size):
            raise EptError(
                f"map [{guest_start:#x},+{size:#x}) overlaps existing mapping"
            )
        perms = perms or EptPermissions.full()
        created: list[EptMapping] = []
        gpa, hpa, remaining = guest_start, host_start, size
        sizes = PAGE_SIZES_DESC if coalesce else (PAGE_SIZE,)
        while remaining:
            for page_size in sizes:
                if (
                    gpa % page_size == 0
                    and hpa % page_size == 0
                    and remaining >= page_size
                ):
                    mapping = EptMapping(gpa, hpa, page_size, perms)
                    self._mappings[gpa] = mapping
                    created.append(mapping)
                    gpa += page_size
                    hpa += page_size
                    remaining -= page_size
                    break
            else:  # pragma: no cover - PAGE_SIZE always matches
                raise EptError("no page size fits")
        self.generation += 1
        return created

    def unmap_region(self, guest_start: int, size: int) -> int:
        """Unmap ``[guest_start, +size)``; returns bytes unmapped.

        Large pages that straddle the boundary are splintered into the
        smallest granularity needed so the remainder stays mapped.
        Unmapping a range that is not fully mapped raises — the
        controller tracks what it mapped and never blind-unmaps.
        """
        if size <= 0 or not is_page_aligned(size) or not is_page_aligned(guest_start):
            raise EptError(f"bad unmap range [{guest_start:#x},+{size:#x})")
        end = guest_start + size
        covered = sum(
            min(m.guest_end, end) - max(m.guest_page, guest_start)
            for m in self._overlapping(guest_start, size)
        )
        if covered != size:
            raise EptError(
                f"unmap [{guest_start:#x},+{size:#x}) covers only "
                f"{covered:#x} mapped bytes"
            )
        for mapping in self._overlapping(guest_start, size):
            del self._mappings[mapping.guest_page]
            if mapping.guest_page < guest_start:
                self._resplinter(
                    mapping, mapping.guest_page, guest_start - mapping.guest_page
                )
            if mapping.guest_end > end:
                self._resplinter(mapping, end, mapping.guest_end - end)
        self.generation += 1
        return size

    def _resplinter(self, parent: EptMapping, gpa: int, size: int) -> None:
        """Re-map a surviving slice of a splintered large page."""
        hpa = parent.translate(gpa)
        remaining = size
        while remaining:
            for page_size in PAGE_SIZES_DESC:
                if gpa % page_size == 0 and hpa % page_size == 0 and remaining >= page_size:
                    self._mappings[gpa] = EptMapping(gpa, hpa, page_size, parent.perms)
                    gpa += page_size
                    hpa += page_size
                    remaining -= page_size
                    break

    # -- lookup --------------------------------------------------------

    def find_mapping(self, gpa: int) -> EptMapping | None:
        """The mapping covering ``gpa``, if any (O(1) per page size)."""
        for page_size in PAGE_SIZES_DESC:
            base = gpa & ~(page_size - 1)
            mapping = self._mappings.get(base)
            if mapping is not None and mapping.page_size == page_size:
                return mapping
        return None

    def translate(
        self, gpa: int, *, write: bool = False, execute: bool = False
    ) -> tuple[int, EptMapping] | EptViolationInfo:
        """Walk the table: host address on success, violation info on miss."""
        mapping = self.find_mapping(gpa)
        if mapping is None or not mapping.perms.allows(write=write, execute=execute):
            return EptViolationInfo(gpa=gpa, is_write=write, is_exec=execute)
        return mapping.translate(gpa), mapping

    def is_mapped(self, gpa: int) -> bool:
        return self.find_mapping(gpa) is not None

    def _overlapping(self, start: int, size: int) -> list[EptMapping]:
        end = start + size
        return [
            m
            for m in self._mappings.values()
            if m.guest_page < end and m.guest_end > start
        ]

    def overlaps(self, start: int, size: int) -> bool:
        return bool(self._overlapping(start, size))

    # -- introspection -------------------------------------------------

    def mappings(self) -> Iterator[EptMapping]:
        yield from sorted(self._mappings.values(), key=lambda m: m.guest_page)

    @property
    def mapped_bytes(self) -> int:
        return sum(m.page_size for m in self._mappings.values())

    def count_by_size(self) -> dict[int, int]:
        """{page_size: count} — how well coalescing did."""
        counts: dict[int, int] = {PAGE_SIZE: 0, PAGE_SIZE_2M: 0, PAGE_SIZE_1G: 0}
        for m in self._mappings.values():
            counts[m.page_size] += 1
        return counts

    @property
    def is_identity(self) -> bool:
        return all(m.is_identity for m in self._mappings.values())

    def check_invariants(self) -> None:
        """No overlaps, all aligned (alignment enforced at construction)."""
        spans = sorted(
            (m.guest_page, m.guest_end) for m in self._mappings.values()
        )
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"overlapping EPT mappings at {s2:#x}"
