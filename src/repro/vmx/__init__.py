"""Simulated hardware virtualization extensions (Intel VMX analogue).

This package reproduces, in software, the VMX feature set Covirt builds
on: the per-core VMCS, nested page tables (EPT) with 4K/2M/1G mappings,
the exit-reason taxonomy, MSR and I/O permission bitmaps, APIC
virtualization (trap-and-emulate mode) and posted-interrupt delivery.

It deliberately contains *no policy*: which accesses are allowed, what
happens on a violation, and when caches are flushed are all decided by
the Covirt layer in :mod:`repro.core`.
"""

from repro.vmx.ept import (
    EptMapping,
    EptPermissions,
    EptViolationInfo,
    ExtendedPageTable,
)
from repro.vmx.exits import ExitReason, VmExit
from repro.vmx.io_bitmap import IoBitmap
from repro.vmx.msr_bitmap import MsrBitmap
from repro.vmx.posted import PostedInterruptDescriptor
from repro.vmx.vapic import VapicMode, VirtualApicPage
from repro.vmx.vmcs import Vmcs, VmcsValidationError

__all__ = [
    "EptMapping",
    "EptPermissions",
    "EptViolationInfo",
    "ExtendedPageTable",
    "ExitReason",
    "VmExit",
    "IoBitmap",
    "MsrBitmap",
    "PostedInterruptDescriptor",
    "VapicMode",
    "VirtualApicPage",
    "Vmcs",
    "VmcsValidationError",
]
