"""APIC virtualization.

Two hardware mechanisms back Covirt's IPI protection (Section IV-C):

* **Trap mode** — every guest write to the APIC ICR takes an
  ``APIC_WRITE`` exit; the hypervisor validates and (maybe) re-issues
  the IPI on the physical APIC.  VMX additionally forces *incoming*
  interrupts to exit in this mode, which is the latency cost the paper
  notes.
* **Posted mode (PIV)** — incoming IPIs are posted into an in-memory
  descriptor and delivered without any exit; only genuinely external
  device interrupts (and the local APIC timer) still exit.

The :class:`VirtualApicPage` is the guest-visible APIC surface; which
mode is active is a property of the VMCS controls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hw.apic import DeliveryMode, IpiMessage


class VapicMode(enum.Enum):
    """How guest APIC accesses are virtualized."""

    #: No APIC virtualization: guest drives the physical APIC directly
    #: (IPI protection off).
    DISABLED = "disabled"
    #: Full trap-and-emulate of ICR writes; incoming interrupts exit.
    TRAP = "trap"
    #: Posted interrupts: ICR writes still trap (for the whitelist), but
    #: incoming IPIs are delivered exit-free via the PI descriptor.
    POSTED = "posted"


@dataclass
class VirtualApicPage:
    """The 4 KiB virtual-APIC page for one vCPU.

    Only the registers the stack touches are modelled: the ICR (whose
    writes Covirt traps) and a pending-vector view kept in sync by the
    delivery engine.
    """

    core_id: int
    icr_value: int = 0
    #: Vectors delivered to the guest but not yet EOI'd.
    in_service: set[int] = field(default_factory=set)
    #: ICR writes observed (for tests / accounting).
    icr_writes: list[IpiMessage] = field(default_factory=list)

    def compose_icr(self, dest_core: int, vector: int, mode: DeliveryMode) -> int:
        """Encode an ICR value the way the guest kernel would."""
        mode_bits = 0b100 if mode is DeliveryMode.NMI else 0b000
        return (dest_core << 32) | (mode_bits << 8) | vector

    @staticmethod
    def decode_icr(value: int) -> tuple[int, int, DeliveryMode]:
        """Decode an ICR value into (dest_core, vector, mode)."""
        dest = value >> 32
        vector = value & 0xFF
        mode = DeliveryMode.NMI if (value >> 8) & 0b111 == 0b100 else DeliveryMode.FIXED
        return dest, vector, mode

    def record_write(self, msg: IpiMessage) -> None:
        self.icr_value = self.compose_icr(msg.dest_core, msg.vector, msg.mode)
        self.icr_writes.append(msg)
