"""VM exit taxonomy.

A :class:`VmExit` is the hardware's report of why guest execution
stopped; the Covirt hypervisor's dispatch table in
``repro.core.exits`` keys off :class:`ExitReason`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ExitReason(enum.Enum):
    """Exit reasons the simulated VMX hardware can produce.

    Names and semantics follow the SDM subset the paper's hypervisor
    handles; everything else is architecturally impossible in the
    simulated machine.
    """

    EXCEPTION_OR_NMI = "exception_or_nmi"
    EXTERNAL_INTERRUPT = "external_interrupt"
    TRIPLE_FAULT = "triple_fault"
    CPUID = "cpuid"
    HLT = "hlt"
    VMCALL = "vmcall"
    IO_INSTRUCTION = "io_instruction"
    MSR_READ = "msr_read"
    MSR_WRITE = "msr_write"
    APIC_WRITE = "apic_write"  # trapped ICR write (VAPIC trap mode)
    EPT_VIOLATION = "ept_violation"
    XSETBV = "xsetbv"


@dataclass(frozen=True)
class VmExit:
    """One VM exit event."""

    reason: ExitReason
    core_id: int
    #: Reason-specific payload: EptViolationInfo, (msr, value), port
    #: access tuple, trapped IpiMessage, Interrupt, ...
    qualification: Any = field(default=None, compare=False)
    guest_tsc: int = 0

    def describe(self) -> str:
        detail = ""
        if self.qualification is not None:
            describe = getattr(self.qualification, "describe", None)
            detail = f": {describe()}" if describe else f": {self.qualification!r}"
        return f"[core {self.core_id}] exit {self.reason.value}{detail}"
