"""MSR permission bitmap.

VMX consults a per-VMCS bitmap on every guest RDMSR/WRMSR to decide
whether the access executes natively or takes an exit.  Covirt's MSR
protection populates this with a default-trap policy plus an explicit
pass-through list for the benign MSRs an LWK touches on hot paths
(FS/GS base, TSC aux).
"""

from __future__ import annotations

from repro.hw.msr import MSR

#: MSRs an LWK legitimately reads/writes frequently; pass through by
#: default so MSR protection costs nothing at steady state.
DEFAULT_PASSTHROUGH: frozenset[int] = frozenset(
    {
        MSR.IA32_FS_BASE,
        MSR.IA32_GS_BASE,
        MSR.IA32_KERNEL_GS_BASE,
        MSR.IA32_TSC_AUX,
        MSR.IA32_STAR,
        MSR.IA32_LSTAR,
        MSR.IA32_FMASK,
        MSR.IA32_PAT,
        MSR.IA32_EFER,
    }
)


class MsrBitmap:
    """Which MSR accesses exit.

    ``trap_by_default`` mirrors how Covirt configures hardware: anything
    not explicitly passed through is trapped so the hypervisor can apply
    policy.  With the bitmap disabled entirely (no MSR protection), VMX
    semantics are trap-nothing for the benign set — modelled by
    ``allow_all()``.
    """

    def __init__(self, trap_by_default: bool = True) -> None:
        self.trap_by_default = trap_by_default
        self._read_passthrough: set[int] = set(DEFAULT_PASSTHROUGH)
        self._write_passthrough: set[int] = set(DEFAULT_PASSTHROUGH)
        self._read_trapped: set[int] = set()
        self._write_trapped: set[int] = set()

    @classmethod
    def allow_all(cls) -> "MsrBitmap":
        """Bitmap that never exits (MSR protection disabled)."""
        return cls(trap_by_default=False)

    def passthrough(self, index: int, *, read: bool = True, write: bool = True) -> None:
        if read:
            self._read_passthrough.add(index)
            self._read_trapped.discard(index)
        if write:
            self._write_passthrough.add(index)
            self._write_trapped.discard(index)

    def trap(self, index: int, *, read: bool = True, write: bool = True) -> None:
        if read:
            self._read_trapped.add(index)
            self._read_passthrough.discard(index)
        if write:
            self._write_trapped.add(index)
            self._write_passthrough.discard(index)

    def passthrough_reads(self) -> frozenset[int]:
        """MSR indices whose reads execute natively (never exit)."""
        return frozenset(self._read_passthrough - self._read_trapped)

    def passthrough_writes(self) -> frozenset[int]:
        """MSR indices whose writes execute natively (never exit).

        Oracle introspection: with MSR protection enabled, no sensitive
        MSR may ever appear here — a write that does not exit is a write
        the hypervisor cannot veto.
        """
        return frozenset(self._write_passthrough - self._write_trapped)

    def should_exit(self, index: int, *, is_write: bool) -> bool:
        """Does this guest MSR access take a VM exit?"""
        trapped = self._write_trapped if is_write else self._read_trapped
        passed = self._write_passthrough if is_write else self._read_passthrough
        if index in trapped:
            return True
        if index in passed:
            return False
        return self.trap_by_default
