"""Posted-interrupt descriptor (PIV).

A 64-byte in-memory structure registered with the VMCS.  Senders set a
bit in the 256-bit pending bitmap and, if no notification is already
outstanding, fire the registered notification vector at the target
core; the hardware (here: the delivery engine in ``repro.core.ipi``)
then injects every pending vector into the guest *without a VM exit*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.interrupts import VECTOR_SPACE_SIZE


@dataclass
class PostedInterruptDescriptor:
    """The PI descriptor for one vCPU."""

    #: Vector used to notify the physical core that bits are pending.
    notification_vector: int
    pending: set[int] = field(default_factory=set)
    #: Outstanding-notification bit: suppresses duplicate notification
    #: IPIs while one is already in flight.
    outstanding: bool = False
    #: Statistics: how many posts were absorbed without a fresh
    #: notification (they piggybacked on an outstanding one).
    coalesced_posts: int = 0

    def post(self, vector: int) -> bool:
        """Post ``vector``; returns True if a notification IPI is needed."""
        if not 0 <= vector < VECTOR_SPACE_SIZE:
            raise ValueError(f"vector {vector} outside vector space")
        self.pending.add(vector)
        if self.outstanding:
            self.coalesced_posts += 1
            return False
        self.outstanding = True
        return True

    def drain(self) -> list[int]:
        """Deliver-and-clear: returns pending vectors in ascending order."""
        vectors = sorted(self.pending)
        self.pending.clear()
        self.outstanding = False
        return vectors

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)
