"""Virtual Machine Control Structure.

One VMCS per core per enclave.  Covirt's controller writes the VMCS
*before* the core boots (the hypervisor then only loads and launches
it), and mutates control fields at runtime in response to resource
events — which is why the structure carries a ``generation`` the
hypervisor can compare against its per-core loaded state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vmx.ept import ExtendedPageTable
from repro.vmx.io_bitmap import IoBitmap
from repro.vmx.msr_bitmap import MsrBitmap
from repro.vmx.posted import PostedInterruptDescriptor
from repro.vmx.vapic import VapicMode, VirtualApicPage

#: VMCS revision identifier of the simulated part.
VMCS_REVISION = 0x0001_2025


class VmcsValidationError(Exception):
    """VM entry would fail: inconsistent VMCS control/guest state."""


@dataclass
class GuestState:
    """Architectural guest state loaded on VM entry.

    Covirt configures this to mirror exactly what the Pisces trampoline
    would have produced for a native boot: 64-bit long mode, identity
    page tables, entry at the co-kernel start address with the boot
    parameter pointer in RSI (Kitten's boot convention).
    """

    entry_point: int = 0
    boot_params_gpa: int = 0
    long_mode: bool = True
    identity_page_tables: bool = True
    #: Guest interrupt flag: whether the guest accepts interrupts.
    interrupts_enabled: bool = True


@dataclass
class ExecutionControls:
    """Pin-based + processor-based VM execution controls (the subset
    Covirt programs)."""

    #: Take an exit on hardware/external interrupts while in guest mode.
    external_interrupt_exiting: bool = True
    #: Take an exit on NMIs (Covirt's command-queue doorbell).
    nmi_exiting: bool = True
    #: Consult the MSR bitmap (off = never exit on MSR access).
    use_msr_bitmap: bool = False
    #: Consult the I/O bitmap (off = never exit on port access).
    use_io_bitmap: bool = False
    #: Enable EPT-based address translation.
    enable_ept: bool = False
    #: APIC virtualization mode.
    vapic_mode: VapicMode = VapicMode.DISABLED
    #: Exit on HLT (Covirt parks terminated enclaves itself).
    hlt_exiting: bool = True


@dataclass
class Vmcs:
    """The control structure for one vCPU."""

    core_id: int
    revision: int = VMCS_REVISION
    guest: GuestState = field(default_factory=GuestState)
    controls: ExecutionControls = field(default_factory=ExecutionControls)
    ept: ExtendedPageTable | None = None
    msr_bitmap: MsrBitmap | None = None
    io_bitmap: IoBitmap | None = None
    vapic_page: VirtualApicPage | None = None
    pi_descriptor: PostedInterruptDescriptor | None = None
    #: Set once a successful VMLAUNCH has happened on this VMCS.
    launched: bool = False
    #: Bumped by the controller whenever it rewrites control state while
    #: the guest is running; the hypervisor reloads when it observes a
    #: mismatch with its per-core loaded generation.
    generation: int = 0

    def touch(self) -> None:
        """Mark the VMCS dirty after a remote (controller-side) update."""
        self.generation += 1

    def validate(self) -> None:
        """The checks hardware performs at VM entry.

        Mirrors the SDM's "checks on VMX controls" at the granularity
        our controls exist: every enabled feature must have its backing
        structure, and posted interrupts require a virtual-APIC page.
        """
        if self.revision != VMCS_REVISION:
            raise VmcsValidationError(
                f"VMCS revision {self.revision:#x} != {VMCS_REVISION:#x}"
            )
        if self.controls.enable_ept and self.ept is None:
            raise VmcsValidationError("EPT enabled but no EPT attached")
        if self.controls.use_msr_bitmap and self.msr_bitmap is None:
            raise VmcsValidationError("MSR bitmap enabled but not attached")
        if self.controls.use_io_bitmap and self.io_bitmap is None:
            raise VmcsValidationError("I/O bitmap enabled but not attached")
        if self.controls.vapic_mode is not VapicMode.DISABLED:
            if self.vapic_page is None:
                raise VmcsValidationError("VAPIC mode set but no vAPIC page")
        if self.controls.vapic_mode is VapicMode.POSTED:
            if self.pi_descriptor is None:
                raise VmcsValidationError("posted mode set but no PI descriptor")
            if not self.controls.external_interrupt_exiting:
                raise VmcsValidationError(
                    "posted interrupts require external-interrupt exiting"
                )
        if self.guest.entry_point == 0:
            raise VmcsValidationError("guest entry point not configured")
        if not self.guest.long_mode or not self.guest.identity_page_tables:
            raise VmcsValidationError(
                "Covirt guests launch directly into 64-bit identity-mapped mode"
            )
