"""The Nautilus Aerokernel (simulated).

Nautilus is the second co-kernel architecture the paper mentions porting
to Pisces under Covirt's protection.  It is an *aerokernel*: there is no
user space at all — parallel runtimes are linked directly into the
kernel and run as lightweight fibers in ring 0.  Compared with Kitten it
has no syscall table, no per-task address spaces, and masks the APIC
timer entirely (events are cooperative), which makes it a usefully
*different* guest for demonstrating that Covirt's boot interposition and
protection features are kernel-agnostic.
"""

from repro.nautilus.kernel import NautilusKernel, Fiber, FiberState

__all__ = ["NautilusKernel", "Fiber", "FiberState"]
