"""The Nautilus aerokernel.

Implements the same guest-kernel surface Pisces and Covirt expect from
any co-kernel (boot from the trampoline's boot-parameter structure,
memory map + hotplug, interrupt injection, console, shutdown) with an
aerokernel's execution model on top: cooperative fibers in a single
kernel-wide address space, per-core run queues with explicit yield, and
no timer interrupts at all.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.hw.interrupts import Interrupt, InterruptKind
from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, PAGE_SIZE, page_align_up
from repro.kitten.memmap import GuestMemoryMap
from repro.pisces.bootparams import PiscesBootParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.pisces.enclave import Enclave

#: Nautilus reserves the first 2 MiB of its first region for the kernel
#: image and per-core stacks (it links runtimes into the kernel, so the
#: image is bigger than Kitten's).
KERNEL_RESERVED_BYTES = 2 << 20


class FiberState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    YIELDED = "yielded"
    DONE = "done"


@dataclass
class Fiber:
    """A ring-0 lightweight thread."""

    fid: int
    name: str
    core_id: int
    state: FiberState = FiberState.READY
    #: Cooperative body: called once per dispatch; returning False means
    #: the fiber is finished.
    body: Callable[["Fiber"], bool] | None = None
    #: Scratch heap carved from the kernel allocator.
    heap_start: int = 0
    heap_bytes: int = 0
    dispatches: int = 0

    def owns_addr(self, addr: int, length: int = 1) -> bool:
        return (
            self.heap_start <= addr
            and addr + length <= self.heap_start + self.heap_bytes
        )


class NautilusKernel:
    """One aerokernel instance managing an enclave."""

    def __init__(
        self, machine: Machine, enclave: "Enclave", params: PiscesBootParams
    ) -> None:
        self.machine = machine
        self.enclave = enclave
        self.params = params
        self.memmap = GuestMemoryMap()
        for region in params.regions:
            self.memmap.add_region(region)
        self.online_cores: list[int] = [params.core_ids[0]]
        self.console: list[str] = []
        self.running = True
        self.buggy_cleanup = False
        self.hobbes_client: Any = None
        self._next_fid = 1
        self.fibers: dict[int, Fiber] = {}
        self._run_queues: dict[int, deque[Fiber]] = {params.core_ids[0]: deque()}
        self._irq_handlers: dict[int, Callable[[int, Interrupt], None]] = {}
        self.irq_log: dict[int, list[Interrupt]] = {c: [] for c in params.core_ids}
        first = params.regions[0]
        self._alloc_cursor = first.start + KERNEL_RESERVED_BYTES
        self._alloc_region_idx = 0
        self._configure_core(params.core_ids[0])

    # -- boot (same surface as Kitten) ---------------------------------

    @classmethod
    def boot(cls, machine: Machine, enclave: "Enclave") -> "NautilusKernel":
        assert enclave.boot_params is not None
        params = PiscesBootParams.read_from(
            machine.memory, enclave.boot_params.address
        )
        params.address = enclave.boot_params.address
        kernel = cls(machine, enclave, params)
        kernel.console.append(
            f"Nautilus aerokernel booting: enclave {params.enclave_id}, "
            f"{len(params.core_ids)} cores, timer masked"
        )
        return kernel

    def _configure_core(self, core_id: int) -> None:
        from repro.hw.cpu import CpuMode

        core = self.machine.core(core_id)
        assert core.apic is not None
        # The aerokernel masks the timer entirely: scheduling is
        # cooperative, so there is *zero* periodic noise.
        core.apic.configure_timer(None)
        if core.mode is not CpuMode.GUEST:
            core.apic.delivery_hook = lambda irq, c=core_id: self.inject_interrupt(
                c, irq
            )

    def join_secondary_core(self, core_id: int) -> None:
        if core_id in self.online_cores:
            raise ValueError(f"core {core_id} already online")
        self.online_cores.append(core_id)
        self._run_queues[core_id] = deque()
        self.irq_log.setdefault(core_id, [])
        self._configure_core(core_id)

    def shutdown(self) -> None:
        self.running = False
        for fiber in self.fibers.values():
            if fiber.state is not FiberState.DONE:
                fiber.state = FiberState.DONE

    # -- interrupts ------------------------------------------------------

    def register_irq_handler(
        self, vector: int, handler: Callable[[int, Interrupt], None], desc: str = ""
    ) -> None:
        self._irq_handlers[vector] = handler

    def inject_interrupt(self, core_id: int, interrupt: Interrupt) -> None:
        if not self.running:
            return
        self.irq_log.setdefault(core_id, []).append(interrupt)
        handler = self._irq_handlers.get(interrupt.vector)
        if handler is not None:
            handler(core_id, interrupt)
        apic = self.machine.core(core_id).apic
        if apic is not None and interrupt.kind is not InterruptKind.NMI:
            apic.ack(interrupt.vector)

    # -- memory ------------------------------------------------------------

    def kmalloc_bytes(self, size: int) -> int:
        """Bump allocation out of the global kernel heap."""
        size = page_align_up(size)
        regions = self.params.regions
        while self._alloc_region_idx < len(regions):
            region = regions[self._alloc_region_idx]
            cursor = max(self._alloc_cursor, region.start)
            if cursor + size <= region.end:
                self._alloc_cursor = cursor + size
                return cursor
            self._alloc_region_idx += 1
            if self._alloc_region_idx < len(regions):
                self._alloc_cursor = regions[self._alloc_region_idx].start
        raise MemoryError(f"nautilus: cannot allocate {size:#x} bytes")

    def memory_hotplug_add(self, region: MemoryRegion) -> None:
        self.memmap.add_region(region)
        self.params.regions.append(region)

    def memory_hotplug_remove(self, region: MemoryRegion) -> bool:
        if region in self.params.regions:
            self.params.regions.remove(region)
        if not self.buggy_cleanup:
            self.memmap.remove_region(region)
        return True

    def map_shared(self, region: MemoryRegion) -> None:
        """XEMEM attachment (the aerokernel has one flat mapping)."""
        self.memmap.add_region(region)

    def unmap_shared(self, region: MemoryRegion) -> None:
        self.memmap.remove_region(region)

    def touch(
        self, core_id: int, addr: int, length: int = 8, *, write: bool = False
    ) -> bytes | None:
        """Kernel-mode access, checked against the aerokernel's own map
        then issued through the enclave port (identical discipline to
        Kitten — the port neither knows nor cares which kernel calls)."""
        if not self.memmap.contains(addr, length):
            raise MemoryError(f"nautilus: {addr:#x} not in memory map")
        assert self.enclave.port is not None
        if write:
            self.enclave.port.write(core_id, addr, b"\xaa" * length)
            return None
        return self.enclave.port.read(core_id, addr, length)

    # -- fibers ------------------------------------------------------------

    def spawn_fiber(
        self,
        name: str,
        body: Callable[[Fiber], bool] | None = None,
        core_id: int | None = None,
        heap_bytes: int = PAGE_SIZE,
    ) -> Fiber:
        if core_id is None:
            core_id = min(
                self._run_queues, key=lambda c: len(self._run_queues[c])
            )
        if core_id not in self._run_queues:
            raise ValueError(f"core {core_id} not online in this enclave")
        fiber = Fiber(
            fid=self._next_fid,
            name=name,
            core_id=core_id,
            body=body,
            heap_bytes=heap_bytes,
        )
        if heap_bytes:
            fiber.heap_start = self.kmalloc_bytes(heap_bytes)
        self._next_fid += 1
        self.fibers[fiber.fid] = fiber
        self._run_queues[core_id].append(fiber)
        return fiber

    def run_core(self, core_id: int, max_dispatches: int = 100) -> int:
        """Cooperative dispatch loop for one core; returns dispatches."""
        queue = self._run_queues[core_id]
        dispatched = 0
        while queue and dispatched < max_dispatches:
            fiber = queue.popleft()
            if fiber.state is FiberState.DONE:
                continue
            fiber.state = FiberState.RUNNING
            fiber.dispatches += 1
            dispatched += 1
            keep_going = fiber.body(fiber) if fiber.body is not None else False
            if keep_going:
                fiber.state = FiberState.YIELDED
                queue.append(fiber)  # explicit yield: back of the queue
            else:
                fiber.state = FiberState.DONE
        return dispatched

    def pending_fibers(self, core_id: int) -> int:
        return len(self._run_queues[core_id])
