"""Covirt reproduction: lightweight fault isolation and resource
protection for co-kernels, on a fully simulated machine substrate.

Reproduces Gordon & Lange, *"Covirt: Lightweight Fault Isolation and
Resource Protection for Co-Kernels"* (IPDPS workshops, 2021).

Quick start::

    from repro import CovirtEnvironment, CovirtConfig
    from repro.harness.env import EVALUATION_LAYOUTS

    env = CovirtEnvironment()
    enclave = env.launch(EVALUATION_LAYOUTS[1], CovirtConfig.memory_only())
    # ... run workloads, inject faults, read counters ...

Package map
-----------
``repro.hw``        simulated machine (cores, NUMA, memory, APICs, TLBs)
``repro.vmx``       virtualization extensions (VMCS, EPT, vAPIC, PIV)
``repro.linuxhost`` host general-purpose OS
``repro.pisces``    co-kernel framework (enclaves, boot, kernel ABI)
``repro.kitten``    the lightweight kernel
``repro.hobbes``    runtime (MCP, vector namespace, channels, forwarding)
``repro.xemem``     cross-enclave shared memory
``repro.core``      **Covirt** -- the paper's contribution
``repro.perf``      cycle cost model, counters, noise sampling
``repro.workloads`` Table-I benchmarks (real kernels + machine profiles)
``repro.harness``   per-figure experiment drivers
"""

from repro.core.features import CovirtConfig, Feature, IpiMode
from repro.harness.env import CovirtEnvironment, EVALUATION_LAYOUTS, Layout

__version__ = "1.0.0"

__all__ = [
    "CovirtConfig",
    "Feature",
    "IpiMode",
    "CovirtEnvironment",
    "EVALUATION_LAYOUTS",
    "Layout",
    "__version__",
]
