"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

try:
    status = main()
except BrokenPipeError:
    # Downstream closed the pipe (e.g. `... | head`); the Python docs
    # recipe: point stdout at devnull so interpreter shutdown doesn't
    # print a second traceback, and report the conventional 128+SIGPIPE.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    status = 141
raise SystemExit(status)
