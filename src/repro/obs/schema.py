"""Schema checks for the observability artifacts.

Two document shapes are validated here, dependency-free (no
``jsonschema`` in the image):

* ``BENCH_*.json`` — the schema-versioned benchmark result files the
  runner writes at the repo root.  CI's ``bench-smoke`` job and the
  pipeline tests both call :func:`validate_bench` so a malformed file
  can never land silently.
* Chrome-trace exports — :func:`validate_chrome_trace` checks the
  Trace Event Format essentials Perfetto needs to load the file.

Validators return a list of problems (empty = valid) so callers can
report every defect at once rather than dying on the first.
"""

from __future__ import annotations

from typing import Any

BENCH_SCHEMA_NAME = "covirt-bench"
BENCH_SCHEMA_VERSION = 1

#: Every BENCH_*.json must carry these top-level keys.
_BENCH_REQUIRED: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("schema", str),
    ("schema_version", int),
    ("bench", str),
    ("title", str),
    ("quick", bool),
    ("seed", int),
    ("sim_cycles", int),
    ("exits_by_reason", dict),
    ("metrics", dict),
    ("results", list),
)


def validate_bench(doc: Any) -> list[str]:
    """Validate one parsed ``BENCH_*.json`` document."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, types in _BENCH_REQUIRED:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"key {key!r} must be {types}, got {type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema"] != BENCH_SCHEMA_NAME:
        problems.append(
            f"schema must be {BENCH_SCHEMA_NAME!r}, got {doc['schema']!r}"
        )
    if doc["schema_version"] != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {doc['schema_version']}"
        )
    exits = doc["exits_by_reason"]
    if not exits:
        problems.append("exits_by_reason must not be empty")
    for reason, count in exits.items():
        if not isinstance(reason, str) or not isinstance(count, int):
            problems.append(
                f"exits_by_reason entries must be str->int, got "
                f"{reason!r}: {count!r}"
            )
            break
    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            problems.append(f"metrics.{section} must be an object")
    histograms = metrics.get("histograms")
    if isinstance(histograms, dict):
        populated = [
            name
            for name, hist in histograms.items()
            if isinstance(hist, dict)
            and any(s.get("count", 0) > 0 for s in hist.get("samples", []))
        ]
        if not populated:
            problems.append(
                "metrics.histograms must contain at least one populated "
                "latency histogram"
            )
        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                problems.append(f"histogram {name!r} must be an object")
                continue
            bounds = hist.get("bounds")
            if not isinstance(bounds, list) or not bounds:
                problems.append(f"histogram {name!r} missing bounds")
                continue
            for sample in hist.get("samples", []):
                counts = sample.get("counts")
                if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
                    problems.append(
                        f"histogram {name!r} sample counts must have "
                        f"len(bounds)+1 = {len(bounds) + 1} entries"
                    )
                    break
    for i, row in enumerate(doc["results"]):
        if not isinstance(row, dict):
            problems.append(f"results[{i}] must be an object")
    return problems


def validate_chrome_trace(doc: Any) -> list[str]:
    """Validate a parsed Chrome-trace export (Trace Event Format)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    if not events:
        problems.append("traceEvents must not be empty")
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{i}] must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "I"):
            problems.append(f"traceEvents[{i}] has unsupported ph {ph!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"traceEvents[{i}] missing name/pid")
            continue
        if ph == "X":
            complete += 1
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"traceEvents[{i}] needs numeric ts >= 0")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"traceEvents[{i}] needs numeric dur >= 0")
    if not complete:
        problems.append("trace contains no complete (ph='X') events")
    return problems
