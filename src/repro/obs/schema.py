"""Schema checks for the observability artifacts.

Three document shapes are validated here, dependency-free (no
``jsonschema`` in the image):

* ``BENCH_*.json`` — the schema-versioned benchmark result files the
  runner writes at the repo root.  CI's ``bench-smoke`` job and the
  pipeline tests both call :func:`validate_bench` so a malformed file
  can never land silently.
* Chrome-trace exports — :func:`validate_chrome_trace` checks the
  Trace Event Format essentials Perfetto needs to load the file.
* Post-mortem dumps — :func:`validate_postmortem` checks the bundles
  the flight recorder (:mod:`repro.obs.flight`) snapshots when
  containment fires.
* Telemetry-plane documents — :func:`validate_telemetry_frame` checks
  the server-push frames ``telemetry.subscribe`` streams, and
  :func:`validate_telemetry_snapshot` checks the ``telemetry.snapshot``
  rollup (see ``docs/observability.md``, "The telemetry plane").

Validators return a list of problems (empty = valid) so callers can
report every defect at once rather than dying on the first.
"""

from __future__ import annotations

from typing import Any

BENCH_SCHEMA_NAME = "covirt-bench"
BENCH_SCHEMA_VERSION = 1

SWEEP_SCHEMA_NAME = "covirt-sweep"
SWEEP_SCHEMA_VERSION = 1

TELEMETRY_SCHEMA_NAME = "covirt-telemetry"
TELEMETRY_SCHEMA_VERSION = 1

#: Result-row keys each figure's artifact must carry.  ``bench-validate``
#: rejects artifacts whose rows miss these (and unknown bench names),
#: so a renamed column or an unrecognized scenario can never slip
#: through the perf-trajectory diff silently.
FIGURE_RESULT_KEYS: dict[str, frozenset[str]] = {
    "fig3": frozenset({"workload", "config", "fom"}),
    "fig4": frozenset({"region_mb", "mode", "attach_us"}),
    "fig5": frozenset({"workload", "config", "fom"}),
    "fig6": frozenset({"workload", "config", "layout", "fom"}),
    "fig7": frozenset({"workload", "config", "layout", "fom"}),
    "fig8": frozenset({"workload", "config", "fom"}),
    "recovery": frozenset(),  # heterogeneous rows: summary + per-kind MTTR
    "fuzz": frozenset(
        {"mode", "executions", "edges", "corpus_entries", "distilled_entries"}
    ),
    "serve": frozenset(
        {"clients", "requests", "requests_per_sec", "p50_ms", "p99_ms"}
    ),
    "sweep": frozenset(
        {
            "cell",
            "schedule",
            "adaptation",
            "seeds",
            "median_final_clock",
            "p95_final_clock",
            "failures",
        }
    ),
    "telemetry": frozenset(
        {"mode", "ops", "ns_per_op", "ratio_vs_flight", "frames",
         "frames_per_sec", "dropped", "drop_rate"}
    ),
}

#: Every BENCH_*.json must carry these top-level keys.
_BENCH_REQUIRED: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("schema", str),
    ("schema_version", int),
    ("bench", str),
    ("title", str),
    ("quick", bool),
    ("seed", int),
    ("sim_cycles", int),
    ("exits_by_reason", dict),
    ("metrics", dict),
    ("results", list),
)


def validate_bench(doc: Any) -> list[str]:
    """Validate one parsed ``BENCH_*.json`` document."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, types in _BENCH_REQUIRED:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"key {key!r} must be {types}, got {type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema"] != BENCH_SCHEMA_NAME:
        problems.append(
            f"schema must be {BENCH_SCHEMA_NAME!r}, got {doc['schema']!r}"
        )
    if doc["schema_version"] != BENCH_SCHEMA_VERSION:
        problems.append(
            f"unknown schema_version {doc['schema_version']} "
            f"(this tool understands schema_version {BENCH_SCHEMA_VERSION})"
        )
    if doc["bench"] not in FIGURE_RESULT_KEYS:
        problems.append(
            f"unknown bench {doc['bench']!r}; expected one of "
            f"{', '.join(sorted(FIGURE_RESULT_KEYS))}"
        )
    # wall_seconds is optional (older artifacts predate it) but when
    # present it must be a sane wall-clock duration.
    if "wall_seconds" in doc:
        wall = doc["wall_seconds"]
        if isinstance(wall, bool) or not isinstance(wall, (int, float)):
            problems.append(
                f"wall_seconds must be a number, got {type(wall).__name__}"
            )
        elif wall < 0:
            problems.append(f"wall_seconds must be >= 0, got {wall}")
    exits = doc["exits_by_reason"]
    if not exits:
        problems.append("exits_by_reason must not be empty")
    for reason, count in exits.items():
        if not isinstance(reason, str) or not isinstance(count, int):
            problems.append(
                f"exits_by_reason entries must be str->int, got "
                f"{reason!r}: {count!r}"
            )
            break
    metrics = doc["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            problems.append(f"metrics.{section} must be an object")
    histograms = metrics.get("histograms")
    if isinstance(histograms, dict):
        populated = [
            name
            for name, hist in histograms.items()
            if isinstance(hist, dict)
            and any(s.get("count", 0) > 0 for s in hist.get("samples", []))
        ]
        if not populated:
            problems.append(
                "metrics.histograms must contain at least one populated "
                "latency histogram"
            )
        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                problems.append(f"histogram {name!r} must be an object")
                continue
            bounds = hist.get("bounds")
            if not isinstance(bounds, list) or not bounds:
                problems.append(f"histogram {name!r} missing bounds")
                continue
            for sample in hist.get("samples", []):
                counts = sample.get("counts")
                if not isinstance(counts, list) or len(counts) != len(bounds) + 1:
                    problems.append(
                        f"histogram {name!r} sample counts must have "
                        f"len(bounds)+1 = {len(bounds) + 1} entries"
                    )
                    break
    required_row_keys = FIGURE_RESULT_KEYS.get(doc["bench"], frozenset())
    for i, row in enumerate(doc["results"]):
        if not isinstance(row, dict):
            problems.append(f"results[{i}] must be an object")
            continue
        missing = required_row_keys - set(row)
        if missing:
            problems.append(
                f"results[{i}] missing figure keys for "
                f"{doc['bench']!r}: {', '.join(sorted(missing))}"
            )
    return problems


#: Every ``sweep.json`` must carry these top-level keys.
_SWEEP_REQUIRED: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("schema", str),
    ("schema_version", int),
    ("quick", bool),
    ("base_seed", int),
    ("spec", dict),
    ("total_runs", int),
    ("failures", int),
    ("cells", list),
)

#: Every per-run record inside a sweep cell must carry these.
_SWEEP_RUN_KEYS = frozenset(
    {"cell_id", "seed", "fingerprint", "final_clock", "steps_applied"}
)


def validate_sweep(doc: Any) -> list[str]:
    """Validate one parsed ``sweep.json`` (covirt-sweep) document."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, types in _SWEEP_REQUIRED:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"key {key!r} must be {types}, got {type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema"] != SWEEP_SCHEMA_NAME:
        problems.append(
            f"schema must be {SWEEP_SCHEMA_NAME!r}, got {doc['schema']!r}"
        )
    if doc["schema_version"] != SWEEP_SCHEMA_VERSION:
        problems.append(
            f"unknown schema_version {doc['schema_version']} "
            f"(this tool understands schema_version {SWEEP_SCHEMA_VERSION})"
        )
    if not doc["cells"]:
        problems.append("cells must not be empty")
    total = 0
    for i, cell in enumerate(doc["cells"]):
        if not isinstance(cell, dict):
            problems.append(f"cells[{i}] must be an object")
            continue
        for key in ("cell", "cell_id", "stats", "runs"):
            if key not in cell:
                problems.append(f"cells[{i}] missing {key!r}")
        runs = cell.get("runs")
        if not isinstance(runs, list) or not runs:
            problems.append(f"cells[{i}].runs must be a non-empty array")
            continue
        total += len(runs)
        for j, run in enumerate(runs):
            if not isinstance(run, dict):
                problems.append(f"cells[{i}].runs[{j}] must be an object")
                break
            missing = _SWEEP_RUN_KEYS - set(run)
            if missing:
                problems.append(
                    f"cells[{i}].runs[{j}] missing "
                    f"{', '.join(sorted(missing))}"
                )
                break
        stats = cell.get("stats")
        if isinstance(stats, dict):
            missing = FIGURE_RESULT_KEYS["sweep"] - set(stats)
            if missing:
                problems.append(
                    f"cells[{i}].stats missing "
                    f"{', '.join(sorted(missing))}"
                )
    if not problems and total != doc["total_runs"]:
        problems.append(
            f"total_runs says {doc['total_runs']} but cells carry {total}"
        )
    return problems


def validate_chrome_trace(doc: Any) -> list[str]:
    """Validate a parsed Chrome-trace export (Trace Event Format)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    if not events:
        problems.append("traceEvents must not be empty")
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{i}] must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "I"):
            problems.append(f"traceEvents[{i}] has unsupported ph {ph!r}")
            continue
        if "name" not in event or "pid" not in event:
            problems.append(f"traceEvents[{i}] missing name/pid")
            continue
        if ph == "X":
            complete += 1
            ts, dur = event.get("ts"), event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"traceEvents[{i}] needs numeric ts >= 0")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"traceEvents[{i}] needs numeric dur >= 0")
    if not complete:
        problems.append("trace contains no complete (ph='X') events")
    return problems


#: Every post-mortem bundle must carry these top-level keys.
_POSTMORTEM_REQUIRED: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("schema", str),
    ("schema_version", int),
    ("seq", int),
    ("trigger", str),
    ("reason", str),
    ("detail", dict),
    ("clock_now", int),
    ("events_recorded", int),
    ("events", list),
    ("metrics", dict),
    ("context", dict),
)

POSTMORTEM_EVENT_TYPES = ("span", "metric", "note")


def validate_postmortem(doc: Any) -> list[str]:
    """Validate one flight-recorder post-mortem bundle."""
    from repro.obs.flight import (
        POSTMORTEM_SCHEMA_NAME,
        POSTMORTEM_SCHEMA_VERSION,
    )

    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    for key, types in _POSTMORTEM_REQUIRED:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], types):
            problems.append(
                f"key {key!r} must be {types}, got {type(doc[key]).__name__}"
            )
    if problems:
        return problems
    if doc["schema"] != POSTMORTEM_SCHEMA_NAME:
        problems.append(
            f"schema must be {POSTMORTEM_SCHEMA_NAME!r}, got {doc['schema']!r}"
        )
    if doc["schema_version"] != POSTMORTEM_SCHEMA_VERSION:
        problems.append(
            f"unknown schema_version {doc['schema_version']} (this tool "
            f"understands schema_version {POSTMORTEM_SCHEMA_VERSION})"
        )
    if not doc["events"]:
        problems.append("events must not be empty (the ring is always on)")
    for i, event in enumerate(doc["events"]):
        if not isinstance(event, dict):
            problems.append(f"events[{i}] must be an object")
            break
        etype = event.get("type")
        if etype not in POSTMORTEM_EVENT_TYPES:
            problems.append(f"events[{i}] has unknown type {etype!r}")
            break
        if etype == "span" and not {
            "name", "track", "start", "end"
        } <= set(event):
            problems.append(f"events[{i}] span missing name/track/start/end")
            break
        if etype == "metric" and not {"name", "labels", "value"} <= set(event):
            problems.append(f"events[{i}] metric missing name/labels/value")
            break
    if doc["events_recorded"] < len(doc["events"]):
        problems.append(
            "events_recorded must be >= the retained event count"
        )
    for section in ("counters", "gauges", "histograms"):
        if section not in doc["metrics"]:
            problems.append(f"metrics.{section} must be present")
    # identity is optional (bundles predating the serving layer's
    # stamping omit it) but when present it must be a flat object of
    # scalars — tenant/session_id/scenario/seed plus slice context.
    if "identity" in doc:
        identity = doc["identity"]
        if not isinstance(identity, dict):
            problems.append(
                f"identity must be an object, got {type(identity).__name__}"
            )
        else:
            for key, value in identity.items():
                if not isinstance(key, str) or isinstance(
                    value, (dict, list)
                ):
                    problems.append(
                        f"identity entries must be str -> scalar, got "
                        f"{key!r}: {value!r}"
                    )
                    break
    return problems


# -- telemetry plane ----------------------------------------------------

#: Frame types ``telemetry.subscribe`` may push.
TELEMETRY_FRAME_TYPES = ("hello", "span", "metric", "lifecycle", "drops")

#: Session lifecycle transitions carried by ``lifecycle`` frames.
TELEMETRY_LIFECYCLE_EVENTS = ("launch", "park", "shed", "kill")

#: Field requirements per frame type (beyond the common envelope).
_FRAME_REQUIRED: dict[str, tuple[tuple[str, type | tuple[type, ...]], ...]] = {
    "hello": (("protocol", str), ("version", int), ("subscriber", int)),
    "span": (
        ("tenant", str), ("name", str), ("track", str),
        ("start", int), ("end", int),
    ),
    "metric": (
        ("tenant", str), ("kind", str), ("name", str),
        ("labels", dict), ("value", (int, float)),
    ),
    "lifecycle": (("event", str), ("tenant", str)),
    "drops": (("dropped", int), ("total_dropped", int)),
}


def validate_telemetry_frame(doc: Any) -> list[str]:
    """Validate one server-push telemetry frame (covirt-telemetry)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"frame must be an object, got {type(doc).__name__}"]
    ftype = doc.get("type")
    if ftype not in TELEMETRY_FRAME_TYPES:
        return [
            f"unknown frame type {ftype!r}; expected one of "
            f"{', '.join(TELEMETRY_FRAME_TYPES)}"
        ]
    seq = doc.get("seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        problems.append(f"seq must be a non-negative integer, got {seq!r}")
    for key, types in _FRAME_REQUIRED[ftype]:
        value = doc.get(key)
        bad_bool = isinstance(value, bool) and key != "value"
        if key not in doc:
            problems.append(f"{ftype} frame missing required key {key!r}")
        elif bad_bool or not isinstance(value, types):
            problems.append(
                f"{ftype} frame key {key!r} must be {types}, "
                f"got {type(value).__name__}"
            )
    if problems:
        return problems
    if ftype == "hello":
        if doc["protocol"] != TELEMETRY_SCHEMA_NAME:
            problems.append(
                f"hello protocol must be {TELEMETRY_SCHEMA_NAME!r}, "
                f"got {doc['protocol']!r}"
            )
        if doc["version"] != TELEMETRY_SCHEMA_VERSION:
            problems.append(
                f"unknown telemetry version {doc['version']} (this tool "
                f"understands version {TELEMETRY_SCHEMA_VERSION})"
            )
    elif ftype == "span":
        if doc["end"] < doc["start"]:
            problems.append("span frame end must be >= start")
    elif ftype == "lifecycle":
        if doc["event"] not in TELEMETRY_LIFECYCLE_EVENTS:
            problems.append(
                f"unknown lifecycle event {doc['event']!r}; expected one "
                f"of {', '.join(TELEMETRY_LIFECYCLE_EVENTS)}"
            )
    elif ftype == "drops":
        if doc["dropped"] < 1:
            problems.append("drops frame must report dropped >= 1")
        if doc["total_dropped"] < doc["dropped"]:
            problems.append("drops frame total_dropped must be >= dropped")
    if "session_id" in doc and doc["session_id"] is not None and not (
        isinstance(doc["session_id"], str)
    ):
        problems.append("session_id must be a string or null")
    return problems


#: Rollup keys every per-tenant (and the global) section must carry.
TELEMETRY_ROLLUP_KEYS = frozenset(
    {
        "sessions",
        "parked",
        "steps_applied",
        "sim_cycles",
        "slices_run",
        "oracle_violations",
        "postmortems",
        "exits",
    }
)

#: Keys the ``daemon`` section of a snapshot must carry.
_SNAPSHOT_DAEMON_KEYS = frozenset(
    {
        "requests_total",
        "requests_per_sec",
        "request_p50_us",
        "request_p99_us",
        "shed",
        "connections",
        "subscribers",
        "backlog",
    }
)


def validate_telemetry_snapshot(doc: Any) -> list[str]:
    """Validate one ``telemetry.snapshot`` rollup document."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"snapshot must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != TELEMETRY_SCHEMA_NAME:
        problems.append(
            f"schema must be {TELEMETRY_SCHEMA_NAME!r}, "
            f"got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        problems.append(
            f"unknown schema_version {doc.get('schema_version')!r} (this "
            f"tool understands schema_version {TELEMETRY_SCHEMA_VERSION})"
        )
    if doc.get("kind") != "snapshot":
        problems.append(f"kind must be 'snapshot', got {doc.get('kind')!r}")
    uptime = doc.get("uptime_seconds")
    if isinstance(uptime, bool) or not isinstance(uptime, (int, float)) or (
        uptime < 0
    ):
        problems.append("uptime_seconds must be a number >= 0")
    daemon = doc.get("daemon")
    if not isinstance(daemon, dict):
        problems.append("daemon section must be an object")
    else:
        missing = _SNAPSHOT_DAEMON_KEYS - set(daemon)
        if missing:
            problems.append(
                f"daemon section missing {', '.join(sorted(missing))}"
            )
        if not isinstance(daemon.get("subscribers"), list):
            problems.append("daemon.subscribers must be an array")
    for section in ("global",):
        rollup = doc.get(section)
        if not isinstance(rollup, dict):
            problems.append(f"{section} section must be an object")
            continue
        missing = TELEMETRY_ROLLUP_KEYS - set(rollup)
        if missing:
            problems.append(
                f"{section} section missing {', '.join(sorted(missing))}"
            )
    tenants = doc.get("tenants")
    if not isinstance(tenants, dict):
        problems.append("tenants section must be an object")
    else:
        for tenant, rollup in tenants.items():
            if not isinstance(rollup, dict):
                problems.append(f"tenants[{tenant!r}] must be an object")
                break
            missing = TELEMETRY_ROLLUP_KEYS - set(rollup)
            if missing:
                problems.append(
                    f"tenants[{tenant!r}] missing "
                    f"{', '.join(sorted(missing))}"
                )
                break
    return problems
