"""Offline trace analytics for exported span streams.

``python -m repro trace-analyze`` (and the tests) load either a
Chrome-trace JSON produced by ``trace-export`` or a timestamp-free
golden transcript, rebuild the span tree, and compute:

* the **critical path** per track — the greedy longest-duration descent
  from that track's dominant root span;
* **exit-latency attribution** — ``hv.exit.<reason>`` spans aggregated
  by reason and by enclave, rendered as a top-k table;
* **flamegraph-style rollups** — folded ``parent;child`` name paths
  with call counts, total and self cycles;
* a **structural diff** between two traces — paths added, removed, or
  retimed beyond a relative threshold.

Everything renders deterministically (sorted keys, stable tie-breaks),
so same-seed traces produce byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.hw.clock import CYCLES_PER_US

#: Span-name prefix whose suffix names the VM-exit reason.
EXIT_PREFIX = "hv.exit."


@dataclass
class TraceSpan:
    """One reconstructed span (timing optional for golden transcripts)."""

    name: str
    track: str
    start: int
    end: int
    depth: int
    args: dict[str, Any] = field(default_factory=dict)
    children: list["TraceSpan"] = field(default_factory=list)

    @property
    def duration(self) -> int:
        return self.end - self.start

    @property
    def self_cycles(self) -> int:
        """Duration not covered by (non-overlapping) children."""
        return max(0, self.duration - sum(c.duration for c in self.children))


@dataclass
class TraceModel:
    """A span forest, grouped per track, ready for analytics."""

    spans: list[TraceSpan]
    timed: bool = True

    @property
    def tracks(self) -> list[str]:
        return sorted({span.track for span in self.spans})

    def roots(self, track: str) -> list[TraceSpan]:
        return [s for s in self.spans if s.track == track and s.depth == 0]

    def by_track(self, track: str) -> list[TraceSpan]:
        return [s for s in self.spans if s.track == track]


# -- loading ------------------------------------------------------------


def _nest(flat: list[TraceSpan]) -> None:
    """Rebuild parent/child links per track by interval containment.

    Spans arrive in start order (the exporter preserves it); a span is
    a child of the innermost still-open span on its track whose
    interval contains it.  Zero-duration spans (instants) are always
    leaves — a chain of instants at one timestamp is a sibling run, not
    a nest.
    """
    stacks: dict[str, list[TraceSpan]] = {}
    for span in flat:
        stack = stacks.setdefault(span.track, [])
        while stack and not (
            stack[-1].start <= span.start and span.end <= stack[-1].end
        ):
            stack.pop()
        if stack:
            span.depth = stack[-1].depth + 1
            stack[-1].children.append(span)
        else:
            span.depth = 0
        if span.duration > 0:
            stack.append(span)


def load_chrome_trace(source: str | Path | dict) -> TraceModel:
    """Load a ``trace-export`` document (path or already-parsed dict)."""
    doc = (
        source
        if isinstance(source, dict)
        else json.loads(Path(source).read_text())
    )
    if "traceEvents" not in doc:
        raise ValueError("not a Chrome-trace document (no traceEvents)")
    tid_names: dict[int, str] = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tid_names[ev["tid"]] = ev["args"]["name"]
    cycles_per_us = doc.get("otherData", {}).get(
        "cycles_per_us", CYCLES_PER_US
    )
    flat: list[TraceSpan] = []
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        start = round(ev["ts"] * cycles_per_us)
        dur = int(args.get("cycles", round(ev["dur"] * cycles_per_us)))
        flat.append(
            TraceSpan(
                name=ev["name"],
                track=tid_names.get(ev["tid"], f"tid{ev['tid']}"),
                start=start,
                end=start + dur,
                depth=0,
                args=args,
            )
        )
    _nest(flat)
    return TraceModel(flat, timed=True)


def load_golden_transcript(source: str | Path | Iterable[str]) -> TraceModel:
    """Load a golden transcript (``indent [track] name`` lines).

    Golden transcripts carry structure but no timing, so the resulting
    model supports rollups and diffs (by count) but not latency
    analytics.
    """
    if isinstance(source, (str, Path)):
        lines = Path(source).read_text().splitlines()
    else:
        lines = list(source)
    flat: list[TraceSpan] = []
    stack: list[TraceSpan] = []
    for line in lines:
        if not line.strip():
            continue
        stripped = line.lstrip(" ")
        depth = (len(line) - len(stripped)) // 2
        if not stripped.startswith("["):
            raise ValueError(f"malformed transcript line: {line!r}")
        track, _, name = stripped[1:].partition("] ")
        span = TraceSpan(name=name, track=track, start=0, end=0, depth=depth)
        while stack and stack[-1].depth >= depth:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        flat.append(span)
    return TraceModel(flat, timed=False)


def load_trace(path: str | Path) -> TraceModel:
    """Sniff the format: ``.json`` → Chrome trace, else transcript."""
    path = Path(path)
    text = path.read_text()
    if text.lstrip().startswith("{"):
        return load_chrome_trace(json.loads(text))
    return load_golden_transcript(text.splitlines())


# -- analytics ----------------------------------------------------------


def critical_path(model: TraceModel, track: str) -> list[TraceSpan]:
    """Greedy longest-duration descent from the track's dominant root."""
    roots = model.roots(track)
    if not roots:
        return []
    path: list[TraceSpan] = []
    # Stable tie-break on (duration, start, name) keeps reports
    # deterministic even when durations collide.
    node = max(roots, key=lambda s: (s.duration, -s.start, s.name))
    while node is not None:
        path.append(node)
        node = max(
            node.children,
            key=lambda s: (s.duration, -s.start, s.name),
            default=None,
        )
    return path


def exit_attribution(model: TraceModel) -> dict[str, dict[str, Any]]:
    """Aggregate ``hv.exit.*`` spans by reason (and enclave within)."""
    table: dict[str, dict[str, Any]] = {}
    for span in model.spans:
        if not span.name.startswith(EXIT_PREFIX):
            continue
        reason = span.name[len(EXIT_PREFIX):]
        row = table.setdefault(
            reason, {"count": 0, "cycles": 0, "by_enclave": {}}
        )
        row["count"] += 1
        row["cycles"] += span.duration
        enclave = str(span.args.get("enclave", "?"))
        per = row["by_enclave"].setdefault(enclave, {"count": 0, "cycles": 0})
        per["count"] += 1
        per["cycles"] += span.duration
    return table


def _fold(span: TraceSpan, prefix: str, folds: dict[str, dict[str, int]]) -> None:
    path = f"{prefix};{span.name}" if prefix else span.name
    row = folds.setdefault(path, {"count": 0, "cycles": 0, "self": 0})
    row["count"] += 1
    row["cycles"] += span.duration
    row["self"] += span.self_cycles
    for child in span.children:
        _fold(child, path, folds)


def rollups(model: TraceModel, track: str | None = None) -> dict[str, dict[str, int]]:
    """Flamegraph-style folded name-paths → {count, cycles, self}."""
    folds: dict[str, dict[str, int]] = {}
    for span in model.spans:
        if span.depth != 0:
            continue
        if track is not None and span.track != track:
            continue
        _fold(span, f"[{span.track}]", folds)
    return folds


@dataclass
class TraceDiff:
    """Structural diff between two traces' folded paths."""

    added: list[str]
    removed: list[str]
    #: path → (cycles_a, cycles_b) for paths retimed beyond threshold.
    retimed: dict[str, tuple[int, int]]
    #: path → (count_a, count_b) for paths whose call count changed.
    recounted: dict[str, tuple[int, int]]

    @property
    def empty(self) -> bool:
        return not (
            self.added or self.removed or self.retimed or self.recounted
        )


def diff_traces(
    a: TraceModel, b: TraceModel, *, threshold: float = 0.05
) -> TraceDiff:
    """Compare folded paths: membership, call counts, and (for timed
    traces) total cycles retimed beyond ``threshold`` (relative)."""
    fa, fb = rollups(a), rollups(b)
    added = sorted(set(fb) - set(fa))
    removed = sorted(set(fa) - set(fb))
    retimed: dict[str, tuple[int, int]] = {}
    recounted: dict[str, tuple[int, int]] = {}
    for path in sorted(set(fa) & set(fb)):
        ra, rb = fa[path], fb[path]
        if ra["count"] != rb["count"]:
            recounted[path] = (ra["count"], rb["count"])
        if a.timed and b.timed:
            base = max(ra["cycles"], 1)
            if abs(rb["cycles"] - ra["cycles"]) / base > threshold:
                retimed[path] = (ra["cycles"], rb["cycles"])
    return TraceDiff(added, removed, retimed, recounted)


# -- rendering ----------------------------------------------------------


def _fmt_cycles(cycles: int) -> str:
    return f"{cycles:,}"


def render_report(
    model: TraceModel, *, source: str = "", top_k: int = 10
) -> str:
    """The deterministic ``trace-analyze`` report."""
    lines = ["# trace-analyze report"]
    if source:
        lines.append(f"source: {source}")
    lines.append(
        f"spans: {len(model.spans)}  tracks: {len(model.tracks)}"
        f"  timed: {'yes' if model.timed else 'no'}"
    )
    if model.timed:
        lines.append("")
        lines.append("## critical path (per track)")
        for track in model.tracks:
            path = critical_path(model, track)
            if not path:
                continue
            lines.append(f"[{track}] root={_fmt_cycles(path[0].duration)} cycles")
            for span in path:
                lines.append(
                    f"{'  ' * (span.depth + 1)}{span.name}"
                    f"  {_fmt_cycles(span.duration)}"
                )
        lines.append("")
        lines.append(f"## exit latency attribution (top {top_k})")
        table = exit_attribution(model)
        if table:
            ranked = sorted(
                table.items(), key=lambda kv: (-kv[1]["cycles"], kv[0])
            )[:top_k]
            lines.append(
                f"{'reason':24s} {'count':>6s} {'cycles':>12s} {'mean':>8s}"
                "  by-enclave"
            )
            for reason, row in ranked:
                per = " ".join(
                    f"e{eid}:{d['count']}"
                    for eid, d in sorted(row["by_enclave"].items())
                )
                mean = row["cycles"] // max(row["count"], 1)
                lines.append(
                    f"{reason:24s} {row['count']:>6d}"
                    f" {_fmt_cycles(row['cycles']):>12s}"
                    f" {_fmt_cycles(mean):>8s}  {per}"
                )
        else:
            lines.append("(no hv.exit.* spans)")
    lines.append("")
    lines.append("## rollups (folded paths)")
    folds = rollups(model)
    header = f"{'count':>6s} {'cycles':>12s} {'self':>12s}  path"
    lines.append(header)
    for path in sorted(folds):
        row = folds[path]
        lines.append(
            f"{row['count']:>6d} {_fmt_cycles(row['cycles']):>12s}"
            f" {_fmt_cycles(row['self']):>12s}  {path}"
        )
    return "\n".join(lines) + "\n"


def render_diff(
    diff: TraceDiff, *, source_a: str = "a", source_b: str = "b"
) -> str:
    """The deterministic ``trace-analyze --diff`` report."""
    lines = [
        "# trace-diff report",
        f"a: {source_a}",
        f"b: {source_b}",
        "",
    ]
    if diff.empty:
        lines.append("traces are structurally identical")
        return "\n".join(lines) + "\n"
    for path in diff.added:
        lines.append(f"added    {path}")
    for path in diff.removed:
        lines.append(f"removed  {path}")
    for path, (ca, cb) in sorted(diff.recounted.items()):
        lines.append(f"recount  {path}  {ca} → {cb}")
    for path, (ca, cb) in sorted(diff.retimed.items()):
        base = max(ca, 1)
        delta = 100.0 * (cb - ca) / base
        lines.append(
            f"retimed  {path}  {_fmt_cycles(ca)} → {_fmt_cycles(cb)}"
            f" ({delta:+.1f}%)"
        )
    return "\n".join(lines) + "\n"
