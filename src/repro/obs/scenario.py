"""The canonical observability scenario.

One deterministic boot → protection-probe → reconfiguration → fault
containment → recovery → checkpoint run, used by three consumers:

* ``python -m repro trace-export`` — renders this run's span stream as
  Chrome-trace JSON;
* ``python -m repro metrics-dump`` — renders the same run's metrics;
* ``tests/obs/test_golden_traces.py`` — pins the timestamp-free golden
  transcript of the span stream, so renaming or dropping an exit-path
  span fails CI.

Everything here is a pure function of ``seed`` (and the simulator is
deterministic by construction), so two runs produce byte-identical
span streams and metric dumps.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.commands import CommandType
from repro.core.faults import EnclaveFaultError
from repro.core.features import CovirtConfig
from repro.fuzz.rng import DEFAULT_SEED
from repro.harness.env import CovirtEnvironment, Layout
from repro.hw.ioports import SERIAL_COM1
from repro.hw.memory import PAGE_SIZE
from repro.hw.msr import MSR
from repro.pisces.enclave import Enclave
from repro.recovery.policy import RestartWithBackoff
from repro.xemem.segment import HOST_ENCLAVE_ID

GiB = 1 << 30

#: Wild address the containment fault dereferences (host half of DRAM).
WILD_ADDR = 50 * GiB

CANONICAL_LAYOUT = Layout(
    "canon-2c/2n", {0: 1, 1: 1}, {0: GiB, 1: GiB}
)


def protection_probe(env: CovirtEnvironment, enclave: Enclave) -> None:
    """Exercise every non-fatal protection path once, so a run records
    a spread of exit reasons: trapped MSR read, denied sensitive MSR
    write, denied host I/O port access, CPUID/XSETBV emulation, a
    filtered IPI, and an NMI-doorbell command drain."""
    bsp = enclave.assignment.core_ids[0]
    port = enclave.port
    port.rdmsr(bsp, MSR.IA32_FS_BASE)
    port.wrmsr(bsp, MSR.IA32_FS_BASE, 0x7F00_0000)
    port.wrmsr(bsp, MSR.IA32_APIC_BASE, 0xFEE0_0000)  # sensitive: denied
    port.io_in(bsp, SERIAL_COM1)  # host-owned: denied, floats 0xFF
    port.cpuid(bsp, 0)
    port.xsetbv(bsp, 0x7)
    # Whitelist starts empty: an unsanctioned IPI is filtered, not sent.
    port.send_ipi(bsp, (bsp + 1) % env.machine.num_cores, 99)
    ctx = env.controller.context_for(enclave.enclave_id)
    if ctx is not None:
        env.controller.issue_command(ctx, CommandType.PING)


def run_canonical_scenario(
    seed: int = DEFAULT_SEED,
    postmortem_dir: str | Path | None = None,
) -> CovirtEnvironment:
    """Run the canonical demo and return its (instrumented) environment.

    With ``postmortem_dir`` set, the flight recorder writes every
    post-mortem bundle the run triggers (the containment fault produces
    at least one) into that directory as sorted-key JSON.
    """
    env = CovirtEnvironment()
    if postmortem_dir is not None:
        env.machine.obs.flight.dump_dir = Path(postmortem_dir)
    tracer = env.machine.obs.tracer

    with tracer.span("scenario.boot", category="scenario", track="scenario"):
        service = env.launch_supervised(
            CANONICAL_LAYOUT,
            CovirtConfig.full(),
            RestartWithBackoff(base_delay_cycles=100_000),
            name="canonical",
        )

    with tracer.span("scenario.probe", category="scenario", track="scenario"):
        protection_probe(env, service.enclave)

    with tracer.span(
        "scenario.reconfigure", category="scenario", track="scenario"
    ):
        # Hot-add then hot-remove memory: an EPT map (no coordination)
        # followed by an unmap + machine-wide TLB-shootdown drain.
        eid = service.enclave.enclave_id
        region = env.mcp.kmod.add_memory(eid, 16 * PAGE_SIZE, 0)
        env.mcp.kmod.remove_memory(eid, region)

    with tracer.span("scenario.share", category="scenario", track="scenario"):
        # Resource-sharing traffic: a host-owned XEMEM segment attached
        # and detached by the enclave, plus one command-channel round
        # trip — so the xemem.* and hobbes.cmd spans are pinned by the
        # golden transcript.
        eid = service.enclave.enclave_id
        segment = env.mcp.xemem.make(
            HOST_ENCLAVE_ID, "canon-shared", 48 * GiB, 16 * PAGE_SIZE
        )
        env.mcp.xemem.attach(eid, segment.segid)
        env.mcp.xemem.detach(eid, segment.segid)
        env.mcp.xemem.remove(segment.segid)
        channel = env.mcp.channels[eid]
        channel.host_send("ping", {"n": 1})
        channel.enclave_recv()
        channel.enclave_send("pong", {"n": 1})
        channel.host_recv()

    with tracer.span("scenario.fault", category="scenario", track="scenario"):
        # The paper's containment story: a wild read far outside the
        # enclave EPT-faults, the enclave is terminated, the supervisor
        # scrubs, relaunches, and replays — all inside this span.
        bsp = service.enclave.assignment.core_ids[0]
        try:
            service.enclave.port.read(bsp, WILD_ADDR, 8)
        except EnclaveFaultError:
            pass

    with tracer.span(
        "scenario.checkpoint", category="scenario", track="scenario"
    ):
        env.recovery.checkpoint_now("canonical")

    with tracer.span("scenario.fuzz", category="scenario", track="scenario"):
        # A short seeded fuzz burst on the same machine, so fuzz-step
        # spans are part of the pinned transcript too.
        from repro.fuzz.engine import FuzzEngine

        FuzzEngine(seed=seed, schedule="baseline", env=env).run(8)

    return env
