"""Chrome-trace / Perfetto export for span streams.

The output follows the Trace Event Format (the JSON Perfetto and
``chrome://tracing`` both load): a ``traceEvents`` array of ``ph:"X"``
complete events with microsecond ``ts``/``dur``.  Simulated cycles are
converted with the machine's nominal frequency, so one simulated
microsecond renders as one trace microsecond.

Tracks map onto the trace's process/thread grid: every distinct span
``track`` (``core3``, ``controller``, ``recovery``, ``fuzz``, ...)
becomes a named thread inside a single "covirt-sim" process, announced
with ``ph:"M"`` thread_name metadata so the UI shows readable lanes.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.hw.clock import CYCLES_PER_US
from repro.obs.spans import Span

#: Synthetic pid for the whole simulation.
TRACE_PID = 1


def _track_tids(spans: Iterable[Span]) -> dict[str, int]:
    """Stable track → tid assignment (sorted, so exports are
    deterministic regardless of span arrival order)."""
    tracks = sorted({span.track for span in spans})
    return {track: tid for tid, track in enumerate(tracks, start=1)}


def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Render spans as a Trace Event Format document (JSON-ready)."""
    spans = list(spans)
    tids = _track_tids(spans)
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "covirt-sim"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in spans:
        end = span.end if span.end is not None else span.start
        args = {str(k): v for k, v in span.args.items()}
        args["cycles"] = end - span.start
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category or "sim",
                "pid": TRACE_PID,
                "tid": tids[span.track],
                "ts": span.start / CYCLES_PER_US,
                "dur": (end - span.start) / CYCLES_PER_US,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "simulated-cycles",
            "cycles_per_us": CYCLES_PER_US,
        },
    }


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write the export to ``path``; returns the event count."""
    doc = chrome_trace(spans)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return len(doc["traceEvents"])
