"""The always-on flight recorder.

Production tracing stacks keep a cheap, bounded ring of recent activity
at all times so that when something goes wrong the *lead-up* is already
captured — no re-run needed.  :class:`FlightRecorder` is that ring for
the simulated machine: it subscribes to span completions and metric
updates on ``machine.obs`` and retains the last ``capacity`` events.

When a containment event fires — a hypervisor terminates a guest, a
fuzz oracle finds a broken invariant, the recovery supervisor parks a
service — the subsystem that detected it calls :meth:`postmortem`,
which freezes a schema-versioned bundle: the event tail, a full metric
snapshot, and a state summary from every registered context provider
(the controller contributes enclave/EPT/whitelist/queue state, the
supervisor contributes service phases).  With :attr:`dump_dir` set the
bundle is also written to disk as deterministic sorted-key JSON, so two
same-seed runs produce byte-identical dumps.

Like everything in ``repro.obs`` the recorder is strictly passive: it
never advances the clock, consumes randomness, or perturbs any
simulation state, so enabling it changes no result and no fuzz
fingerprint.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.clock import Clock
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import Span

#: Default event-ring depth; a post-mortem carries at most this tail.
DEFAULT_FLIGHT_CAPACITY = 512

#: In-memory bundles retained (disk dumps are unbounded by this).
MAX_RETAINED_POSTMORTEMS = 32

POSTMORTEM_SCHEMA_NAME = "covirt-postmortem"
POSTMORTEM_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce span/metric args into a JSON-stable form."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(
            value.items(), key=lambda kv: str(kv[0])
        )}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=str)
        return [_jsonable(v) for v in items]
    return str(value)


class FlightRecorder:
    """Bounded ring of recent observability events + post-mortem dumps."""

    def __init__(
        self, clock: "Clock", capacity: int = DEFAULT_FLIGHT_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("flight-recorder capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: Total events ever recorded (``recorded - len(tail())`` is the
        #: number that wrapped out of the ring).
        self.recorded = 0
        #: Who this recorder is recording *for*: stable identity stamped
        #: into every post-mortem bundle (the serving layer fills in
        #: tenant / session_id / scenario / seed plus scheduler-slice
        #: context at park time) so a bundle pulled off a busy daemon's
        #: disk is attributable without grepping the daemon log.
        self.identity: dict[str, Any] = {}
        #: State summarizers snapshotted into every bundle, by name.
        self.context_providers: dict[str, Callable[[], Any]] = {}
        #: Set by :class:`~repro.obs.Observability`; snapshotted whole.
        self.metrics: "MetricsRegistry | None" = None
        #: When set, every post-mortem is also written here as
        #: ``postmortem_<seq>_<trigger>.json``.
        self.dump_dir: str | Path | None = None
        #: The most recent bundles (bounded), newest last.
        self.postmortems: deque[dict[str, Any]] = deque(
            maxlen=MAX_RETAINED_POSTMORTEMS
        )
        #: Paths written so far (when :attr:`dump_dir` is set).
        self.dumped_paths: list[Path] = []
        self._seq = 0

    # -- feeds -----------------------------------------------------------

    def record_span(self, span: "Span") -> None:
        """``SpanTracer.on_close`` observer: retain the completed span."""
        self._append(
            {
                "type": "span",
                "name": span.name,
                "track": span.track,
                "category": span.category,
                "start": span.start,
                "end": span.end if span.end is not None else span.start,
                "args": _jsonable(span.args),
            }
        )

    def record_metric(
        self, kind: str, name: str, labels: dict[str, Any], value: float
    ) -> None:
        """``MetricsRegistry.hooks`` observer: retain the update delta."""
        self._append(
            {
                "type": "metric",
                "kind": kind,
                "name": name,
                "labels": {k: str(v) for k, v in sorted(labels.items())},
                "value": value,
                "tsc": self.clock.now,
            }
        )

    def note(self, kind: str, detail: str, **extra: Any) -> None:
        """Record a free-form marker (e.g. a containment trigger)."""
        self._append(
            {
                "type": "note",
                "kind": kind,
                "detail": detail,
                "tsc": self.clock.now,
                **({"extra": _jsonable(extra)} if extra else {}),
            }
        )

    def _append(self, event: dict[str, Any]) -> None:
        self._ring.append(event)
        self.recorded += 1

    # -- context ---------------------------------------------------------

    def register_context(self, name: str, provider: Callable[[], Any]) -> None:
        """Register a state summarizer included in every bundle.  The
        provider must return JSON-ready, deterministically-ordered data
        and must not mutate simulation state."""
        self.context_providers[name] = provider

    # -- introspection ---------------------------------------------------

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        events = list(self._ring)
        return events if n is None else events[-n:]

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        """Forget ring contents and retained bundles (providers stay)."""
        self._ring.clear()
        self.recorded = 0
        self.postmortems.clear()
        self._seq = 0

    # -- post-mortem capture ---------------------------------------------

    def postmortem(
        self, trigger: str, reason: str = "", **detail: Any
    ) -> dict[str, Any]:
        """Freeze a post-mortem bundle right now.

        ``trigger`` names the event class (``containment``, ``oracle``,
        ``recovery-parked``); ``reason`` is its one-line description.
        Returns the bundle (also retained on :attr:`postmortems` and,
        with :attr:`dump_dir` set, written to disk).
        """
        bundle: dict[str, Any] = {
            "schema": POSTMORTEM_SCHEMA_NAME,
            "schema_version": POSTMORTEM_SCHEMA_VERSION,
            "seq": self._seq,
            "trigger": trigger,
            "reason": reason,
            "identity": _jsonable(self.identity),
            "detail": _jsonable(detail),
            "clock_now": self.clock.now,
            "events_recorded": self.recorded,
            "events": self.tail(),
            "metrics": self.metrics.to_dict() if self.metrics else {},
            "context": {
                name: _jsonable(self.context_providers[name]())
                for name in sorted(self.context_providers)
            },
        }
        self._seq += 1
        self.postmortems.append(bundle)
        if self.dump_dir is not None:
            directory = Path(self.dump_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = directory / f"postmortem_{bundle['seq']:03d}_{trigger}.json"
            path.write_text(
                json.dumps(bundle, indent=1, sort_keys=True) + "\n"
            )
            self.dumped_paths.append(path)
        if self.metrics is not None:
            from repro.obs import metric_names

            self.metrics.counter(
                metric_names.POSTMORTEMS, "post-mortem bundles captured"
            ).inc(trigger=trigger)
        return bundle
