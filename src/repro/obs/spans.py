"""Span-based structured tracing.

A :class:`SpanTracer` records nestable spans over **simulated** time:
every timestamp is a cycle count read from the machine's
:class:`~repro.hw.clock.Clock` (or a core's TSC, which runs on the same
simulated timeline), never the wall clock — so two runs of the same
seeded scenario produce byte-identical span streams, and the golden
trace tests can pin the instrumentation down.

Because the whole simulator executes on one Python thread, call nesting
*is* causal nesting: a single span stack suffices machine-wide, and a
span's ``depth`` reflects the true dynamic scope it opened in (a
recovery span opened inside an EPT-violation handler shows up as that
exit's descendant).  Spans still carry a ``track`` label (``core3``,
``controller``, ``recovery``, ``fuzz``) so exports can lay them out on
separate timelines.

Emission has a **zero-overhead fast path**: with :attr:`SpanTracer.enabled`
cleared, every recording call collapses to one attribute test and
returns the shared :data:`NULL_SPAN` — no allocation, no clock read, no
stack or list mutation, no observer fan-out.  The telemetry plane and
the benchmarks rely on this: instrumentation left in hot simulation
loops costs (almost) nothing when nobody is watching
(``benchmarks/bench_telemetry_overhead.py`` pins the ratio).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.clock import Clock

#: Default bound on retained spans; long fuzz campaigns stay O(capacity).
DEFAULT_SPAN_CAPACITY = 200_000


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: int
    parent_id: int | None
    depth: int
    name: str
    category: str
    track: str
    start: int
    end: int | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Cycles between open and close (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0

    @property
    def closed(self) -> bool:
        return self.end is not None

    def golden_line(self) -> str:
        """The timestamp-free form the golden-trace tests assert on:
        nesting (indent), track, and name — renames and drops break it,
        cost-model changes do not."""
        return f"{'  ' * self.depth}[{self.track}] {self.name}"


#: Shared sentinel every recording call returns while the tracer is
#: disabled.  Never placed on the stack, never closed, never observed;
#: ``end()`` recognises it by identity and no-ops.
NULL_SPAN = Span(
    span_id=-1, parent_id=None, depth=0,
    name="", category="", track="", start=0, end=0,
)


class SpanTracer:
    """Machine-wide span recorder."""

    def __init__(
        self, clock: "Clock", capacity: int = DEFAULT_SPAN_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("span capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        #: The fast-path gate: while False, begin/complete/instant return
        #: :data:`NULL_SPAN` without touching the clock, the span list,
        #: or any observer.  Spans already open keep closing normally so
        #: the stack can never wedge across a disable/enable cycle.
        self.enabled = True
        #: Completed and open spans, in *start* order.
        self.spans: list[Span] = []
        #: Spans discarded once capacity was reached.
        self.dropped = 0
        #: Passive observers called with every span the moment it closes
        #: (the flight recorder's feed).  Observers must never advance
        #: the clock or touch simulation state.
        self.on_close: list[Callable[[Span], None]] = []
        self._stack: list[Span] = []
        self._next_id = 0

    def _closed(self, span: Span) -> None:
        for observer in self.on_close:
            observer(span)

    # -- time ------------------------------------------------------------

    def _resolve(self, now: int | Callable[[], int] | None) -> int:
        if now is None:
            return self.clock.now
        if callable(now):
            return int(now())
        return int(now)

    # -- recording -------------------------------------------------------

    def begin(
        self,
        name: str,
        *,
        category: str = "",
        track: str = "main",
        now: int | Callable[[], int] | None = None,
        **args: Any,
    ) -> Span:
        """Open a span at the current simulated time.  The span nests
        under whatever span is currently open."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            name=name,
            category=category,
            track=track,
            start=self._resolve(now),
            args=dict(args),
        )
        self._next_id += 1
        self._stack.append(span)
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def end(
        self, span: Span, *, now: int | Callable[[], int] | None = None
    ) -> Span:
        """Close ``span`` (and, defensively, anything opened inside it
        that was left dangling)."""
        if span is NULL_SPAN:
            return span
        when = self._resolve(now)
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = max(when, top.start)
                self._closed(top)
            if top is span:
                break
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        category: str = "",
        track: str = "main",
        now: int | Callable[[], int] | None = None,
        **args: Any,
    ) -> Iterator[Span]:
        """Context-managed span; ``now`` may be a callable (e.g. a
        core's ``read_tsc``) sampled at both open and close."""
        span = self.begin(name, category=category, track=track, now=now, **args)
        try:
            yield span
        finally:
            self.end(span, now=now)

    def complete(
        self,
        name: str,
        start: int,
        end: int,
        *,
        category: str = "",
        track: str = "main",
        **args: Any,
    ) -> Span:
        """Record an already-finished interval (explicit start/end) as a
        child of the currently open span."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            name=name,
            category=category,
            track=track,
            start=int(start),
            end=max(int(end), int(start)),
            args=dict(args),
        )
        self._next_id += 1
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        self._closed(span)
        return span

    def instant(
        self,
        name: str,
        *,
        category: str = "",
        track: str = "main",
        now: int | Callable[[], int] | None = None,
        **args: Any,
    ) -> Span:
        """A zero-duration marker."""
        if not self.enabled:
            return NULL_SPAN
        when = self._resolve(now)
        return self.complete(
            name, when, when, category=category, track=track, **args
        )

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def names(self) -> list[str]:
        return [span.name for span in self.spans]

    def golden_lines(self) -> list[str]:
        """The deterministic, timestamp-free transcript the golden-trace
        regression tests compare against a checked-in file."""
        return [span.golden_line() for span in self.spans]

    def render(self, limit: int | None = None) -> str:
        """Human-readable tree tail (timestamps included)."""
        spans = self.spans if limit is None else self.spans[-limit:]
        lines = []
        for span in spans:
            end = span.end if span.end is not None else "..."
            lines.append(
                f"{span.start:>14d}..{end:<14} "
                f"{'  ' * span.depth}{span.name} [{span.track}]"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        """Forget recorded spans (open spans stay on the stack)."""
        self.spans = [span for span in self._stack]
        self.dropped = 0
