"""The metrics registry: counters, gauges, cycle-bucketed histograms.

One :class:`MetricsRegistry` lives on each :class:`~repro.hw.machine.Machine`
(``machine.obs.metrics``) — **instance-scoped, never module-global** —
so concurrent experiments on separate machines can never cross-
contaminate counts (see ``tests/perf/test_counters_isolation.py``).

Metric naming follows ``<subsystem>.<what>[_<unit>]`` with labels for
the dimensions (``reason``, ``core``, ``enclave``, ``kind``); the full
conventions live in ``docs/observability.md``.  All label values are
coerced to strings so samples sort deterministically, which keeps every
rendering — text, JSON, BENCH_*.json — byte-stable for a given run.
"""

from __future__ import annotations

import bisect
from typing import Any

# -- canonical metric names (grep-ability + typo-proof tests) -----------

#: VM exits, by ``reason`` / ``core`` / ``enclave``.
EXITS = "covirt.exits"
#: Exit round-trip latency histogram (cycles), by ``reason``.
EXIT_CYCLES = "covirt.exit_cycles"
#: Commands drained from per-core queues, by ``type``.
COMMANDS = "covirt.commands"
#: Trapped ICR writes, by ``verdict`` (forwarded | filtered).
IPIS = "covirt.ipis"
#: Guest terminations, by fault ``kind``.
TERMINATIONS = "covirt.terminations"
#: Controller configuration rewrites, by ``kind`` (ept-map, ...).
CONFIG_UPDATES = "controller.config_updates"
#: Cores interrupted per MEMORY_UPDATE drain (TLB-shootdown fan-out).
SHOOTDOWN_FANOUT = "controller.shootdown_fanout"
#: Detection → RUNNING recovery latency (cycles), by fault ``kind``.
MTTR_CYCLES = "recovery.mttr_cycles"
#: Per-checkpoint cost (cycles).
CHECKPOINT_CYCLES = "recovery.checkpoint_cycles"
#: Approximate serialized checkpoint size (bytes).
CHECKPOINT_BYTES = "recovery.checkpoint_bytes"
#: Fuzz steps applied, by action ``kind`` and ``outcome`` class.
FUZZ_STEPS = "fuzz.steps"
#: Workload executions, by ``workload`` and ``config``.
WORKLOAD_RUNS = "workload.runs"
#: XEMEM control-path operations, by ``op`` (grant | attach | detach | ...).
XEMEM_OPS = "xemem.ops"
#: XEMEM control-path latency histogram (cycles), by ``op``.
XEMEM_OP_CYCLES = "xemem.op_cycles"
#: Hobbes command-channel messages, by ``direction`` and ``kind``.
HOBBES_MSGS = "hobbes.channel_msgs"
#: Post-mortem bundles captured by the flight recorder, by ``trigger``.
POSTMORTEMS = "obs.postmortems"
#: Serving-daemon requests handled, by ``method`` and ``status``
#: (``ok`` or the typed error code).
SERVE_REQUESTS = "serve.requests"
#: Serving-daemon request latency histogram (microseconds, wall clock),
#: by ``method``.
SERVE_REQUEST_US = "serve.request_us"
#: Live sessions gauge, by ``tenant`` (and the ``total`` pseudo-tenant).
SERVE_SESSIONS = "serve.sessions"
#: Requests shed by admission control, by ``reason`` (busy | quota).
SERVE_SHED = "serve.shed"
#: Scheduler slices executed, by ``tenant``.
SERVE_SLICES = "serve.slices"
#: Sessions parked by crash containment, by ``tenant``.
SERVE_PARKS = "serve.parks"
#: Live telemetry subscribers gauge (the streaming plane).
SERVE_TELEMETRY_SUBS = "serve.telemetry_subscribers"
#: Telemetry frames dropped at full subscriber queues, by ``reason``.
#: The daemon's own telemetry tap skips every ``serve.telemetry*``
#: metric so accounting the stream can never feed back into it.
SERVE_TELEMETRY_DROPS = "serve.telemetry_drops"

#: Microsecond buckets for wall-clock request latency (serving daemon).
WALL_US_BUCKETS: tuple[int, ...] = (
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
    50_000, 100_000, 250_000, 500_000, 1_000_000, 5_000_000,
)

#: Geometric cycle buckets spanning a posted delivery (~80 cyc) to a
#: slow recovery (~10^8 cyc); upper bounds, +Inf implied.
DEFAULT_CYCLE_BUCKETS: tuple[int, ...] = (
    100, 250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 32_000,
    64_000, 128_000, 256_000, 512_000, 1_000_000, 4_000_000,
    16_000_000, 64_000_000, 256_000_000,
)

LabelKey = tuple[tuple[str, str], ...]


def _labelkey(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Common bookkeeping for all metric kinds."""

    kind = "metric"
    #: Set by the owning registry: called ``(kind, name, labels, value)``
    #: on every update so passive observers (the flight recorder) can
    #: keep a delta trail.  ``None`` when the metric is free-standing.
    _notify = None

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def _event(self, labels: dict[str, Any], value: float) -> None:
        if self._notify is not None:
            self._notify(self.kind, self.name, labels, value)

    def samples(self) -> list[tuple[dict[str, str], Any]]:  # pragma: no cover
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: int | float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _labelkey(labels)
        self._values[key] = self._values.get(key, 0) + amount
        self._event(labels, amount)

    def get(self, **labels: Any) -> float:
        return self._values.get(_labelkey(labels), 0)

    def total(self) -> float:
        return sum(self._values.values())

    def sum_by(self, label: str) -> dict[str, float]:
        """Collapse all samples onto one label dimension."""
        out: dict[str, float] = {}
        for key, value in self._values.items():
            bucket = dict(key).get(label, "")
            out[bucket] = out.get(bucket, 0) + value
        return dict(sorted(out.items()))

    def samples(self) -> list[tuple[dict[str, str], float]]:
        return [(dict(k), v) for k, v in sorted(self._values.items())]


class Gauge(Metric):
    """A set-to-current-value metric per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: int | float, **labels: Any) -> None:
        self._values[_labelkey(labels)] = value
        self._event(labels, value)

    def get(self, **labels: Any) -> float:
        return self._values.get(_labelkey(labels), 0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        return [(dict(k), v) for k, v in sorted(self._values.items())]


class Histogram(Metric):
    """Bucketed distribution (cycle-bucketed by default)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(buckets or DEFAULT_CYCLE_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        #: label key → per-bucket counts (len(bounds)+1: last is +Inf).
        self._buckets: dict[LabelKey, list[int]] = {}
        self._sum: dict[LabelKey, float] = {}
        self._count: dict[LabelKey, int] = {}

    def observe(self, value: int | float, **labels: Any) -> None:
        key = _labelkey(labels)
        counts = self._buckets.setdefault(key, [0] * (len(self.bounds) + 1))
        counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sum[key] = self._sum.get(key, 0) + value
        self._count[key] = self._count.get(key, 0) + 1
        self._event(labels, value)

    def count(self, **labels: Any) -> int:
        return self._count.get(_labelkey(labels), 0)

    def total_count(self) -> int:
        return sum(self._count.values())

    def sum(self, **labels: Any) -> float:
        return self._sum.get(_labelkey(labels), 0)

    def mean(self, **labels: Any) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1) from
        bucket counts — aggregated across every label set unless one is
        given.  Returns the bound of the bucket where the cumulative
        count crosses the target; observations past the last bound clamp
        to it (a bucketed histogram cannot resolve further)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        keys = [_labelkey(labels)] if labels else list(self._buckets)
        total = sum(self._count.get(key, 0) for key in keys)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for i in range(len(self.bounds) + 1):
            cumulative += sum(
                self._buckets[key][i] for key in keys if key in self._buckets
            )
            if cumulative >= target:
                return float(self.bounds[min(i, len(self.bounds) - 1)])
        return float(self.bounds[-1])  # pragma: no cover - loop covers total

    def samples(self) -> list[tuple[dict[str, str], dict[str, Any]]]:
        out = []
        for key in sorted(self._buckets):
            out.append(
                (
                    dict(key),
                    {
                        "counts": list(self._buckets[key]),
                        "sum": self._sum[key],
                        "count": self._count[key],
                    },
                )
            )
        return out


class MetricsRegistry:
    """Get-or-create home for every metric on one machine."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        #: Passive update observers, called ``(kind, name, labels, value)``
        #: on every counter increment / gauge set / histogram observation.
        self.hooks: list = []

    def _dispatch_event(
        self, kind: str, name: str, labels: dict[str, Any], value: float
    ) -> None:
        # Fast path: with no observer attached (no flight feed, no
        # telemetry tap) an update costs one truthiness test here —
        # counts still accumulate, only the fan-out is skipped.
        hooks = self.hooks
        if not hooks:
            return
        for hook in hooks:
            hook(kind, name, labels, value)

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            metric._notify = self._dispatch_event
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[int, ...] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- convenience views ----------------------------------------------

    def exit_counts_by_reason(self) -> dict[str, int]:
        """The paper's first question — exits, by reason, machine-wide."""
        metric = self._metrics.get(EXITS)
        if not isinstance(metric, Counter):
            return {}
        return {k: int(v) for k, v in metric.sum_by("reason").items()}

    # -- rendering -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-ready dump of every metric."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = {
                    "help": metric.help,
                    "samples": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ],
                }
            elif isinstance(metric, Gauge):
                out["gauges"][name] = {
                    "help": metric.help,
                    "samples": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ],
                }
            elif isinstance(metric, Histogram):
                out["histograms"][name] = {
                    "help": metric.help,
                    "bounds": list(metric.bounds),
                    "samples": [
                        {"labels": labels, **stats}
                        for labels, stats in metric.samples()
                    ],
                }
        return out

    def render_text(self) -> str:
        """The ``metrics-dump`` CLI's human-readable form."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# {metric.kind} {name}" + (
                f" — {metric.help}" if metric.help else ""
            ))
            if isinstance(metric, Histogram):
                for labels, stats in metric.samples():
                    label_str = ",".join(f"{k}={v}" for k, v in labels.items())
                    mean = stats["sum"] / stats["count"] if stats["count"] else 0
                    lines.append(
                        f"  {{{label_str}}} count={stats['count']} "
                        f"sum={stats['sum']:.0f} mean={mean:.1f}"
                    )
            else:
                for labels, value in metric.samples():
                    label_str = ",".join(f"{k}={v}" for k, v in labels.items())
                    lines.append(f"  {{{label_str}}} {value:g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def render_prom(self) -> str:
        """Prometheus text exposition (v0.0.4) of every metric.

        Dotted names become underscore names (``serve.requests`` →
        ``serve_requests``), counters get the conventional ``_total``
        suffix, histograms expand to cumulative ``_bucket``/``_sum``/
        ``_count`` series with a ``+Inf`` bound.  Output is sorted and
        deterministic for a given registry state."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            base = prom_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# HELP {base}_total {metric.help or name}")
                lines.append(f"# TYPE {base}_total counter")
                for labels, value in metric.samples():
                    lines.append(
                        f"{base}_total{_prom_labels(labels)} {_prom_num(value)}"
                    )
            elif isinstance(metric, Gauge):
                lines.append(f"# HELP {base} {metric.help or name}")
                lines.append(f"# TYPE {base} gauge")
                for labels, value in metric.samples():
                    lines.append(
                        f"{base}{_prom_labels(labels)} {_prom_num(value)}"
                    )
            elif isinstance(metric, Histogram):
                lines.append(f"# HELP {base} {metric.help or name}")
                lines.append(f"# TYPE {base} histogram")
                for labels, stats in metric.samples():
                    cumulative = 0
                    for bound, count in zip(metric.bounds, stats["counts"]):
                        cumulative += count
                        le = dict(labels, le=_prom_num(bound))
                        lines.append(
                            f"{base}_bucket{_prom_labels(le)} {cumulative}"
                        )
                    le = dict(labels, le="+Inf")
                    lines.append(
                        f"{base}_bucket{_prom_labels(le)} {stats['count']}"
                    )
                    lines.append(
                        f"{base}_sum{_prom_labels(labels)} "
                        f"{_prom_num(stats['sum'])}"
                    )
                    lines.append(
                        f"{base}_count{_prom_labels(labels)} {stats['count']}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus exposition helpers --------------------------------------


def prom_name(name: str) -> str:
    """A metric name in Prometheus' ``[a-zA-Z_:][a-zA-Z0-9_:]*`` set."""
    out = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    pairs = []
    for key in sorted(labels):
        value = str(labels[key]).replace("\\", "\\\\")
        value = value.replace('"', '\\"').replace("\n", "\\n")
        pairs.append(f'{prom_name(key)}="{value}"')
    return "{" + ",".join(pairs) + "}"


def _prom_num(value: float) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)
