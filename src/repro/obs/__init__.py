"""repro.obs — the unified observability layer.

One :class:`Observability` bundle hangs off every simulated
:class:`~repro.hw.machine.Machine` (``machine.obs``): a machine-wide
:class:`~repro.obs.spans.SpanTracer` plus a
:class:`~repro.obs.metrics.MetricsRegistry`.  Both are strictly
**passive** — they never advance the clock, consume randomness, or
otherwise perturb the simulation — so enabling them changes no
experiment result and no fuzz fingerprint.

See ``docs/observability.md`` for the span model, metric naming
conventions, and the ``BENCH_*.json`` schema.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs import metrics as metric_names
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.flight import (
    FlightRecorder,
    POSTMORTEM_SCHEMA_NAME,
    POSTMORTEM_SCHEMA_VERSION,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import (
    BENCH_SCHEMA_NAME,
    BENCH_SCHEMA_VERSION,
    SWEEP_SCHEMA_NAME,
    SWEEP_SCHEMA_VERSION,
    TELEMETRY_SCHEMA_NAME,
    TELEMETRY_SCHEMA_VERSION,
    validate_bench,
    validate_chrome_trace,
    validate_postmortem,
    validate_sweep,
    validate_telemetry_frame,
    validate_telemetry_snapshot,
)
from repro.obs.spans import NULL_SPAN, Span, SpanTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.clock import Clock


class Observability:
    """Per-machine bundle: span tracer + metrics registry + flight
    recorder (the always-on ring feeding post-mortem dumps)."""

    def __init__(self, clock: "Clock") -> None:
        self.tracer = SpanTracer(clock)
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(clock)
        self._wire_flight()

    def _wire_flight(self) -> None:
        self.flight.metrics = self.metrics
        self.tracer.on_close.append(self.flight.record_span)
        self.metrics.hooks.append(self.flight.record_metric)

    def reset(self) -> None:
        """Forget everything recorded so far (used between benchmark
        scenarios sharing one environment)."""
        self.tracer.clear()
        self.tracer.on_close = []
        self.metrics = MetricsRegistry()
        self.flight.clear()
        self._wire_flight()

    def quiesce(self) -> None:
        """Drop to the zero-overhead fast path: disable the span tracer
        and detach every observer (flight feed included), so emission
        collapses to a cheap predicate.  Counters and gauges still
        accumulate; only recording and fan-out stop.  One-way — use
        :meth:`reset` to rewire the flight recorder afterwards."""
        self.tracer.enabled = False
        self.tracer.on_close = []
        self.metrics.hooks = []


__all__ = [
    "BENCH_SCHEMA_NAME",
    "BENCH_SCHEMA_VERSION",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "POSTMORTEM_SCHEMA_NAME",
    "POSTMORTEM_SCHEMA_VERSION",
    "SWEEP_SCHEMA_NAME",
    "SWEEP_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_NAME",
    "TELEMETRY_SCHEMA_VERSION",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "metric_names",
    "validate_bench",
    "validate_chrome_trace",
    "validate_postmortem",
    "validate_sweep",
    "validate_telemetry_frame",
    "validate_telemetry_snapshot",
    "write_chrome_trace",
]
