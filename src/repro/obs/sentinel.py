"""The perf-regression sentinel behind ``python -m repro bench-compare``.

Compares two sets of ``BENCH_*.json`` artifacts — a committed baseline
and a fresh candidate run — figure by figure, against per-metric
tolerance bands from ``benchmarks/tolerances.json``:

* every baseline figure must exist in the candidate set (and vice
  versa: new figures are reported, missing ones fail);
* within a figure, result rows are keyed by the tolerance spec's
  ``key`` columns (e.g. ``workload``/``config``) and their metric
  column (e.g. ``fom``) must stay within ``rel_tol`` of the baseline;
* whole-run ``sim_cycles`` drift is checked against a global band.

The simulator is deterministic, so on an unchanged tree the candidate
reproduces the baseline exactly and every band is trivially satisfied;
the bands exist so *intended* cost-model adjustments of a few percent
don't demand a baseline refresh, while real regressions (or silent
behaviour changes) fail CI loudly.

Output is a deterministic markdown report (sorted keys, stable
formatting): same inputs → byte-identical report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

TOLERANCE_SCHEMA_NAME = "covirt-bench-tolerances"
TOLERANCE_SCHEMA_VERSION = 1

#: Fallback relative tolerance when a bench has no explicit band.
DEFAULT_REL_TOL = 0.05

#: Fallback band for wall-clock runtime drift.  Wall time is noisy
#: (shared CI runners, thermal throttling), so the default band is wide:
#: it only catches order-of-magnitude blowups, not few-percent jitter.
DEFAULT_WALL_SECONDS_REL_TOL = 2.0


class ToleranceError(ValueError):
    """tolerances.json is malformed."""


def load_tolerances(path: str | Path) -> dict[str, Any]:
    """Load and sanity-check ``benchmarks/tolerances.json``."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != TOLERANCE_SCHEMA_NAME:
        raise ToleranceError(
            f"tolerances schema must be {TOLERANCE_SCHEMA_NAME!r}, "
            f"got {doc.get('schema')!r}"
        )
    if doc.get("schema_version") != TOLERANCE_SCHEMA_VERSION:
        raise ToleranceError(
            f"unknown tolerances schema_version {doc.get('schema_version')!r}"
        )
    for bench, spec in doc.get("benches", {}).items():
        for required in ("metric", "key"):
            if required not in spec:
                raise ToleranceError(
                    f"tolerances for {bench!r} missing {required!r}"
                )
    return doc


def _bench_spec(tolerances: dict[str, Any], bench: str) -> dict[str, Any]:
    return tolerances.get("benches", {}).get(bench, {})


def _rel_tol(tolerances: dict[str, Any], bench: str) -> float:
    spec = _bench_spec(tolerances, bench)
    if "rel_tol" in spec:
        return float(spec["rel_tol"])
    return float(tolerances.get("default", {}).get("rel_tol", DEFAULT_REL_TOL))


def _row_key(row: dict[str, Any], key_cols: list[str]) -> str:
    return "/".join(str(row.get(col, "?")) for col in key_cols)


@dataclass
class Finding:
    """One per-row comparison outcome."""

    bench: str
    key: str
    metric: str
    baseline: float | None
    candidate: float | None
    rel_tol: float
    status: str  # ok | out-of-band | missing | extra

    @property
    def rel_delta(self) -> float | None:
        if self.baseline is None or self.candidate is None:
            return None
        base = abs(self.baseline)
        if base == 0:
            return 0.0 if self.candidate == self.baseline else float("inf")
        return (self.candidate - self.baseline) / base


@dataclass
class CompareReport:
    """The full bench-compare verdict."""

    findings: list[Finding] = field(default_factory=list)
    #: Figure-level problems (missing artifacts, schema mismatches).
    problems: list[str] = field(default_factory=list)
    benches_compared: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.status != "ok"]

    @property
    def ok(self) -> bool:
        return not self.problems and not self.regressions


def compare_docs(
    bench: str,
    baseline: dict[str, Any],
    candidate: dict[str, Any],
    tolerances: dict[str, Any],
) -> list[Finding]:
    """Compare one figure's baseline/candidate BENCH docs row-by-row."""
    spec = _bench_spec(tolerances, bench)
    metric = spec.get("metric")
    key_cols = spec.get("key", [])
    rel_tol = _rel_tol(tolerances, bench)
    findings: list[Finding] = []

    if metric:
        base_rows = {
            _row_key(r, key_cols): r
            for r in baseline.get("results", [])
            if metric in r
        }
        cand_rows = {
            _row_key(r, key_cols): r
            for r in candidate.get("results", [])
            if metric in r
        }
        for key in sorted(set(base_rows) | set(cand_rows)):
            b = base_rows.get(key)
            c = cand_rows.get(key)
            if b is None:
                findings.append(
                    Finding(bench, key, metric, None, float(c[metric]),
                            rel_tol, "extra")
                )
                continue
            if c is None:
                findings.append(
                    Finding(bench, key, metric, float(b[metric]), None,
                            rel_tol, "missing")
                )
                continue
            finding = Finding(
                bench, key, metric, float(b[metric]), float(c[metric]),
                rel_tol, "ok",
            )
            delta = finding.rel_delta
            if delta is not None and abs(delta) > rel_tol:
                finding.status = "out-of-band"
            findings.append(finding)

    cycles_tol = float(
        tolerances.get("global", {}).get("sim_cycles_rel_tol", DEFAULT_REL_TOL)
    )
    finding = Finding(
        bench, "(whole run)", "sim_cycles",
        float(baseline.get("sim_cycles", 0)),
        float(candidate.get("sim_cycles", 0)),
        cycles_tol, "ok",
    )
    delta = finding.rel_delta
    if delta is not None and abs(delta) > cycles_tol:
        finding.status = "out-of-band"
    findings.append(finding)

    # Wall-clock drift: only comparable when both artifacts carry it
    # (committed baselines may predate the field, and a laptop baseline
    # vs. a CI candidate is apples-to-oranges anyway — the band is wide).
    if "wall_seconds" in baseline and "wall_seconds" in candidate:
        wall_tol = float(
            tolerances.get("global", {}).get(
                "wall_seconds_rel_tol", DEFAULT_WALL_SECONDS_REL_TOL
            )
        )
        finding = Finding(
            bench, "(whole run)", "wall_seconds",
            float(baseline["wall_seconds"]),
            float(candidate["wall_seconds"]),
            wall_tol, "ok",
        )
        delta = finding.rel_delta
        if delta is not None and abs(delta) > wall_tol:
            finding.status = "out-of-band"
        findings.append(finding)
    return findings


def _load_set(directory: str | Path) -> dict[str, dict[str, Any]]:
    """``BENCH_<name>.json`` files under ``directory`` → name → doc."""
    docs: dict[str, dict[str, Any]] = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        doc = json.loads(path.read_text())
        docs[doc.get("bench", path.stem[len("BENCH_"):])] = doc
    return docs


def compare_sets(
    baseline_dir: str | Path,
    candidate_dir: str | Path,
    tolerances: dict[str, Any],
) -> CompareReport:
    """Compare every figure present in either artifact set."""
    report = CompareReport()
    base = _load_set(baseline_dir)
    cand = _load_set(candidate_dir)
    if not base:
        report.problems.append(f"no BENCH_*.json under {baseline_dir}")
    if not cand:
        report.problems.append(f"no BENCH_*.json under {candidate_dir}")
    for bench in sorted(set(base) | set(cand)):
        if bench not in cand:
            report.problems.append(
                f"{bench}: present in baseline, missing from candidate"
            )
            continue
        if bench not in base:
            report.problems.append(
                f"{bench}: present in candidate, missing from baseline"
            )
            continue
        if base[bench].get("quick") != cand[bench].get("quick"):
            report.problems.append(
                f"{bench}: quick-mode mismatch (baseline"
                f" quick={base[bench].get('quick')}, candidate"
                f" quick={cand[bench].get('quick')}) — not comparable"
            )
            continue
        report.benches_compared.append(bench)
        report.findings.extend(
            compare_docs(bench, base[bench], cand[bench], tolerances)
        )
    return report


# -- rendering ----------------------------------------------------------


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4f}"


def render_markdown(
    report: CompareReport,
    *,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> str:
    """The ``bench-compare`` markdown report (deterministic)."""
    lines = [
        "# bench-compare report",
        "",
        f"- baseline: `{baseline_label}`",
        f"- candidate: `{candidate_label}`",
        f"- figures compared: {', '.join(report.benches_compared) or 'none'}",
        f"- verdict: {'OK' if report.ok else 'REGRESSION'}",
        "",
    ]
    if report.problems:
        lines.append("## problems")
        lines.append("")
        for problem in report.problems:
            lines.append(f"- {problem}")
        lines.append("")
    regressions = report.regressions
    if regressions:
        lines.append("## out-of-tolerance")
        lines.append("")
        lines.append(
            "| bench | key | metric | baseline | candidate | Δ | band | status |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for f in regressions:
            delta = f.rel_delta
            delta_s = "-" if delta is None else f"{100 * delta:+.2f}%"
            lines.append(
                f"| {f.bench} | {f.key} | {f.metric} | {_fmt(f.baseline)} |"
                f" {_fmt(f.candidate)} | {delta_s} | ±{100 * f.rel_tol:.0f}% |"
                f" {f.status} |"
            )
        lines.append("")
    lines.append("## all comparisons")
    lines.append("")
    lines.append("| bench | key | metric | baseline | candidate | Δ | status |")
    lines.append("|---|---|---|---|---|---|---|")
    for f in report.findings:
        delta = f.rel_delta
        delta_s = "-" if delta is None else f"{100 * delta:+.2f}%"
        lines.append(
            f"| {f.bench} | {f.key} | {f.metric} | {_fmt(f.baseline)} |"
            f" {_fmt(f.candidate)} | {delta_s} | {f.status} |"
        )
    lines.append("")
    return "\n".join(lines)
