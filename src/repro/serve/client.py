"""The blocking client library for ``covirt-serve``.

Used by the CLI (``python -m repro serve-demo``), the test suite, and
``benchmarks/bench_serve_throughput.py``.  One :class:`ServeClient` is
one connection: requests are matched to responses by id, server-side
typed errors re-raise locally as :class:`~repro.serve.protocol.ServeError`
(branch on ``err.code``, never on message text).

Endpoints are specs: ``unix:/path/to.sock`` or ``tcp:HOST:PORT`` —
exactly what :attr:`ServeDaemon.endpoint` hands out.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeError,
    decode_line,
    encode_request,
)


def parse_endpoint(spec: str) -> tuple[str, Any]:
    """``unix:PATH`` / ``tcp:HOST:PORT`` → (family, address)."""
    kind, _, rest = spec.partition(":")
    if kind == "unix" and rest:
        return "unix", rest
    if kind == "tcp" and rest:
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return "tcp", (host, int(port))
    raise ValueError(
        f"bad endpoint {spec!r}; want unix:PATH or tcp:HOST:PORT"
    )


class ServeClient:
    """One blocking connection to a covirt-serve daemon."""

    def __init__(
        self, endpoint: str, tenant: str | None = None, timeout: float = 30.0
    ) -> None:
        self.endpoint = endpoint
        kind, address = parse_endpoint(endpoint)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(address)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        if tenant is not None:
            self.hello(tenant)

    # -- transport -------------------------------------------------------

    def request(self, method: str, params: dict[str, Any] | None = None) -> Any:
        """One round trip; returns ``result`` or raises ServeError."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(encode_request(request_id, method, params))
        line = self._reader.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError(
                f"daemon at {self.endpoint} closed the connection"
            )
        response = decode_line(line)
        if response.get("id") not in (request_id, None):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServeError(
            str(error.get("code", "internal")),
            str(error.get("message", "(no message)")),
            error.get("data"),
        )

    def send_raw(self, payload: bytes) -> dict[str, Any]:
        """Ship raw bytes and read one response line (protocol tests)."""
        self._sock.sendall(payload)
        line = self._reader.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_line(line)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience methods ---------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def hello(self, tenant: str) -> dict[str, Any]:
        return self.request("hello", {"tenant": tenant})

    def stats(self, metrics: bool = False) -> dict[str, Any]:
        return self.request("stats", {"metrics": metrics})

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def launch(
        self, scenario: str = "baseline", seed: int | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"scenario": scenario}
        if seed is not None:
            params["seed"] = seed
        return self.request("session.launch", params)

    def step(self, session_id: str, steps: int = 1) -> dict[str, Any]:
        return self.request(
            "session.step", {"session_id": session_id, "steps": steps}
        )

    def run(self, session_id: str, cycles: int) -> dict[str, Any]:
        return self.request(
            "session.run", {"session_id": session_id, "cycles": cycles}
        )

    def inspect(self, session_id: str, metrics: bool = False) -> dict[str, Any]:
        return self.request(
            "session.inspect", {"session_id": session_id, "metrics": metrics}
        )

    def trace(
        self, session_id: str, cursor: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"session_id": session_id, "cursor": cursor}
        if limit is not None:
            params["limit"] = limit
        return self.request("session.trace", params)

    def inject(
        self, session_id: str, kind: str, params: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        return self.request(
            "session.inject",
            {"session_id": session_id, "kind": kind, "params": params or {}},
        )

    def kill(self, session_id: str) -> dict[str, Any]:
        return self.request("session.kill", {"session_id": session_id})
