"""The blocking client library for ``covirt-serve``.

Used by the CLI (``python -m repro serve-demo``), the test suite, and
``benchmarks/bench_serve_throughput.py``.  One :class:`ServeClient` is
one connection: requests are matched to responses by id, server-side
typed errors re-raise locally as :class:`~repro.serve.protocol.ServeError`
(branch on ``err.code``, never on message text).

Endpoints are specs: ``unix:/path/to.sock`` or ``tcp:HOST:PORT`` —
exactly what :attr:`ServeDaemon.endpoint` hands out.

Telemetry: once :meth:`ServeClient.subscribe` (or
:meth:`~ServeClient.trace_stream`) succeeds, the daemon interleaves
``{"push": "telemetry", "frame": {...}}`` lines with responses on this
connection.  :meth:`~ServeClient.request` stashes any push line it
reads while waiting for its response; :meth:`~ServeClient.read_frames`
drains stashed frames and then blocks (up to a deadline) for live ones.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeError,
    decode_line,
    encode_request,
)


def parse_endpoint(spec: str) -> tuple[str, Any]:
    """``unix:PATH`` / ``tcp:HOST:PORT`` → (family, address)."""
    kind, _, rest = spec.partition(":")
    if kind == "unix" and rest:
        return "unix", rest
    if kind == "tcp" and rest:
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return "tcp", (host, int(port))
    raise ValueError(
        f"bad endpoint {spec!r}; want unix:PATH or tcp:HOST:PORT"
    )


class ServeClient:
    """One blocking connection to a covirt-serve daemon."""

    def __init__(
        self, endpoint: str, tenant: str | None = None, timeout: float = 30.0
    ) -> None:
        self.endpoint = endpoint
        kind, address = parse_endpoint(endpoint)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(address)
        # Hand-rolled line buffering: socket.makefile() readers wedge
        # permanently after one recv timeout, and read_frames() leans on
        # short timeouts to poll; a plain byte buffer survives them
        # (the partial line just stays buffered for the next read).
        self._buf = b""
        self._next_id = 0
        self._timeout = timeout
        #: Telemetry frames read off the wire but not yet consumed
        #: (push lines interleave with responses once subscribed).
        self.frames: list[dict[str, Any]] = []
        if tenant is not None:
            self.hello(tenant)

    # -- transport -------------------------------------------------------

    def _recv_line(self) -> bytes:
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = self._buf[: newline + 1]
                self._buf = self._buf[newline + 1:]
                return line
            if len(self._buf) > MAX_LINE_BYTES + 2:
                raise ConnectionError(
                    f"daemon at {self.endpoint} sent an unterminated "
                    f"line over {MAX_LINE_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    f"daemon at {self.endpoint} closed the connection"
                )
            self._buf += chunk

    def _read_line(self) -> dict[str, Any]:
        return decode_line(self._recv_line())

    def request(self, method: str, params: dict[str, Any] | None = None) -> Any:
        """One round trip; returns ``result`` or raises ServeError.
        Push frames arriving before the response are stashed on
        :attr:`frames`, never lost."""
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(encode_request(request_id, method, params))
        while True:
            response = self._read_line()
            if "push" in response:
                self.frames.append(response.get("frame") or {})
                continue
            break
        if response.get("id") not in (request_id, None):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServeError(
            str(error.get("code", "internal")),
            str(error.get("message", "(no message)")),
            error.get("data"),
        )

    def read_frames(
        self, count: int = 1, max_seconds: float = 5.0
    ) -> list[dict[str, Any]]:
        """Consume up to ``count`` telemetry frames: stashed ones first,
        then live push lines until the deadline.  Returns what arrived
        (possibly fewer than ``count``); raises on a non-push line —
        with no request in flight the daemon only pushes."""
        taken = self.frames[:count]
        del self.frames[: len(taken)]
        deadline = time.monotonic() + max_seconds
        while len(taken) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._sock.settimeout(max(0.05, min(remaining, self._timeout)))
            try:
                response = self._read_line()
            except (TimeoutError, socket.timeout):
                break
            finally:
                self._sock.settimeout(self._timeout)
            if "push" not in response:
                raise ConnectionError(
                    f"expected a push line, got {response!r}"
                )
            taken.append(response.get("frame") or {})
        return taken

    def send_raw(self, payload: bytes) -> dict[str, Any]:
        """Ship raw bytes and read one response line (protocol tests)."""
        self._sock.sendall(payload)
        return self._read_line()

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience methods ---------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def hello(self, tenant: str) -> dict[str, Any]:
        return self.request("hello", {"tenant": tenant})

    def stats(self, metrics: bool = False) -> dict[str, Any]:
        return self.request("stats", {"metrics": metrics})

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    def launch(
        self, scenario: str = "baseline", seed: int | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"scenario": scenario}
        if seed is not None:
            params["seed"] = seed
        return self.request("session.launch", params)

    def step(self, session_id: str, steps: int = 1) -> dict[str, Any]:
        return self.request(
            "session.step", {"session_id": session_id, "steps": steps}
        )

    def run(self, session_id: str, cycles: int) -> dict[str, Any]:
        return self.request(
            "session.run", {"session_id": session_id, "cycles": cycles}
        )

    def inspect(self, session_id: str, metrics: bool = False) -> dict[str, Any]:
        return self.request(
            "session.inspect", {"session_id": session_id, "metrics": metrics}
        )

    def trace(
        self, session_id: str, cursor: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"session_id": session_id, "cursor": cursor}
        if limit is not None:
            params["limit"] = limit
        return self.request("session.trace", params)

    def inject(
        self, session_id: str, kind: str, params: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        return self.request(
            "session.inject",
            {"session_id": session_id, "kind": kind, "params": params or {}},
        )

    def kill(self, session_id: str) -> dict[str, Any]:
        return self.request("session.kill", {"session_id": session_id})

    # -- telemetry plane -------------------------------------------------

    def subscribe(
        self,
        tenants: list[str] | None = None,
        kinds: list[str] | None = None,
        session_id: str | None = None,
        max_queue: int | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {}
        if tenants is not None:
            params["tenants"] = tenants
        if kinds is not None:
            params["kinds"] = kinds
        if session_id is not None:
            params["session_id"] = session_id
        if max_queue is not None:
            params["max_queue"] = max_queue
        return self.request("telemetry.subscribe", params)

    def unsubscribe(self) -> dict[str, Any]:
        return self.request("telemetry.unsubscribe")

    def trace_stream(
        self, session_id: str, max_queue: int | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"session_id": session_id}
        if max_queue is not None:
            params["max_queue"] = max_queue
        return self.request("session.trace_stream", params)

    def snapshot(self) -> dict[str, Any]:
        return self.request("telemetry.snapshot")

    def prom(self) -> str:
        return self.request("telemetry.prom")["text"]
