"""``repro top`` — a curses-free live dashboard for covirt-serve.

Polls ``telemetry.snapshot`` at a fixed interval and redraws a compact
text dashboard (plain ANSI clear, no curses, safe over ssh and in CI
logs with ``--plain``).  Also home of the ``--probe`` mode the CI
telemetry-smoke job runs: subscribe to the live frame stream, stir some
traffic, and fail unless every received frame validates against the
covirt-telemetry schema.

Rendering is a pure function of the snapshot document
(:func:`render_top`), so the tests pin the dashboard without a daemon.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any

from repro.obs.schema import (
    validate_telemetry_frame,
    validate_telemetry_snapshot,
)
from repro.serve.client import ServeClient

#: Columns of the per-tenant table, in order: (header, rollup key).
_COLUMNS: tuple[tuple[str, str], ...] = (
    ("SESS", "sessions"),
    ("PARK", "parked"),
    ("STEPS", "steps_applied"),
    ("SIM-CYCLES", "sim_cycles"),
    ("SLICES", "slices_run"),
    ("EXITS", "exits"),
    ("ORACLE", "oracle_violations"),
    ("PM", "postmortems"),
)


def render_top(snapshot: dict[str, Any]) -> str:
    """One dashboard frame from one ``telemetry.snapshot`` document."""
    daemon = snapshot.get("daemon", {})
    shed = daemon.get("shed", {})
    subs = daemon.get("subscribers", [])
    dropped = sum(s.get("dropped", 0) for s in subs)
    lines = [
        f"covirt-serve telemetry — {snapshot.get('endpoint', '?')} — "
        f"up {snapshot.get('uptime_seconds', 0):.1f}s",
        f"requests {daemon.get('requests_total', 0)} "
        f"({daemon.get('requests_per_sec', 0):.1f} rps)   "
        f"p50 {daemon.get('request_p50_us', 0):.0f}us   "
        f"p99 {daemon.get('request_p99_us', 0):.0f}us   "
        f"shed busy={shed.get('busy', 0)} quota={shed.get('quota', 0)}",
        f"connections {daemon.get('connections', 0)}   "
        f"subscribers {len(subs)} (dropped {dropped})   "
        f"backlog {daemon.get('backlog', 0)}   "
        f"completed jobs {daemon.get('completed_jobs', 0)}",
        "",
    ]
    header = f"{'TENANT':<12}" + "".join(
        f"{title:>12}" for title, _key in _COLUMNS
    )
    lines.append(header)
    tenants = dict(snapshot.get("tenants", {}))
    tenants["(global)"] = snapshot.get("global", {})
    for name, rollup in tenants.items():
        row = f"{name:<12}" + "".join(
            f"{rollup.get(key, 0):>12}" for _title, key in _COLUMNS
        )
        lines.append(row)
    return "\n".join(lines)


def _probe(client: ServeClient, seconds: float, min_frames: int) -> int:
    """CI smoke: subscribe, stir traffic, schema-check every frame."""
    sub = client.subscribe()
    print(
        f"top --probe: subscriber {sub['subscriber']} "
        f"(protocol {sub['protocol']} v{sub['version']})"
    )
    # Stir a session of our own so the probe never depends on external
    # traffic; concurrent serve-demo frames ride along if present.
    launched = client.launch(scenario="baseline", seed=0xC0517)
    client.step(launched["session_id"], steps=8)
    client.kill(launched["session_id"])
    frames = client.read_frames(count=1_000_000, max_seconds=seconds)
    stats = client.unsubscribe()
    invalid = 0
    for frame in frames:
        problems = validate_telemetry_frame(frame)
        if problems:
            invalid += 1
            print(f"top --probe: INVALID frame {frame!r}: {problems}")
    kinds: dict[str, int] = {}
    for frame in frames:
        kinds[str(frame.get("type"))] = kinds.get(str(frame.get("type")), 0) + 1
    print(
        f"top --probe: {len(frames)} frames "
        f"({', '.join(f'{k}={v}' for k, v in sorted(kinds.items()))}); "
        f"sent={stats['sent']} dropped={stats['dropped']}"
    )
    snapshot = client.snapshot()
    snap_problems = validate_telemetry_snapshot(snapshot)
    for problem in snap_problems:
        print(f"top --probe: INVALID snapshot: {problem}")
    if invalid or snap_problems:
        return 1
    if len(frames) < min_frames:
        print(
            f"top --probe: only {len(frames)} frames, wanted >= {min_frames}"
        )
        return 1
    print("top --probe: ok")
    return 0


def run_top(args) -> int:
    """The ``repro top`` subcommand body (args from repro.cli)."""
    try:
        client = ServeClient(args.connect, tenant=args.tenant)
    except (OSError, ValueError) as exc:
        print(f"top: cannot connect to {args.connect}: {exc}", file=sys.stderr)
        return 2
    try:
        if args.probe is not None:
            return _probe(client, args.probe, args.min_frames)
        iterations = 1 if args.once or args.json else args.iterations
        shown = 0
        while iterations is None or shown < iterations:
            snapshot = client.snapshot()
            if args.json:
                print(json.dumps(snapshot, indent=1, sort_keys=True))
            else:
                if not args.plain:
                    # ANSI clear + home; cheap, curses-free.
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_top(snapshot))
            sys.stdout.flush()
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            time.sleep(args.interval)
        return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    except ConnectionError as exc:
        print(f"top: connection lost: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
