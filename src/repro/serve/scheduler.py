"""The cooperative slice scheduler.

``session.run`` budgets can be enormous (billions of sim-cycles); if the
daemon executed each to completion inline, one hot tenant would park the
event loop and every other session behind it.  Instead a run request
becomes a :class:`RunJob` and the :class:`CooperativeScheduler`
round-robins the queue: each :meth:`tick` advances exactly one slice of
the head job (at most the tenant's ``max_cycles_per_slice``), then
rotates it to the back.  Wall-clock fairness therefore degrades
gracefully — a 2-billion-cycle run and a 50-million-cycle run make
progress together, and the small one finishes first.

Jobs whose client vanished mid-request are dropped at their next slice
(the session itself stays registered and consistent — only the *answer*
had nowhere to go).  A crash inside a slice parks that session via the
session's own containment and completes the job with its typed error;
the queue keeps draining everyone else.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.serve.protocol import ServeError
from repro.serve.session import Session


class RunJob:
    """One in-flight ``session.run`` request, sliced over many ticks."""

    def __init__(
        self,
        session: Session,
        cycles: int,
        slice_cycles: int,
        on_done: Callable[[dict[str, Any] | None, ServeError | None], None],
        is_cancelled: Callable[[], bool] = lambda: False,
    ) -> None:
        if cycles <= 0:
            raise ValueError("run budget must be positive")
        if slice_cycles <= 0:
            raise ValueError("slice budget must be positive")
        self.session = session
        self.tenant = session.tenant
        self.remaining = int(cycles)
        self.slice_cycles = int(slice_cycles)
        self.on_done = on_done
        self.is_cancelled = is_cancelled
        self.advanced = 0
        self.steps = 0
        self.slices = 0
        self.finished = False

    def result(self) -> dict[str, Any]:
        return {
            "session_id": self.session.session_id,
            "cycles_advanced": self.advanced,
            "steps_applied": self.steps,
            "slices": self.slices,
            "clock": self.session.clock,
        }


class CooperativeScheduler:
    """Round-robin queue of sliced run jobs."""

    def __init__(self) -> None:
        self._queue: deque[RunJob] = deque()
        self.completed = 0
        self.cancelled = 0

    # -- submission ------------------------------------------------------

    def submit(self, job: RunJob) -> None:
        self._queue.append(job)

    def pending(self) -> int:
        return len(self._queue)

    def pending_for(self, tenant: str) -> int:
        return sum(1 for job in self._queue if job.tenant == tenant)

    @property
    def idle(self) -> bool:
        return not self._queue

    # -- draining --------------------------------------------------------

    def _finish(
        self, job: RunJob, result: dict[str, Any] | None, err: ServeError | None
    ) -> None:
        job.finished = True
        self.completed += 1
        job.on_done(result, err)

    def tick(self) -> bool:
        """Advance one slice of the head job; returns True if any work
        was done (the daemon's idle detector)."""
        if not self._queue:
            return False
        job = self._queue.popleft()
        if job.is_cancelled():
            job.finished = True
            self.cancelled += 1
            return True
        try:
            slice_result = job.session.advance(
                min(job.remaining, job.slice_cycles)
            )
        except ServeError as err:
            self._finish(job, None, err)
            return True
        job.advanced += slice_result["cycles"]
        job.steps += slice_result["steps"]
        job.slices += 1
        job.remaining -= slice_result["cycles"]
        if job.remaining <= 0:
            self._finish(job, job.result(), None)
        else:
            self._queue.append(job)
        return True

    def drain(self, max_ticks: int = 1_000_000) -> None:
        """Run ticks until the queue is empty (test/bench convenience)."""
        ticks = 0
        while self.tick():
            ticks += 1
            if ticks >= max_ticks:  # pragma: no cover - runaway guard
                raise RuntimeError("scheduler failed to drain")
