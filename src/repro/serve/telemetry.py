"""repro.telemetry — the daemon's live observation plane.

Everything else in ``repro.obs`` is post-hoc: you learn what a served
machine did from ``session.trace`` or a post-mortem bundle, after the
fact.  The :class:`TelemetryHub` turns the same passive observer feeds
(``SpanTracer.on_close``, ``MetricsRegistry.hooks``) into **live
server-push frames** on subscribed connections, plus a daemon-wide
rollup (:func:`build_snapshot`) and a Prometheus-style exposition
(:func:`render_prom`).

Three invariants the whole design hangs on:

* **Zero overhead when nobody watches.**  Taps are attached to a
  session's observability bundle only while at least one subscriber
  exists; with none, emission stays on the obs layer's fast path (one
  predicate per span/metric, see ``repro/obs/spans.py``).
* **Subscribers are passive.**  A tap builds a frame and enqueues it —
  it never advances a clock, consumes randomness, or touches simulation
  state, so subscribing cannot perturb any session's fingerprint
  (pinned by ``tests/sweep/test_cross_determinism.py``).
* **Slow clients drop, never stall.**  Every subscriber owns a bounded
  frame queue; when it is full new frames are counted as dropped and a
  ``drops`` frame reports the gap at the next flush.  The event loop
  additionally skips draining into a connection whose unsent output
  backlog is large (:data:`BACKPRESSURE_BYTES`), so one wedged reader
  costs a bounded queue, not daemon memory or tick latency.

Frame and snapshot shapes are schema-checked by
:func:`repro.obs.schema.validate_telemetry_frame` /
:func:`~repro.obs.schema.validate_telemetry_snapshot`; the wire
envelope is ``{"push": "telemetry", "frame": {...}}`` (see
:func:`repro.serve.protocol.encode_push`).
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.obs import metric_names
from repro.obs.flight import _jsonable
from repro.obs.schema import (
    TELEMETRY_FRAME_TYPES,
    TELEMETRY_ROLLUP_KEYS,
    TELEMETRY_SCHEMA_NAME,
    TELEMETRY_SCHEMA_VERSION,
)
from repro.serve.protocol import E_INVALID_PARAMS, ServeError, encode_push

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability
    from repro.serve.daemon import ServeDaemon

#: Default per-subscriber frame-queue bound.
DEFAULT_QUEUE_FRAMES = 1024

#: Hard ceiling a subscriber may request for its queue.
MAX_QUEUE_FRAMES = 16384

#: Frames drained per subscriber per flush, so one deep backlog cannot
#: starve request servicing within a single event-loop turn.
MAX_FRAMES_PER_FLUSH = 256

#: Unsent-output threshold past which a subscriber's connection is
#: skipped at flush time (its bounded queue absorbs — and drops).
BACKPRESSURE_BYTES = 1 << 20

#: Metric-name prefix the daemon's own tap ignores, so accounting the
#: telemetry stream can never feed frames back into itself.
_SELF_METRIC_PREFIX = "serve.telemetry"


class TelemetrySubscriber:
    """One subscription: filters + a bounded frame queue + drop books."""

    def __init__(
        self,
        sub_id: int,
        conn: Any,
        *,
        session_id: str | None = None,
        tenants: frozenset[str] | None = None,
        kinds: frozenset[str] | None = None,
        max_queue: int = DEFAULT_QUEUE_FRAMES,
    ) -> None:
        self.sub_id = sub_id
        #: The owning connection (``None`` for in-process subscribers,
        #: e.g. the overhead benchmark).
        self.conn = conn
        self.session_id = session_id
        self.tenants = tenants
        self.kinds = kinds
        self.max_queue = max_queue
        self.queue: deque[dict[str, Any]] = deque()
        self.enqueued = 0
        self.sent = 0
        self.dropped = 0
        #: Drops not yet reported via a ``drops`` frame.
        self.pending_drops = 0

    def wants(self, frame: dict[str, Any]) -> bool:
        if self.kinds is not None and frame["type"] not in self.kinds:
            return False
        if (
            self.session_id is not None
            and frame.get("session_id") != self.session_id
        ):
            return False
        if (
            self.tenants is not None
            and frame.get("tenant") not in self.tenants
        ):
            return False
        return True

    def offer(self, frame: dict[str, Any]) -> bool:
        """Enqueue ``frame`` or count it dropped; never blocks."""
        if len(self.queue) >= self.max_queue:
            self.dropped += 1
            self.pending_drops += 1
            return False
        self.queue.append(frame)
        self.enqueued += 1
        return True

    def stats(self) -> dict[str, Any]:
        return {
            "subscriber": self.sub_id,
            "queued": len(self.queue),
            "enqueued": self.enqueued,
            "sent": self.sent,
            "dropped": self.dropped,
            "max_queue": self.max_queue,
            "session_id": self.session_id,
            "tenants": sorted(self.tenants) if self.tenants else None,
            "kinds": sorted(self.kinds) if self.kinds else None,
        }


class TelemetryHub:
    """Fan-out point between observability feeds and subscribers.

    The hub owns no sockets and runs no thread: the daemon's event loop
    calls :meth:`flush` with its own send function, and taps fire
    synchronously inside session work (they only append to bounded
    queues).  ``metrics`` is the daemon's *own* registry, used for the
    subscriber gauge and the drop counter — tap closures skip every
    ``serve.telemetry*`` metric so that accounting never feeds back.
    """

    def __init__(self, metrics: Any = None) -> None:
        self.metrics = metrics
        self.subscribers: dict[int, TelemetrySubscriber] = {}
        self._by_conn: dict[Any, TelemetrySubscriber] = {}
        self._taps: dict[Any, tuple] = {}
        self._next_sub = 0
        self._seq = 0

    # -- subscriptions ---------------------------------------------------

    @property
    def active(self) -> bool:
        return bool(self.subscribers)

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def subscribe(
        self,
        conn: Any,
        *,
        session_id: str | None = None,
        tenants: list[str] | None = None,
        kinds: list[str] | None = None,
        max_queue: int = DEFAULT_QUEUE_FRAMES,
    ) -> TelemetrySubscriber:
        """Register ``conn``; replaces its previous subscription if any.
        The first frame the new subscriber receives is a ``hello``."""
        if kinds is not None:
            unknown = set(kinds) - set(TELEMETRY_FRAME_TYPES)
            if unknown:
                raise ServeError(
                    E_INVALID_PARAMS,
                    f"unknown frame kinds {sorted(unknown)}; choose from "
                    f"{', '.join(TELEMETRY_FRAME_TYPES)}",
                )
        if not 1 <= max_queue <= MAX_QUEUE_FRAMES:
            raise ServeError(
                E_INVALID_PARAMS,
                f"max_queue must be 1..{MAX_QUEUE_FRAMES}, got {max_queue}",
            )
        previous = self._by_conn.pop(conn, None)
        if previous is not None:
            self.subscribers.pop(previous.sub_id, None)
        sub = TelemetrySubscriber(
            self._next_sub,
            conn,
            session_id=session_id,
            tenants=frozenset(tenants) if tenants else None,
            kinds=frozenset(kinds) if kinds else None,
            max_queue=max_queue,
        )
        self._next_sub += 1
        self.subscribers[sub.sub_id] = sub
        self._by_conn[conn] = sub
        sub.offer(
            {
                "seq": self._next_seq(),
                "type": "hello",
                "protocol": TELEMETRY_SCHEMA_NAME,
                "version": TELEMETRY_SCHEMA_VERSION,
                "subscriber": sub.sub_id,
            }
        )
        self._gauge()
        return sub

    def subscription_of(self, conn: Any) -> TelemetrySubscriber | None:
        return self._by_conn.get(conn)

    def unsubscribe(self, conn: Any) -> dict[str, Any] | None:
        """Drop ``conn``'s subscription; returns its final stats."""
        sub = self._by_conn.pop(conn, None)
        if sub is None:
            return None
        self.subscribers.pop(sub.sub_id, None)
        self._gauge()
        return sub.stats()

    def drop_connection(self, conn: Any) -> None:
        """A connection went away; forget its subscription silently."""
        self.unsubscribe(conn)

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                metric_names.SERVE_TELEMETRY_SUBS,
                "live telemetry subscribers",
            ).set(len(self.subscribers))

    # -- taps ------------------------------------------------------------

    def attach_obs(
        self,
        key: Any,
        obs: "Observability",
        *,
        tenant: str,
        session_id: str | None,
    ) -> None:
        """Wire passive frame-building observers into ``obs``.  Idempotent
        per ``key``; the daemon attaches sessions only while subscribers
        exist, so an idle daemon keeps the obs fast path."""
        if key in self._taps:
            return

        def on_span(span) -> None:
            self.publish(
                {
                    "type": "span",
                    "tenant": tenant,
                    "session_id": session_id,
                    "name": span.name,
                    "category": span.category,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end if span.end is not None else span.start,
                    "args": _jsonable(span.args),
                }
            )

        def on_metric(kind, name, labels, value) -> None:
            if name.startswith(_SELF_METRIC_PREFIX):
                return
            self.publish(
                {
                    "type": "metric",
                    "tenant": tenant,
                    "session_id": session_id,
                    "kind": kind,
                    "name": name,
                    "labels": {k: str(v) for k, v in sorted(labels.items())},
                    "value": value,
                }
            )

        obs.tracer.on_close.append(on_span)
        obs.metrics.hooks.append(on_metric)
        self._taps[key] = (obs, on_span, on_metric)

    def detach_obs(self, key: Any) -> None:
        tap = self._taps.pop(key, None)
        if tap is None:
            return
        obs, on_span, on_metric = tap
        try:
            obs.tracer.on_close.remove(on_span)
        except ValueError:  # pragma: no cover - reset() replaced the list
            pass
        try:
            obs.metrics.hooks.remove(on_metric)
        except ValueError:  # pragma: no cover
            pass

    def detach_all(self) -> None:
        for key in list(self._taps):
            self.detach_obs(key)

    @property
    def tapped(self) -> int:
        return len(self._taps)

    # -- publishing ------------------------------------------------------

    def publish(self, fields: dict[str, Any]) -> None:
        """Stamp a sequence number and offer the frame to every
        interested subscriber.  ``seq`` is hub-global, so a filtered
        subscriber legitimately sees gaps; *unreported* loss is what the
        per-subscriber drop counters and ``drops`` frames cover."""
        if not self.subscribers:
            return
        frame = {"seq": self._next_seq(), **fields}
        for sub in self.subscribers.values():
            if sub.wants(frame):
                sub.offer(frame)

    def lifecycle(
        self,
        event: str,
        tenant: str,
        session_id: str | None = None,
        **detail: Any,
    ) -> None:
        """Publish a session lifecycle transition (launch/park/shed/kill)."""
        if not self.subscribers:
            return
        fields: dict[str, Any] = {
            "type": "lifecycle",
            "event": event,
            "tenant": tenant,
            "session_id": session_id,
        }
        if detail:
            fields["detail"] = _jsonable(detail)
        self.publish(fields)

    # -- draining --------------------------------------------------------

    def pending(self) -> bool:
        return any(
            sub.queue or sub.pending_drops
            for sub in self.subscribers.values()
        )

    def flush(self, send: Callable[[Any, bytes], None]) -> None:
        """Drain bounded queues into connection output buffers.  Called
        once per event-loop turn by the daemon; never blocks."""
        for sub in list(self.subscribers.values()):
            conn = sub.conn
            if conn is None:
                continue
            if getattr(conn, "closed", False):
                self.drop_connection(conn)
                continue
            if len(getattr(conn, "out", b"")) > BACKPRESSURE_BYTES:
                continue
            out = bytearray()
            if sub.pending_drops:
                dropped_now = sub.pending_drops
                sub.pending_drops = 0
                out += encode_push(
                    "telemetry",
                    {
                        "seq": self._next_seq(),
                        "type": "drops",
                        "dropped": dropped_now,
                        "total_dropped": sub.dropped,
                    },
                )
                sub.sent += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        metric_names.SERVE_TELEMETRY_DROPS,
                        "telemetry frames dropped at full queues",
                    ).inc(amount=dropped_now, reason="slow-subscriber")
            budget = MAX_FRAMES_PER_FLUSH
            while sub.queue and budget:
                out += encode_push("telemetry", sub.queue.popleft())
                sub.sent += 1
                budget -= 1
            if out:
                send(conn, bytes(out))

    def stats(self) -> dict[str, Any]:
        subs = [self.subscribers[k].stats() for k in sorted(self.subscribers)]
        return {
            "subscribers": subs,
            "tapped": self.tapped,
            "total_dropped": sum(s["dropped"] for s in subs),
        }


# -- the aggregator ------------------------------------------------------


def _zero_rollup() -> dict[str, int]:
    return {key: 0 for key in sorted(TELEMETRY_ROLLUP_KEYS)}


def build_snapshot(daemon: "ServeDaemon") -> dict[str, Any]:
    """Fold every session's registry into per-tenant and global rollups
    plus the daemon's own request-plane numbers — the ``telemetry.snapshot``
    RPC body and ``repro top``'s data source."""
    uptime = max(1e-9, time.monotonic() - daemon.started_at)
    metrics = daemon.obs.metrics

    req = metrics.get(metric_names.SERVE_REQUESTS)
    requests_total = int(req.total()) if req is not None else 0
    hist = metrics.get(metric_names.SERVE_REQUEST_US)
    shed = metrics.get(metric_names.SERVE_SHED)

    tenants: dict[str, dict[str, int]] = {}
    for session in daemon.registry.sessions.values():
        rollup = tenants.setdefault(session.tenant, _zero_rollup())
        obs = session.env.machine.obs
        rollup["sessions"] += 1
        rollup["parked"] += 1 if session.state.value == "parked" else 0
        rollup["steps_applied"] += session.steps_applied
        rollup["sim_cycles"] += session.sim_cycles()
        rollup["slices_run"] += session.slices_run
        rollup["oracle_violations"] += 1 if session.engine.failure else 0
        rollup["postmortems"] += len(obs.flight.postmortems)
        rollup["exits"] += sum(
            obs.metrics.exit_counts_by_reason().values()
        )
    global_rollup = _zero_rollup()
    for rollup in tenants.values():
        for key, value in rollup.items():
            global_rollup[key] += value

    return {
        "schema": TELEMETRY_SCHEMA_NAME,
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "kind": "snapshot",
        "endpoint": daemon.endpoint,
        "uptime_seconds": uptime,
        "daemon": {
            "connections": len(daemon.connections),
            "requests_total": requests_total,
            "requests_per_sec": requests_total / uptime,
            "request_p50_us": hist.quantile(0.5) if hist else 0.0,
            "request_p99_us": hist.quantile(0.99) if hist else 0.0,
            "shed": {
                "busy": int(shed.get(reason="busy")) if shed else 0,
                "quota": int(shed.get(reason="quota")) if shed else 0,
            },
            "backlog": daemon.scheduler.pending(),
            "completed_jobs": daemon.scheduler.completed,
            "subscribers": daemon.telemetry.stats()["subscribers"],
        },
        "global": global_rollup,
        "tenants": {name: tenants[name] for name in sorted(tenants)},
    }


def render_prom(daemon: "ServeDaemon") -> str:
    """The daemon's Prometheus text exposition: its own request-plane
    registry plus synthetic per-tenant rollup gauges from the
    aggregator (``covirt_tenant_*``)."""
    snapshot = build_snapshot(daemon)
    lines = [daemon.obs.metrics.render_prom().rstrip("\n")]
    lines.append(
        "# HELP covirt_uptime_seconds daemon uptime\n"
        "# TYPE covirt_uptime_seconds gauge\n"
        f"covirt_uptime_seconds {snapshot['uptime_seconds']:.3f}"
    )
    for key in sorted(TELEMETRY_ROLLUP_KEYS):
        name = f"covirt_tenant_{key}"
        lines.append(f"# HELP {name} per-tenant rollup: {key}")
        lines.append(f"# TYPE {name} gauge")
        for tenant, rollup in snapshot["tenants"].items():
            lines.append(f'{name}{{tenant="{tenant}"}} {rollup[key]}')
    return "\n".join(line for line in lines if line) + "\n"
