"""One served session: a whole simulated Covirt machine behind an id.

A :class:`Session` owns a private
:class:`~repro.harness.env.CovirtEnvironment` driven by a seeded
:class:`~repro.fuzz.engine.FuzzEngine` — the *scenario* is a fuzz
schedule name (``baseline``, ``hostile``, ``churn``, ``recovery``), so a
session's behaviour is a pure function of ``(scenario, seed, sequence
of client operations)``.  Two sessions launched with the same scenario
and seed and driven with the same requests produce identical per-step
outcomes no matter what any *other* session on the daemon is doing:
sessions share no simulator state at all, which is the serving layer's
isolation claim.

Crash containment: any exception escaping session work (or a fuzz
failure the engine's oracles detect) **parks** the session — it stops
accepting mutating requests, freezes a post-mortem bundle through the
machine's always-on :class:`~repro.obs.flight.FlightRecorder`, and
leaves every other session untouched.  Parked sessions stay
inspectable (``session.inspect`` / ``session.trace``) for debugging and
can be killed, mirroring the recovery supervisor's terminal-park
semantics one layer up.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.fuzz.actions import Action, ActionKind
from repro.fuzz.engine import MAX_SLOTS, SCHEDULES, FuzzEngine
from repro.pisces.enclave import EnclaveState
from repro.serve.protocol import (
    E_INVALID_PARAMS,
    E_SESSION_PARKED,
    ServeError,
)

#: Scenario names a client may launch (the fuzz schedule tables).
SCENARIOS: tuple[str, ...] = tuple(sorted(SCHEDULES))

#: Hard cap on fuzz steps applied within one scheduler slice; beyond it
#: the slice's remaining cycle budget is burned as idle time so the
#: cycle contract holds without unbounded per-slice work.
MAX_STEPS_PER_SLICE = 64

#: Post-mortem trigger recorded when the serving layer parks a session.
PARK_TRIGGER = "serve-parked"

#: The debug/chaos injection kind: raises inside the session so tests
#: (and operators) can prove crash containment end to end.
CRASH_KIND = "crash"


class SessionState(enum.Enum):
    RUNNING = "running"
    PARKED = "parked"
    KILLED = "killed"


class SessionCrashed(RuntimeError):
    """Raised by an injected ``crash`` action (never caught inside the
    session — the containment path must handle it)."""


class Session:
    """A tenant's simulated machine, steppable in budgeted slices."""

    def __init__(
        self, session_id: str, tenant: str, scenario: str, seed: int
    ) -> None:
        if scenario not in SCHEDULES:
            raise ServeError(
                E_INVALID_PARAMS,
                f"unknown scenario {scenario!r}; choose from "
                f"{', '.join(SCENARIOS)}",
            )
        self.session_id = session_id
        self.tenant = tenant
        self.scenario = scenario
        self.seed = int(seed)
        self.engine = FuzzEngine(seed=self.seed, schedule=scenario)
        self.env = self.engine.env
        self.state = SessionState.RUNNING
        self.park_reason: str | None = None
        self.slices_run = 0
        #: Daemon hook: called ``(session)`` once when the session parks.
        self.on_park = None
        # Stamp who this machine belongs to into its flight recorder, so
        # every post-mortem frozen from inside the daemon is attributable
        # on its own (park() adds scheduler-slice context at freeze time).
        self.env.machine.obs.flight.identity = {
            "tenant": tenant,
            "session_id": session_id,
            "scenario": scenario,
            "seed": self.seed,
        }

    # -- state gates -----------------------------------------------------

    @property
    def clock(self) -> int:
        return self.env.machine.clock.now

    @property
    def steps_applied(self) -> int:
        return len(self.engine.steps)

    def require_running(self) -> None:
        if self.state is SessionState.PARKED:
            raise ServeError(
                E_SESSION_PARKED,
                f"session {self.session_id} is parked: {self.park_reason}",
            )

    def park(self, reason: str) -> None:
        """Park the session and freeze its post-mortem bundle (once)."""
        if self.state is not SessionState.RUNNING:
            return
        self.state = SessionState.PARKED
        self.park_reason = reason
        self.env.machine.obs.flight.identity.update(
            {
                "slices_run": self.slices_run,
                "steps_applied": self.steps_applied,
                "clock": self.clock,
            }
        )
        self.env.machine.obs.flight.postmortem(
            PARK_TRIGGER,
            reason,
            session=self.session_id,
            tenant=self.tenant,
            scenario=self.scenario,
            seed=self.seed,
            steps_applied=self.steps_applied,
        )
        if self.on_park is not None:
            self.on_park(self)

    def _contain(self, work):
        """Run session-mutating work; any escape parks this session and
        surfaces as a typed ``session_parked`` error.  An engine-level
        failure (oracle violation, unexpected exception inside a fuzz
        step) parks too — a machine whose invariants broke must not keep
        serving as if nothing happened."""
        self.require_running()
        try:
            result = work()
        except ServeError:
            raise
        except Exception as exc:  # noqa: BLE001 — the containment point
            self.park(f"{type(exc).__name__}: {exc}")
            raise ServeError(
                E_SESSION_PARKED,
                f"session {self.session_id} crashed and was parked: "
                f"{type(exc).__name__}: {exc}",
            ) from None
        if self.engine.failure is not None:
            detail = self.engine.failure
            self.park(f"{detail['kind']} at step {detail['step']}: "
                      f"{detail['detail']}")
            raise ServeError(
                E_SESSION_PARKED,
                f"session {self.session_id} failed and was parked: "
                f"{detail['detail']}",
            )
        return result

    # -- driving ---------------------------------------------------------

    def step(self, steps: int) -> list[dict[str, Any]]:
        """Apply ``steps`` scheduled fuzz actions; return their records."""
        before = self.steps_applied

        def work():
            self.engine.run(steps)

        self._contain(work)
        return [self._step_dict(s) for s in self.engine.steps[before:]]

    def advance(self, cycles: int) -> dict[str, Any]:
        """One scheduler slice: advance simulated time by ``cycles``.

        Applies scheduled fuzz actions until the clock has moved at
        least ``cycles`` (actions may overshoot — a TICK is indivisible)
        with at most :data:`MAX_STEPS_PER_SLICE` actions; any remaining
        budget after the step cap elapses as idle machine time so a
        slice always honours its cycle contract.
        """
        start = self.clock
        start_steps = self.steps_applied

        def work():
            applied = 0
            while self.clock - start < cycles and applied < MAX_STEPS_PER_SLICE:
                self.engine.run(1)
                applied += 1
                if self.engine.failure is not None:
                    return
            shortfall = cycles - (self.clock - start)
            if shortfall > 0:
                self.env.machine.elapse(shortfall)
                self.env.recovery.tick()

        self._contain(work)
        self.slices_run += 1
        return {
            "cycles": self.clock - start,
            "steps": self.steps_applied - start_steps,
            "clock": self.clock,
        }

    def inject(self, kind: str, params: dict[str, Any]) -> dict[str, Any]:
        """Apply one fully resolved fuzz action (no RNG consumed), or the
        special ``crash`` kind, which blows up *inside* the session to
        exercise the containment path."""
        if kind == CRASH_KIND:
            def crash():
                raise SessionCrashed(
                    str(params.get("reason", "injected crash"))
                )

            self._contain(crash)
            raise AssertionError("unreachable")  # pragma: no cover
        try:
            action_kind = ActionKind(kind)
        except ValueError:
            choices = ", ".join(k.value for k in ActionKind)
            raise ServeError(
                E_INVALID_PARAMS,
                f"unknown action kind {kind!r}; choose from {choices} "
                f"or {CRASH_KIND!r}",
            ) from None
        record = self._contain(
            lambda: self.engine.inject(Action(action_kind, dict(params)))
        )
        return self._step_dict(record)

    # -- observation -----------------------------------------------------

    def _step_dict(self, step) -> dict[str, Any]:
        return {
            "index": step.index,
            "kind": step.action.kind.value,
            "outcome": step.outcome,
            "clock": step.clock,
        }

    def sim_cycles(self) -> int:
        machine = self.env.machine
        return max(
            machine.clock.now,
            max(machine.core(i).read_tsc() for i in range(machine.num_cores)),
        )

    def inspect(self, include_metrics: bool = False) -> dict[str, Any]:
        """The session's control-plane view: enclaves, recovery state,
        exit counts, and (on request) the full metrics registry."""
        enclaves = []
        for slot in range(MAX_SLOTS):
            svc = self.engine.slots[slot]
            if svc is None:
                continue
            enclaves.append(
                {
                    "slot": slot,
                    "name": svc.name,
                    "enclave_id": svc.enclave.enclave_id,
                    "state": svc.enclave.state.value,
                    "phase": svc.phase.value,
                    "incarnation": svc.incarnation,
                }
            )
        registry = self.env.machine.obs.metrics
        doc: dict[str, Any] = {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "scenario": self.scenario,
            "seed": self.seed,
            "state": self.state.value,
            "park_reason": self.park_reason,
            "clock": self.clock,
            "sim_cycles": self.sim_cycles(),
            "steps_applied": self.steps_applied,
            "slices_run": self.slices_run,
            "enclaves": enclaves,
            "exits_by_reason": registry.exit_counts_by_reason(),
            "postmortems": len(self.env.machine.obs.flight.postmortems),
            "failure": self.engine.failure,
            # The engine's behavioural-transcript hash: lets clients
            # (and the cross-subsystem conformance tests) prove a served
            # run matches a direct-engine or sweep-harness run of the
            # same (scenario, seed) byte for byte.
            "fingerprint": self.engine.fingerprint(),
        }
        if include_metrics:
            doc["metrics"] = registry.to_dict()
        return doc

    @staticmethod
    def _event_cycle(event: dict[str, Any]) -> int:
        """The simulated-time stamp of one flight-recorder event (spans
        carry start/end, metric deltas and notes carry ``tsc``)."""
        if "tsc" in event:
            return int(event["tsc"])
        return int(event.get("end", event.get("start", 0)))

    def trace(
        self,
        cursor: int = 0,
        limit: int = 256,
        since_cycle: int | None = None,
    ) -> dict[str, Any]:
        """Stream flight-recorder events (completed spans and metric
        deltas) past ``cursor``, at most ``limit`` per call.  Events that
        wrapped out of the bounded ring before the client caught up are
        reported as ``dropped`` — backlog is explicitly bounded, never
        silently infinite.  ``since_cycle`` narrows the window to events
        stamped at or after that simulated time; events it skips still
        advance the cursor (they are consumed, not deferred)."""
        flight = self.env.machine.obs.flight
        events = flight.tail()
        first = flight.recorded - len(events)
        cursor = max(0, int(cursor))
        dropped = max(0, first - cursor)
        limit = max(0, int(limit))
        window: list[dict[str, Any]] = []
        next_cursor = max(cursor, first)
        for index, event in enumerate(events, start=first):
            if index < cursor:
                continue
            if len(window) >= limit:
                break
            next_cursor = index + 1
            if since_cycle is not None and self._event_cycle(event) < since_cycle:
                continue
            window.append(event)
        else:
            next_cursor = flight.recorded
        return {
            "events": window,
            "cursor": next_cursor,
            "dropped": dropped,
            "recorded": flight.recorded,
        }

    # -- teardown --------------------------------------------------------

    def kill(self) -> dict[str, Any]:
        """Tear down every live enclave and retire the session."""
        survivors = 0
        for slot in range(MAX_SLOTS):
            svc = self.engine.slots[slot]
            if svc is None:
                continue
            if svc.enclave.state is EnclaveState.RUNNING:
                self.env.recovery.services.pop(svc.name, None)
                self.env.teardown(svc.enclave)
                survivors += 1
            self.engine.slots[slot] = None
        self.state = SessionState.KILLED
        return {
            "session_id": self.session_id,
            "enclaves_torn_down": survivors,
            "steps_applied": self.steps_applied,
            "final_clock": self.clock,
        }
