"""The covirt-serve wire protocol.

Newline-delimited JSON-RPC over a stream socket: every request is one
JSON object on one line, every response is one JSON object on one line,
matched by ``id``.  The framing is deliberately trivial — any language
with a socket and a JSON parser is a client.

Request::

    {"id": 7, "method": "session.step", "params": {"session_id": "s1", "steps": 4}}

Success::

    {"id": 7, "ok": true, "result": {...}}

Failure::

    {"id": 7, "ok": false, "error": {"code": "no_such_session", "message": "..."}}

Errors are **typed**: the ``code`` field is one of the ``E_*`` constants
below, so clients branch on codes, never on message text.  Admission
control sheds load with explicit ``busy`` / ``quota`` errors instead of
queuing unboundedly; a request the daemon cannot even parse is answered
with ``id: null`` (there is no trustworthy id to echo).

Lines are capped at :data:`MAX_LINE_BYTES` in **both** directions: an
oversized request line is discarded up to its terminating newline and
answered with ``payload_too_large``, and a response the daemon cannot
fit under the cap is replaced by a typed ``response_too_large`` error
(never a silently truncated line) telling the client to narrow its
window (``limit`` / ``since_cycle``).  The connection stays usable
either way.

A connection that called ``telemetry.subscribe`` additionally receives
**server-push lines** — ``{"push": "telemetry", "frame": {...}}``, no
``id`` — interleaved between responses; see ``docs/observability.md``
for the frame schema.
"""

from __future__ import annotations

import json
from typing import Any

PROTOCOL_NAME = "covirt-serve"
PROTOCOL_VERSION = 1

#: Hard cap on one request/response line (framing survives violations).
MAX_LINE_BYTES = 256 * 1024

# -- typed error codes --------------------------------------------------

E_PARSE = "parse_error"  # line is not valid JSON
E_INVALID_REQUEST = "invalid_request"  # JSON, but not a request object
E_UNKNOWN_METHOD = "unknown_method"
E_INVALID_PARAMS = "invalid_params"
E_PAYLOAD_TOO_LARGE = "payload_too_large"
E_RESPONSE_TOO_LARGE = "response_too_large"  # narrow the request window
E_BUSY = "busy"  # admission control shed the request
E_QUOTA = "quota"  # per-tenant quota exceeded
E_NO_SUCH_SESSION = "no_such_session"  # unknown id, or another tenant's
E_SESSION_PARKED = "session_parked"  # crashed session; inspect/trace/kill only
E_SHUTTING_DOWN = "shutting_down"
E_INTERNAL = "internal"  # daemon-side bug (never a tenant's fault)

ERROR_CODES = frozenset(
    {
        E_PARSE,
        E_INVALID_REQUEST,
        E_UNKNOWN_METHOD,
        E_INVALID_PARAMS,
        E_PAYLOAD_TOO_LARGE,
        E_RESPONSE_TOO_LARGE,
        E_BUSY,
        E_QUOTA,
        E_NO_SUCH_SESSION,
        E_SESSION_PARKED,
        E_SHUTTING_DOWN,
        E_INTERNAL,
    }
)


class ServeError(Exception):
    """A typed protocol error (raised server-side, re-raised client-side)."""

    def __init__(self, code: str, message: str, data: Any = None) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.data = data

    def to_error(self) -> dict[str, Any]:
        error: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.data is not None:
            error["data"] = self.data
        return error


# -- encoding -----------------------------------------------------------


def _line(obj: dict[str, Any]) -> bytes:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def encode_request(
    request_id: int, method: str, params: dict[str, Any] | None = None
) -> bytes:
    return _line(
        {"id": request_id, "method": method, "params": params or {}}
    )


def encode_response(request_id: int | None, result: Any) -> bytes:
    return _line({"id": request_id, "ok": True, "result": result})


def encode_error(request_id: int | None, err: ServeError) -> bytes:
    return _line({"id": request_id, "ok": False, "error": err.to_error()})


def encode_push(channel: str, frame: dict[str, Any]) -> bytes:
    """A server-push line (no ``id`` — nothing to match): the telemetry
    plane's frames travel as ``{"push": "telemetry", "frame": {...}}``
    interleaved with responses on a subscribed connection."""
    return _line({"push": channel, "frame": frame})


# -- decoding -----------------------------------------------------------


def decode_line(line: bytes) -> dict[str, Any]:
    """One wire line → object; raises :data:`E_PARSE` on garbage."""
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ServeError(E_PARSE, f"malformed JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ServeError(
            E_INVALID_REQUEST,
            f"expected an object, got {type(obj).__name__}",
        )
    return obj


def parse_request(obj: dict[str, Any]) -> tuple[int | None, str, dict[str, Any]]:
    """Validate a decoded request envelope → ``(id, method, params)``."""
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, int):
        raise ServeError(E_INVALID_REQUEST, "id must be an integer or null")
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise ServeError(E_INVALID_REQUEST, "method must be a non-empty string")
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ServeError(E_INVALID_PARAMS, "params must be an object")
    return request_id, method, params


# -- framing ------------------------------------------------------------


class LineBuffer:
    """Incremental newline framing with an oversize-line escape hatch.

    Feed raw socket bytes in; get back a list of events, in order:
    ``("line", payload)`` for each complete line within the limit, and
    ``("overflow", discarded_bytes)`` once per oversized line (whose
    bytes are discarded through its terminating newline, so one abusive
    request never wedges the connection).
    """

    def __init__(self, limit: int = MAX_LINE_BYTES) -> None:
        self.limit = limit
        self._buf = bytearray()
        self._discarding = False
        self._discarded = 0

    def feed(self, data: bytes) -> list[tuple[str, Any]]:
        events: list[tuple[str, Any]] = []
        self._buf += data
        while True:
            newline = self._buf.find(b"\n")
            if self._discarding:
                if newline < 0:
                    self._discarded += len(self._buf)
                    self._buf.clear()
                    break
                self._discarded += newline + 1
                del self._buf[: newline + 1]
                events.append(("overflow", self._discarded))
                self._discarding = False
                self._discarded = 0
                continue
            if newline < 0:
                if len(self._buf) > self.limit:
                    self._discarded = len(self._buf)
                    self._buf.clear()
                    self._discarding = True
                break
            if newline > self.limit:
                self._discarded = newline + 1
                del self._buf[: newline + 1]
                events.append(("overflow", self._discarded))
                self._discarded = 0
                continue
            line = bytes(self._buf[:newline])
            del self._buf[: newline + 1]
            if line.strip():
                events.append(("line", line))
        return events
