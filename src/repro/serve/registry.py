"""Session registry: per-tenant quotas and admission control.

The registry is the daemon's only map from session ids to machines, and
the single place admission decisions are made.  Two principles:

* **Shed, don't queue.** A launch past the per-tenant or daemon-wide
  session cap fails *now* with a typed ``quota`` / ``busy`` error; the
  daemon never builds an unbounded backlog a client can't see.
* **Tenants are invisible to each other.** Every lookup is scoped by
  tenant: addressing another tenant's session id is indistinguishable
  from addressing a nonexistent one (``no_such_session``), so session
  ids leak nothing across the trust boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.protocol import (
    E_BUSY,
    E_NO_SUCH_SESSION,
    E_QUOTA,
    ServeError,
)
from repro.serve.session import Session

#: Daemon-wide session cap (simulated machines are not free: each owns
#: a full 64 GiB-modelled testbed).
DEFAULT_MAX_TOTAL_SESSIONS = 16


@dataclass(frozen=True)
class TenantQuota:
    """Everything one tenant is allowed to consume."""

    #: Concurrent live sessions (parked sessions still count — they hold
    #: post-mortem state until the tenant kills them).
    max_sessions: int = 4
    #: Fuzz actions one ``session.step`` request may apply.
    max_steps_per_request: int = 256
    #: Sim-cycles one ``session.run`` request may ask for.
    max_cycles_per_request: int = 2_000_000_000
    #: Sim-cycles per scheduler slice: a bigger ``session.run`` is
    #: chopped into slices this size and round-robined with every other
    #: tenant's work.
    max_cycles_per_slice: int = 50_000_000
    #: Queued ``session.run`` jobs per tenant before admission sheds.
    max_pending_jobs: int = 2
    #: Flight-recorder events one ``session.trace`` request may return.
    max_trace_events: int = 256


class SessionRegistry:
    """Owns every live session, scoped by tenant."""

    def __init__(
        self,
        quota: TenantQuota | None = None,
        max_total_sessions: int = DEFAULT_MAX_TOTAL_SESSIONS,
    ) -> None:
        self.quota = quota or TenantQuota()
        self.max_total_sessions = max_total_sessions
        self.sessions: dict[str, Session] = {}
        self.launched = 0
        self.killed = 0

    # -- admission -------------------------------------------------------

    def sessions_of(self, tenant: str) -> list[Session]:
        return [s for s in self.sessions.values() if s.tenant == tenant]

    def launch(self, tenant: str, scenario: str, seed: int) -> Session:
        if len(self.sessions) >= self.max_total_sessions:
            raise ServeError(
                E_BUSY,
                f"daemon at capacity ({self.max_total_sessions} sessions);"
                " retry later or kill a session",
            )
        mine = len(self.sessions_of(tenant))
        if mine >= self.quota.max_sessions:
            raise ServeError(
                E_QUOTA,
                f"tenant {tenant!r} at its session quota "
                f"({self.quota.max_sessions}); kill one first",
            )
        self.launched += 1
        session_id = f"s{self.launched}"
        session = Session(session_id, tenant, scenario, seed)
        self.sessions[session_id] = session
        return session

    # -- lookup ----------------------------------------------------------

    def get(self, tenant: str, session_id: str) -> Session:
        session = self.sessions.get(str(session_id))
        if session is None or session.tenant != tenant:
            raise ServeError(
                E_NO_SUCH_SESSION, f"no session {session_id!r}"
            )
        return session

    def kill(self, tenant: str, session_id: str) -> dict:
        session = self.get(tenant, session_id)
        result = session.kill()
        del self.sessions[session.session_id]
        self.killed += 1
        return result

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.sessions)

    def by_tenant(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for session in self.sessions.values():
            out[session.tenant] = out.get(session.tenant, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> dict:
        return {
            "sessions": len(self.sessions),
            "by_tenant": self.by_tenant(),
            "launched": self.launched,
            "killed": self.killed,
            "parked": sum(
                1 for s in self.sessions.values()
                if s.state.value == "parked"
            ),
            "max_total_sessions": self.max_total_sessions,
        }
