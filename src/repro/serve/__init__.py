"""repro.serve — the multi-tenant serving daemon.

The simulator as a long-running service: one :class:`ServeDaemon` owns a
pool of concurrent simulated Covirt machines (one
:class:`~repro.harness.env.CovirtEnvironment` per session), multiplexed
over a newline-delimited JSON-RPC protocol on a Unix or TCP socket.

Layering mirrors the paper's isolation stance (Quest-V: concurrent
tenants share no trusted root) and ReHype's survivability stance (the
service outlives any tenant's crash):

* :mod:`repro.serve.protocol` — the wire format and typed error codes;
* :mod:`repro.serve.session`  — one tenant machine, steppable in
  budgeted sim-cycle slices, crash-contained;
* :mod:`repro.serve.registry` — per-tenant quotas and admission control;
* :mod:`repro.serve.scheduler` — cooperative round-robin slicing so one
  hot tenant cannot starve the rest;
* :mod:`repro.serve.daemon`   — the event loop (``covirt-serve``);
* :mod:`repro.serve.client`   — the blocking client library the CLI,
  tests, and ``benchmarks/bench_serve_throughput.py`` drive;
* :mod:`repro.serve.telemetry` — the live telemetry plane: bounded
  per-subscriber frame streams, per-tenant rollups
  (``telemetry.snapshot``) and Prometheus text exposition;
* :mod:`repro.serve.top`      — the ``repro top`` dashboard and the CI
  ``--probe`` frame validator.

See ``docs/serving.md`` for the protocol reference and quickstart.
"""

from __future__ import annotations

from repro.serve.client import ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_NAME,
    PROTOCOL_VERSION,
    ServeError,
)
from repro.serve.registry import SessionRegistry, TenantQuota
from repro.serve.scheduler import CooperativeScheduler, RunJob
from repro.serve.session import Session, SessionState
from repro.serve.telemetry import (
    TelemetryHub,
    TelemetrySubscriber,
    build_snapshot,
    render_prom,
)

__all__ = [
    "CooperativeScheduler",
    "MAX_LINE_BYTES",
    "PROTOCOL_NAME",
    "PROTOCOL_VERSION",
    "RunJob",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "Session",
    "SessionRegistry",
    "SessionState",
    "TelemetryHub",
    "TelemetrySubscriber",
    "TenantQuota",
    "build_snapshot",
    "render_prom",
]
