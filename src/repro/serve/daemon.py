"""The ``covirt-serve`` daemon: one event loop, many machines.

A single-threaded ``selectors`` loop multiplexes every client
connection *and* the cooperative scheduler: socket readiness is
serviced first, then one scheduler slice advances the round-robin run
queue.  Single-threadedness is a feature — the simulated machines stay
strictly deterministic (no lock ordering, no interleaving races), and
fairness is the scheduler's explicit slice policy rather than an
accident of thread timing.

The daemon carries its own :class:`~repro.obs.Observability` bundle on
a wall-clock timeline (simulated machines keep their own simulated
clocks): every request is a ``serve.request.<method>`` span, counted in
``serve.requests`` and timed into the ``serve.request_us`` histogram;
admission sheds tick ``serve.shed``; session churn moves the
``serve.sessions`` gauge; crash containment ticks ``serve.parks``.

Embedding: tests and the throughput benchmark run the daemon on a
background thread via :meth:`ServeDaemon.start` / :meth:`stop`; the
``covirt-serve`` console script (and ``python -m repro serve``) runs
:func:`main` in the foreground.
"""

from __future__ import annotations

import argparse
import selectors
import socket
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.fuzz.rng import DEFAULT_SEED
from repro.obs import Observability, metric_names
from repro.obs.metrics import WALL_US_BUCKETS
from repro.obs.schema import (
    TELEMETRY_SCHEMA_NAME,
    TELEMETRY_SCHEMA_VERSION,
)
from repro.serve.protocol import (
    E_BUSY,
    E_INTERNAL,
    E_INVALID_PARAMS,
    E_PAYLOAD_TOO_LARGE,
    E_QUOTA,
    E_RESPONSE_TOO_LARGE,
    E_UNKNOWN_METHOD,
    MAX_LINE_BYTES,
    PROTOCOL_NAME,
    PROTOCOL_VERSION,
    LineBuffer,
    ServeError,
    decode_line,
    encode_error,
    encode_response,
    parse_request,
)
from repro.serve.registry import (
    DEFAULT_MAX_TOTAL_SESSIONS,
    SessionRegistry,
    TenantQuota,
)
from repro.serve.scheduler import CooperativeScheduler, RunJob
from repro.serve.session import SCENARIOS, Session
from repro.serve.telemetry import (
    DEFAULT_QUEUE_FRAMES,
    TelemetryHub,
    build_snapshot,
    render_prom,
)

#: Daemon-wide cap on queued run jobs, across all tenants.
DEFAULT_MAX_BACKLOG = 32

#: Tenant used by connections that never sent ``hello``.
DEFAULT_TENANT = "anon"

#: Sentinel a handler returns when the response will be sent later.
_ASYNC = object()


class _WallClock:
    """Monotonic nanosecond clock with the simulator's Clock interface,
    so the daemon can reuse the whole obs stack on wall time."""

    @property
    def now(self) -> int:
        return time.monotonic_ns()


class Connection:
    """Per-client state: framing buffer, write backlog, tenant."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.buf = LineBuffer()
        self.out = bytearray()
        self.tenant = DEFAULT_TENANT
        self.closed = False
        self.requests = 0


class ServeDaemon:
    """Owns the listening socket, the registry, and the scheduler."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        tcp: tuple[str, int] | None = None,
        quota: TenantQuota | None = None,
        max_total_sessions: int = DEFAULT_MAX_TOTAL_SESSIONS,
        max_backlog: int = DEFAULT_MAX_BACKLOG,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ValueError("exactly one of socket_path/tcp is required")
        self.registry = SessionRegistry(
            quota=quota, max_total_sessions=max_total_sessions
        )
        self.scheduler = CooperativeScheduler()
        self.max_backlog = max_backlog
        self.obs = Observability(_WallClock())
        self.obs.flight.register_context(
            "serve.registry", self.registry.summary
        )
        self.started_at = time.monotonic()
        # The live observation plane: frames fan out to subscribers, the
        # aggregator folds session registries into telemetry.snapshot.
        self.telemetry = TelemetryHub(self.obs.metrics)
        self._socket_path: Path | None = None
        if socket_path is not None:
            self._socket_path = Path(socket_path)
            if self._socket_path.exists():
                self._socket_path.unlink()
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(str(self._socket_path))
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listener.bind(tcp)
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        # Cross-thread stop signal (stop() may be called from anywhere).
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._stop = False
        self._thread = None
        self.connections: set[Connection] = set()
        self._methods: dict[str, Callable] = {
            "ping": self._m_ping,
            "hello": self._m_hello,
            "stats": self._m_stats,
            "shutdown": self._m_shutdown,
            "session.launch": self._m_launch,
            "session.step": self._m_step,
            "session.run": self._m_run,
            "session.inspect": self._m_inspect,
            "session.trace": self._m_trace,
            "session.trace_stream": self._m_trace_stream,
            "session.inject": self._m_inject,
            "session.kill": self._m_kill,
            "telemetry.subscribe": self._m_telemetry_subscribe,
            "telemetry.unsubscribe": self._m_telemetry_unsubscribe,
            "telemetry.snapshot": self._m_telemetry_snapshot,
            "telemetry.prom": self._m_telemetry_prom,
        }

    # -- addressing ------------------------------------------------------

    @property
    def endpoint(self) -> str:
        """The ``ServeClient`` connection spec for this daemon."""
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        host, port = self._listener.getsockname()[:2]
        return f"tcp:{host}:{port}"

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`stop` or a ``shutdown``
        request; flushes pending responses on the way out."""
        try:
            while not self._stop:
                busy = not self.scheduler.idle or self.telemetry.pending()
                timeout = 0.0 if busy else 0.5
                for key, _mask in self._selector.select(timeout):
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._wake_r.recv(4096)
                    else:
                        self._service(key.data, key.events)
                self.scheduler.tick()
                # Drain telemetry queues once per turn, after both the
                # request wave and the scheduler slice that produced
                # frames — bounded per subscriber, never blocking.
                self.telemetry.flush(self._send)
        finally:
            self._shutdown_sockets()

    def start(self):
        """Run the loop on a daemon thread (tests / benches / demos)."""
        import threading

        self._thread = threading.Thread(
            target=self.serve_forever, name="covirt-serve", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self) -> None:
        """Stop the loop from any thread and wait for it to exit."""
        self._stop = True
        try:
            self._wake_w.send(b"x")
        except OSError:  # pragma: no cover - already torn down
            pass
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def _shutdown_sockets(self) -> None:
        for conn in list(self.connections):
            if conn.out and not conn.closed:
                try:
                    conn.sock.setblocking(True)
                    conn.sock.settimeout(0.5)
                    conn.sock.sendall(bytes(conn.out))
                except OSError:
                    pass
            self._close(conn)
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError):
                pass
            sock.close()
        self._selector.close()
        if self._socket_path is not None and self._socket_path.exists():
            self._socket_path.unlink()

    # -- socket plumbing -------------------------------------------------

    def _accept(self) -> None:
        try:
            sock, addr = self._listener.accept()
        except OSError:  # pragma: no cover - raced close
            return
        sock.setblocking(False)
        conn = Connection(sock, str(addr))
        self.connections.add(conn)
        self._selector.register(sock, selectors.EVENT_READ, conn)

    def _service(self, conn: Connection, events: int) -> None:
        if events & selectors.EVENT_WRITE:
            self._flush(conn)
        if conn.closed or not events & selectors.EVENT_READ:
            return
        try:
            data = conn.sock.recv(262144)
        except BlockingIOError:  # pragma: no cover - spurious readiness
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            # Client went away; any queued job for it is dropped at its
            # next slice (see CooperativeScheduler.tick).
            self._close(conn)
            return
        for kind, payload in conn.buf.feed(data):
            if kind == "overflow":
                err = ServeError(
                    E_PAYLOAD_TOO_LARGE,
                    f"request line of {payload} bytes exceeds the "
                    f"{conn.buf.limit}-byte cap",
                )
                self._reply_error(conn, None, "(oversized)", None, err)
            else:
                self._dispatch(conn, payload)
            if conn.closed or self._stop:
                break

    def _close(self, conn: Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self.telemetry.drop_connection(conn)
        self._sync_taps()
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover
            pass
        self.connections.discard(conn)

    def _send(self, conn: Connection, data: bytes) -> None:
        if conn.closed:
            return
        conn.out += data
        self._flush(conn)

    def _flush(self, conn: Connection) -> None:
        while conn.out:
            try:
                sent = conn.sock.send(bytes(conn.out))
            except BlockingIOError:
                break
            except OSError:
                self._close(conn)
                return
            del conn.out[:sent]
        events = selectors.EVENT_READ
        if conn.out:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError):  # pragma: no cover - raced close
            pass

    # -- request handling ------------------------------------------------

    def _dispatch(self, conn: Connection, line: bytes) -> None:
        t0 = time.monotonic_ns()
        request_id: int | None = None
        method = "(unparsed)"
        conn.requests += 1
        try:
            request_id, method, params = parse_request(decode_line(line))
            handler = self._methods.get(method)
            if handler is None:
                raise ServeError(
                    E_UNKNOWN_METHOD,
                    f"unknown method {method!r}; methods: "
                    f"{', '.join(sorted(self._methods))}",
                )
            result = handler(conn, request_id, params, t0)
            if result is _ASYNC:
                return
            self._reply_ok(conn, request_id, method, t0, result)
        except ServeError as err:
            self._reply_error(conn, request_id, method, t0, err)
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            self._reply_error(
                conn, request_id, method, t0,
                ServeError(E_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )

    def _observe(
        self, method: str, status: str, t0: int | None
    ) -> None:
        metrics = self.obs.metrics
        metrics.counter(
            metric_names.SERVE_REQUESTS, "serve requests handled"
        ).inc(method=method, status=status)
        if t0 is not None:
            t1 = time.monotonic_ns()
            metrics.histogram(
                metric_names.SERVE_REQUEST_US,
                "serve request latency (us, wall clock)",
                buckets=WALL_US_BUCKETS,
            ).observe((t1 - t0) / 1000.0, method=method)
            self.obs.tracer.complete(
                f"serve.request.{method}", t0, t1,
                category="serve", track="serve", status=status,
            )

    def _reply_ok(
        self, conn: Connection, request_id: int | None, method: str,
        t0: int | None, result: Any,
    ) -> None:
        data = encode_response(request_id, result)
        if len(data) > MAX_LINE_BYTES:
            # Never ship a line the client's framing would truncate —
            # answer with a typed error telling it to narrow the window.
            self._reply_error(
                conn, request_id, method, t0,
                ServeError(
                    E_RESPONSE_TOO_LARGE,
                    f"{method} response of {len(data)} bytes exceeds the "
                    f"{MAX_LINE_BYTES}-byte line cap; narrow the request "
                    f"window (e.g. 'limit' / 'since_cycle')",
                    data={"bytes": len(data), "cap": MAX_LINE_BYTES},
                ),
            )
            return
        self._observe(method, "ok", t0)
        self._send(conn, data)

    def _reply_error(
        self, conn: Connection, request_id: int | None, method: str,
        t0: int | None, err: ServeError,
    ) -> None:
        self._observe(method, err.code, t0)
        if err.code in (E_BUSY, E_QUOTA):
            self.obs.metrics.counter(
                metric_names.SERVE_SHED, "requests shed by admission control"
            ).inc(reason=err.code)
            self.telemetry.lifecycle(
                "shed", conn.tenant, reason=err.code, method=method
            )
        self._send(conn, encode_error(request_id, err))

    # -- param helpers ---------------------------------------------------

    @staticmethod
    def _int_param(
        params: dict[str, Any], name: str,
        default: int | None = None, minimum: int | None = None,
    ) -> int:
        value = params.get(name, default)
        if value is None or isinstance(value, bool) or not isinstance(value, int):
            raise ServeError(
                E_INVALID_PARAMS, f"param {name!r} must be an integer"
            )
        if minimum is not None and value < minimum:
            raise ServeError(
                E_INVALID_PARAMS, f"param {name!r} must be >= {minimum}"
            )
        return value

    def _session(self, conn: Connection, params: dict[str, Any]) -> Session:
        session_id = params.get("session_id")
        if not isinstance(session_id, str):
            raise ServeError(
                E_INVALID_PARAMS, "param 'session_id' must be a string"
            )
        return self.registry.get(conn.tenant, session_id)

    def _update_session_gauge(self) -> None:
        gauge = self.obs.metrics.gauge(
            metric_names.SERVE_SESSIONS, "live sessions"
        )
        gauge.set(len(self.registry), tenant="total")
        for tenant, count in self.registry.by_tenant().items():
            gauge.set(count, tenant=tenant)

    # -- methods ---------------------------------------------------------

    def _m_ping(self, conn, request_id, params, t0):
        return {
            "pong": True,
            "protocol": PROTOCOL_NAME,
            "version": PROTOCOL_VERSION,
            "scenarios": list(SCENARIOS),
        }

    def _m_hello(self, conn, request_id, params, t0):
        tenant = params.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise ServeError(
                E_INVALID_PARAMS,
                "param 'tenant' must be a 1..64-char string",
            )
        conn.tenant = tenant
        return {"tenant": tenant}

    def _m_stats(self, conn, request_id, params, t0):
        doc = {
            "registry": self.registry.summary(),
            "scheduler": {
                "pending_jobs": self.scheduler.pending(),
                "completed_jobs": self.scheduler.completed,
                "cancelled_jobs": self.scheduler.cancelled,
            },
            "connections": len(self.connections),
            "telemetry": self.telemetry.stats(),
        }
        if params.get("metrics"):
            doc["metrics"] = self.obs.metrics.to_dict()
        return doc

    def _m_shutdown(self, conn, request_id, params, t0):
        self._stop = True
        return {"stopping": True}

    def _m_launch(self, conn, request_id, params, t0):
        scenario = params.get("scenario", "baseline")
        if not isinstance(scenario, str):
            raise ServeError(
                E_INVALID_PARAMS, "param 'scenario' must be a string"
            )
        seed = self._int_param(params, "seed", default=DEFAULT_SEED, minimum=0)
        session = self.registry.launch(conn.tenant, scenario, seed)
        session.on_park = self._on_park
        self._update_session_gauge()
        self._sync_taps()
        self.telemetry.lifecycle(
            "launch", session.tenant, session.session_id,
            scenario=session.scenario, seed=session.seed,
        )
        return {
            "session_id": session.session_id,
            "scenario": session.scenario,
            "seed": session.seed,
            "tenant": session.tenant,
        }

    def _on_park(self, session: Session) -> None:
        self.obs.metrics.counter(
            metric_names.SERVE_PARKS, "sessions parked by crash containment"
        ).inc(tenant=session.tenant)
        self.obs.flight.note(
            "serve-park",
            f"session {session.session_id} parked: {session.park_reason}",
            tenant=session.tenant,
        )
        self.telemetry.lifecycle(
            "park", session.tenant, session.session_id,
            reason=session.park_reason,
        )

    def _m_step(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        steps = self._int_param(params, "steps", default=1, minimum=1)
        quota = self.registry.quota
        if steps > quota.max_steps_per_request:
            raise ServeError(
                E_QUOTA,
                f"steps {steps} exceeds the per-request quota of "
                f"{quota.max_steps_per_request}",
            )
        records = session.step(steps)
        return {
            "session_id": session.session_id,
            "steps": records,
            "clock": session.clock,
        }

    def _m_run(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        session.require_running()
        cycles = self._int_param(params, "cycles", minimum=1)
        quota = self.registry.quota
        if cycles > quota.max_cycles_per_request:
            raise ServeError(
                E_QUOTA,
                f"cycles {cycles} exceeds the per-request quota of "
                f"{quota.max_cycles_per_request}",
            )
        if self.scheduler.pending() >= self.max_backlog:
            raise ServeError(
                E_BUSY,
                f"run backlog full ({self.max_backlog} jobs); retry later",
            )
        if self.scheduler.pending_for(conn.tenant) >= quota.max_pending_jobs:
            raise ServeError(
                E_BUSY,
                f"tenant {conn.tenant!r} already has "
                f"{quota.max_pending_jobs} runs queued; retry later",
            )
        method = "session.run"
        tenant = conn.tenant

        def on_done(result, err):
            self.obs.metrics.counter(
                metric_names.SERVE_SLICES, "scheduler slices executed"
            ).inc(
                amount=job.slices if job.slices else 1, tenant=tenant
            )
            if conn.closed:
                return
            if err is not None:
                self._reply_error(conn, request_id, method, t0, err)
            else:
                self._reply_ok(conn, request_id, method, t0, result)

        job = RunJob(
            session,
            cycles,
            slice_cycles=quota.max_cycles_per_slice,
            on_done=on_done,
            is_cancelled=lambda: conn.closed,
        )
        self.scheduler.submit(job)
        return _ASYNC

    def _m_inspect(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        return session.inspect(include_metrics=bool(params.get("metrics")))

    def _m_trace(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        cursor = self._int_param(params, "cursor", default=0, minimum=0)
        quota = self.registry.quota
        limit = self._int_param(
            params, "limit", default=quota.max_trace_events, minimum=1
        )
        since_cycle = None
        if params.get("since_cycle") is not None:
            since_cycle = self._int_param(params, "since_cycle", minimum=0)
        return session.trace(
            cursor=cursor,
            limit=min(limit, quota.max_trace_events),
            since_cycle=since_cycle,
        )

    def _m_inject(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        kind = params.get("kind")
        if not isinstance(kind, str):
            raise ServeError(E_INVALID_PARAMS, "param 'kind' must be a string")
        action_params = params.get("params", {})
        if not isinstance(action_params, dict):
            raise ServeError(
                E_INVALID_PARAMS, "param 'params' must be an object"
            )
        record = session.inject(kind, action_params)
        return {"session_id": session.session_id, "step": record}

    def _m_kill(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        self.telemetry.detach_obs(session.session_id)
        result = self.registry.kill(conn.tenant, session.session_id)
        self._update_session_gauge()
        self.telemetry.lifecycle("kill", session.tenant, session.session_id)
        return result

    # -- the telemetry plane ---------------------------------------------

    def _sync_taps(self) -> None:
        """Attach frame-building taps to every session (and the daemon's
        own obs) while subscribers exist; detach them all when the last
        subscriber leaves so idle emission stays on the fast path."""
        if self.telemetry.active:
            self.telemetry.attach_obs(
                "daemon", self.obs, tenant="_daemon", session_id=None
            )
            for session in self.registry.sessions.values():
                self.telemetry.attach_obs(
                    session.session_id,
                    session.env.machine.obs,
                    tenant=session.tenant,
                    session_id=session.session_id,
                )
        else:
            self.telemetry.detach_all()

    def _subscribe_params(
        self, params: dict[str, Any]
    ) -> tuple[list[str] | None, list[str] | None, int]:
        for name in ("tenants", "kinds"):
            value = params.get(name)
            if value is not None and (
                not isinstance(value, list)
                or not all(isinstance(v, str) for v in value)
            ):
                raise ServeError(
                    E_INVALID_PARAMS,
                    f"param {name!r} must be an array of strings",
                )
        max_queue = self._int_param(
            params, "max_queue", default=DEFAULT_QUEUE_FRAMES, minimum=1
        )
        return params.get("tenants"), params.get("kinds"), max_queue

    def _m_telemetry_subscribe(self, conn, request_id, params, t0):
        tenants, kinds, max_queue = self._subscribe_params(params)
        session_id = params.get("session_id")
        if session_id is not None:
            # Resolve tenant-scoped so another tenant's session id is
            # indistinguishable from a nonexistent one.
            session_id = self._session(conn, params).session_id
        sub = self.telemetry.subscribe(
            conn,
            session_id=session_id,
            tenants=tenants,
            kinds=kinds,
            max_queue=max_queue,
        )
        self._sync_taps()
        return {
            "subscriber": sub.sub_id,
            "protocol": TELEMETRY_SCHEMA_NAME,
            "version": TELEMETRY_SCHEMA_VERSION,
            "max_queue": sub.max_queue,
        }

    def _m_telemetry_unsubscribe(self, conn, request_id, params, t0):
        stats = self.telemetry.unsubscribe(conn)
        if stats is None:
            raise ServeError(
                E_INVALID_PARAMS,
                "this connection has no telemetry subscription",
            )
        self._sync_taps()
        return stats

    def _m_trace_stream(self, conn, request_id, params, t0):
        session = self._session(conn, params)
        _tenants, kinds, max_queue = self._subscribe_params(params)
        sub = self.telemetry.subscribe(
            conn,
            session_id=session.session_id,
            kinds=kinds,
            max_queue=max_queue,
        )
        self._sync_taps()
        return {
            "subscriber": sub.sub_id,
            "session_id": session.session_id,
            "protocol": TELEMETRY_SCHEMA_NAME,
            "version": TELEMETRY_SCHEMA_VERSION,
            "max_queue": sub.max_queue,
        }

    def _m_telemetry_snapshot(self, conn, request_id, params, t0):
        return build_snapshot(self)

    def _m_telemetry_prom(self, conn, request_id, params, t0):
        return {
            "content_type": "text/plain; version=0.0.4",
            "text": render_prom(self),
        }


# -- console entry point ------------------------------------------------


def _parse_tcp(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--tcp wants HOST:PORT, got {spec!r}"
        )
    return host, int(port)


def main(argv: list[str] | None = None) -> int:
    """The ``covirt-serve`` console script."""
    parser = argparse.ArgumentParser(
        prog="covirt-serve",
        description="Serve concurrent simulated Covirt machines over "
        "newline-delimited JSON-RPC (see docs/serving.md).",
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--socket", metavar="PATH", default=None,
        help="listen on a Unix socket at PATH",
    )
    group.add_argument(
        "--tcp", metavar="HOST:PORT", type=_parse_tcp, default=None,
        help="listen on TCP (default: 127.0.0.1:7717)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=DEFAULT_MAX_TOTAL_SESSIONS,
        help="daemon-wide live-session cap",
    )
    parser.add_argument(
        "--tenant-sessions", type=int, default=TenantQuota.max_sessions,
        help="per-tenant live-session quota",
    )
    parser.add_argument(
        "--slice-cycles", type=int, default=TenantQuota.max_cycles_per_slice,
        help="sim-cycles per cooperative scheduler slice",
    )
    parser.add_argument(
        "--backlog", type=int, default=DEFAULT_MAX_BACKLOG,
        help="daemon-wide queued-run cap before shedding",
    )
    args = parser.parse_args(argv)
    tcp = args.tcp
    if args.socket is None and tcp is None:
        tcp = ("127.0.0.1", 7717)
    quota = TenantQuota(
        max_sessions=args.tenant_sessions,
        max_cycles_per_slice=args.slice_cycles,
    )
    daemon = ServeDaemon(
        socket_path=args.socket,
        tcp=tcp,
        quota=quota,
        max_total_sessions=args.max_sessions,
        max_backlog=args.backlog,
    )
    print(f"covirt-serve listening on {daemon.endpoint}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print("covirt-serve: bye")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
