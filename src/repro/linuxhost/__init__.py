"""Simulated general-purpose host OS (Linux in the paper's stack)."""

from repro.linuxhost.host import LinuxHost, HostPanic, LINUX_OWNER, OFFLINE_OWNER

__all__ = ["LinuxHost", "HostPanic", "LINUX_OWNER", "OFFLINE_OWNER"]
