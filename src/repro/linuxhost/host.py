"""The host Linux OS.

Pisces runs as a kernel module on an otherwise-unmodified Linux host.
For the reproduction the host matters in three ways:

* it is the initial owner of every hardware resource, and the entity
  that *offlines* cores and memory so Pisces can hand them to enclaves;
* it hosts the Hobbes master control process and the Covirt controller;
* it is the victim whose survival the paper's fault-isolation story is
  about — so it exposes integrity state that tests can assert on
  (`verify_integrity` walks host-owned memory for corruption planted by
  misbehaving co-kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, OwnershipError, PAGE_SIZE

LINUX_OWNER = "linux"
OFFLINE_OWNER = "offline"


class HostPanic(Exception):
    """The host kernel died — the failure mode Covirt exists to prevent."""


@dataclass
class KernelModule:
    """A loaded kernel module (Pisces, and Covirt's kernel extension)."""

    name: str
    instance: object


class LinuxHost:
    """The general-purpose OS/R instance."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        # Linux boots owning all memory and all cores.
        for zone in machine.topology.zones:
            machine.memory.set_owner(
                MemoryRegion(zone.mem_start, zone.mem_size, zone.zone_id),
                LINUX_OWNER,
            )
        self.online_cores: set[int] = set(machine.topology.all_core_ids)
        self.modules: dict[str, KernelModule] = {}
        self.alive = True
        self._sentinels: dict[int, int] = {}
        self._install_sentinels()
        # Platform devices: the NIC's MMIO window moves out of the
        # general DRAM pool so offlining can never hand it to an enclave.
        from repro.hw.devices import MmioNic

        self.nic = MmioNic(machine)
        machine.memory.transfer(self.nic.window, LINUX_OWNER, self.nic.owner)

    def _install_sentinels(self) -> None:
        """Plant canary values in host-owned pages.

        A co-kernel that scribbles over host memory (the "no Covirt"
        baseline failure) trips these; ``verify_integrity`` is how tests
        and examples demonstrate the blast radius.
        """
        for zone in self.machine.topology.zones:
            addr = zone.mem_start + 16 * PAGE_SIZE
            value = 0xC0FFEE00 + zone.zone_id
            self.machine.memory.write_u64(addr, value)
            self._sentinels[addr] = value

    # -- module management ----------------------------------------------

    def load_module(self, name: str, instance: object) -> None:
        if name in self.modules:
            raise ValueError(f"module {name!r} already loaded")
        self.modules[name] = KernelModule(name, instance)

    def unload_module(self, name: str) -> object:
        return self.modules.pop(name).instance

    # -- resource offlining ---------------------------------------------

    #: The boot CPU can never be hot-removed (as on real Linux); it is
    #: where the MCP, the forwarding proxy, and channel doorbells live.
    BOOT_CPU = 0

    def can_offline(self, core_id: int) -> bool:
        return core_id != self.BOOT_CPU and core_id in self.online_cores

    def offline_cores(self, core_ids: list[int]) -> list[int]:
        """Hot-unplug cores from Linux so Pisces can boot enclaves on them."""
        missing = [c for c in core_ids if c not in self.online_cores]
        if missing:
            raise ValueError(f"cores {missing} are not online under Linux")
        if self.BOOT_CPU in core_ids:
            raise ValueError("the boot CPU cannot be offlined")
        for core_id in core_ids:
            self.online_cores.discard(core_id)
        return list(core_ids)

    def online_cores_return(self, core_ids: list[int]) -> None:
        """Return cores to Linux after enclave teardown."""
        for core_id in core_ids:
            if core_id in self.online_cores:
                raise ValueError(f"core {core_id} already online")
            self.machine.core(core_id).reset()
            self.online_cores.add(core_id)

    def offline_memory(self, size: int, zone_id: int) -> MemoryRegion:
        """Carve ``size`` bytes out of Linux's allocation in ``zone_id``.

        Models Linux memory hot-remove: the region moves from
        ``LINUX_OWNER`` to the offline pool Pisces draws from.
        """
        zone = self.machine.topology.zones[zone_id]
        # Keep the first 64 pages of each zone for the host (sentinels,
        # boot structures) so offlining never hands those out.
        reserved = zone.mem_start + 64 * PAGE_SIZE
        for start, end in self._linux_intervals():
            start = max(start, reserved)
            if end <= start or not zone.contains_addr(start):
                continue
            end = min(end, zone.mem_end)
            if end - start >= size:
                region = MemoryRegion(start, size, zone_id)
                self.machine.memory.transfer(region, LINUX_OWNER, OFFLINE_OWNER)
                return region
        raise OwnershipError(
            f"host cannot offline {size:#x} bytes in zone {zone_id}"
        )

    def online_memory_return(self, region: MemoryRegion) -> None:
        """Memory hot-add back to Linux (after enclave teardown)."""
        self.machine.memory.transfer(region, OFFLINE_OWNER, LINUX_OWNER)

    def _linux_intervals(self) -> list[tuple[int, int]]:
        return [
            (r.start, r.end) for r in self.machine.memory.owned_by(LINUX_OWNER)
        ]

    # -- integrity ---------------------------------------------------------

    def verify_integrity(self) -> bool:
        """True when no host canary has been corrupted."""
        for addr, expected in self._sentinels.items():
            if self.machine.memory.owner_of(addr) != LINUX_OWNER:
                continue  # legitimately reassigned
            if self.machine.memory.read_u64(addr) != expected:
                return False
        return True

    def panic(self, reason: str) -> None:
        """The node goes down.  Raising here is deliberate: nothing in a
        correct Covirt run should ever reach this."""
        self.alive = False
        raise HostPanic(reason)

    def owner_summary(self) -> dict[Hashable, int]:
        """Bytes by owner — used by teardown/reclamation tests."""
        summary: dict[Hashable, int] = {}
        for start, end, owner in self.machine.memory._owners.intervals():
            summary[owner] = summary.get(owner, 0) + (end - start)
        return summary

    def is_pristine(self) -> bool:
        """True when every byte is back where boot left it: Linux owns
        all DRAM except the permanent device MMIO windows."""
        summary = self.owner_summary()
        expected = {
            LINUX_OWNER: self.machine.memory.size - self.nic.window.size,
            self.nic.owner: self.nic.window.size,
        }
        return summary == expected
