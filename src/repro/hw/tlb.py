"""Per-core TLB: functional cache plus analytic miss model.

The TLB matters to Covirt twice over:

* **Functionally** — a translation cached before an EPT unmap keeps
  working until the TLB is flushed.  This is exactly the stale-mapping
  window that forces Covirt's controller to issue a flush command (via
  NMI) on every unmap before memory is reclaimed.  The cache here makes
  that window real and testable.
* **Analytically** — EPT walks multiply the cost of TLB misses, which is
  where RandomAccess's ~2-3% Covirt overhead (Fig. 5b) comes from while
  STREAM sees none (Fig. 5a).  Workload phases are far too large to
  simulate access-by-access, so :func:`estimate_miss_rate` provides a
  closed-form miss rate from footprint, access pattern, and page size.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass

from repro.hw.memory import PAGE_SIZE

#: Default number of TLB entries (Broadwell-class unified L2 TLB).
DEFAULT_TLB_ENTRIES = 1536


class AccessPattern(enum.Enum):
    """Coarse classification of a workload phase's memory behaviour."""

    #: Streaming through memory with unit stride (STREAM, memcpy).
    SEQUENTIAL = "sequential"
    #: Uniform random accesses over the footprint (GUPS/RandomAccess).
    RANDOM = "random"
    #: Regular large strides (matrix columns, halo exchanges).
    STRIDED = "strided"
    #: Irregular gather with some locality (sparse matvec: HPCG, MiniFE).
    SPARSE_GATHER = "sparse_gather"


@dataclass(frozen=True)
class TlbEntry:
    """One cached translation."""

    virt_page: int  # virtual page base address
    phys_page: int  # physical page base address
    page_size: int = PAGE_SIZE
    writable: bool = True

    def covers(self, addr: int) -> bool:
        return self.virt_page <= addr < self.virt_page + self.page_size


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """LRU cache of virtual→physical translations for one core."""

    def __init__(self, capacity: int = DEFAULT_TLB_ENTRIES) -> None:
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, TlbEntry]" = OrderedDict()
        self.stats = TlbStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _base(addr: int, page_size: int) -> int:
        return addr & ~(page_size - 1)

    def lookup(self, addr: int) -> TlbEntry | None:
        """Translate ``addr`` if cached; updates LRU order and stats."""
        # Probe each supported page size; real TLBs probe set-indexed
        # structures per size, which collapses to the same observable.
        for size_shift in (12, 21, 30):
            base = self._base(addr, 1 << size_shift)
            entry = self._entries.get(base)
            if entry is not None and entry.page_size == (1 << size_shift):
                self._entries.move_to_end(base)
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    def insert(self, entry: TlbEntry) -> None:
        """Cache a translation, evicting LRU on overflow."""
        self._entries[entry.virt_page] = entry
        self._entries.move_to_end(entry.virt_page)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def flush_all(self) -> None:
        """Full flush — what Covirt's memory-update command triggers."""
        self._entries.clear()
        self.stats.flushes += 1

    def invalidate_range(self, start: int, end: int) -> int:
        """INVLPG over a range; returns number of entries dropped."""
        doomed = [
            base
            for base, entry in self._entries.items()
            if base < end and base + entry.page_size > start
        ]
        for base in doomed:
            del self._entries[base]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def entries(self) -> list[TlbEntry]:
        """Snapshot of every cached translation, LRU-oldest first.

        Read-only introspection for coherence checking: an auditor can
        verify each cached translation against the current EPT without
        perturbing LRU order or statistics.
        """
        return list(self._entries.values())

    def contains_translation_for(self, addr: int) -> bool:
        """Non-mutating probe (no LRU/stat side effects)."""
        for size_shift in (12, 21, 30):
            base = self._base(addr, 1 << size_shift)
            entry = self._entries.get(base)
            if entry is not None and entry.page_size == (1 << size_shift):
                return True
        return False


def estimate_miss_rate(
    footprint_bytes: int,
    pattern: AccessPattern,
    page_size: int = PAGE_SIZE,
    capacity_entries: int = DEFAULT_TLB_ENTRIES,
    stride_bytes: int = 8,
) -> float:
    """Closed-form TLB miss rate for a workload phase.

    The model captures the two regimes that matter for the paper's
    evaluation: streaming workloads touch each page ``page_size/stride``
    times so their miss rate collapses toward zero, while random-access
    workloads whose footprint exceeds TLB reach miss on nearly every
    access.  Sparse gathers sit in between via an empirical locality
    factor.
    """
    if footprint_bytes <= 0:
        return 0.0
    reach = capacity_entries * page_size
    if pattern is AccessPattern.SEQUENTIAL:
        # One compulsory miss per page, amortised over all touches.
        return min(1.0, stride_bytes / page_size)
    if pattern is AccessPattern.STRIDED:
        touches_per_page = max(1.0, page_size / max(stride_bytes, 1))
        return min(1.0, 1.0 / touches_per_page)
    if pattern is AccessPattern.RANDOM:
        if footprint_bytes <= reach:
            # Warm TLB covers the table; only cold misses remain.
            return 0.001
        return 1.0 - reach / footprint_bytes
    if pattern is AccessPattern.SPARSE_GATHER:
        # Sparse solvers have strong row locality; empirically an order
        # of magnitude fewer misses than pure random.
        if footprint_bytes <= reach:
            return 0.0005
        return 0.1 * (1.0 - reach / footprint_bytes)
    raise ValueError(f"unknown access pattern {pattern!r}")
