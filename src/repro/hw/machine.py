"""The simulated machine: cores, memory, NUMA, APIC fabric, devices.

Defaults mirror the paper's testbed: two Xeon E5-2603 v4 sockets (six
cores each) in two NUMA zones with 64 GiB of DDR4 split evenly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.apic import IpiMessage, LocalApic
from repro.hw.clock import Clock, EventQueue
from repro.hw.cpu import Core
from repro.hw.ioports import IoPortSpace
from repro.hw.memory import PhysicalMemory
from repro.hw.msr import MsrFile
from repro.hw.numa import NumaTopology
from repro.hw.tlb import DEFAULT_TLB_ENTRIES, Tlb

GiB = 1 << 30


@dataclass(frozen=True)
class MachineConfig:
    """Shape of the machine to build."""

    num_zones: int = 2
    cores_per_zone: int = 6
    mem_per_zone: int = 32 * GiB
    tlb_entries: int = DEFAULT_TLB_ENTRIES

    @property
    def num_cores(self) -> int:
        return self.num_zones * self.cores_per_zone

    @property
    def total_memory(self) -> int:
        return self.num_zones * self.mem_per_zone

    @classmethod
    def paper_testbed(cls) -> "MachineConfig":
        """The dual-socket E5-2603 v4 node from the evaluation."""
        return cls(num_zones=2, cores_per_zone=6, mem_per_zone=32 * GiB)

    @classmethod
    def small(cls) -> "MachineConfig":
        """A small machine for fast unit tests."""
        return cls(num_zones=2, cores_per_zone=2, mem_per_zone=GiB // 4)


class Machine:
    """A booted machine with all devices wired together."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        self.topology = NumaTopology.symmetric(
            self.config.num_zones,
            self.config.cores_per_zone,
            self.config.mem_per_zone,
        )
        self.memory = PhysicalMemory(self.config.total_memory)
        self.clock = Clock()
        self.events = EventQueue(self.clock)
        # Imported here to keep hw/ free of package-level cycles
        # (repro.obs imports hw.clock for the cycle/µs conversion).
        from repro.obs import Observability

        #: Machine-wide observability: span tracer + metrics registry.
        #: Instance-scoped by construction — two machines never share
        #: a counter.  Strictly passive: recording never advances time.
        self.obs = Observability(self.clock)
        self.ioports = IoPortSpace()
        self.cores: list[Core] = []
        for zone in self.topology.zones:
            for core_id in zone.core_ids:
                core = Core(core_id, zone.zone_id)
                core.apic = LocalApic(core_id)
                core.apic.attach(self)
                core.msrs = MsrFile(core_id)
                core.tlb = Tlb(self.config.tlb_entries)
                self.cores.append(core)
        self.cores.sort(key=lambda c: c.core_id)
        #: IPIs dropped because the destination core does not exist.
        self.misrouted_ipis: list[IpiMessage] = []

    # -- lookup helpers ------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise KeyError(f"no core {core_id}")
        return self.cores[core_id]

    def cores_in_zone(self, zone_id: int) -> list[Core]:
        return [c for c in self.cores if c.zone == zone_id]

    # -- interconnect ------------------------------------------------------

    def route_ipi(self, msg: IpiMessage) -> bool:
        """Deliver an IPI through the interconnect.

        Returns False (and records the message) when the destination is
        not a valid core — the hardware analogue of an IPI disappearing
        into the void.
        """
        if not 0 <= msg.dest_core < len(self.cores):
            self.misrouted_ipis.append(msg)
            return False
        target = self.cores[msg.dest_core]
        assert target.apic is not None
        target.apic.deliver(msg.as_interrupt())
        return True

    def broadcast_ipi(self, msg_template: IpiMessage) -> int:
        """Send the IPI to every core except the source; returns count."""
        sent = 0
        for core in self.cores:
            if core.core_id == msg_template.source_core:
                continue
            self.route_ipi(
                IpiMessage(
                    msg_template.source_core,
                    core.core_id,
                    msg_template.vector,
                    msg_template.mode,
                )
            )
            sent += 1
        return sent

    # -- time ----------------------------------------------------------

    def elapse(self, cycles: int) -> None:
        """Advance global time, firing any due events, and drag every
        core's TSC forward (idle cores still observe time passing)."""
        deadline = self.clock.now + cycles
        self.events.run_until(deadline)
        for core in self.cores:
            core.sync_tsc(self.clock.now)

    def reset(self) -> None:
        """Warm-reset every core and device; memory ownership survives."""
        for core in self.cores:
            core.reset()
            assert core.apic is not None and core.msrs is not None
            core.apic.reset()
            core.msrs.reset()
        self.ioports.reset()
        self.misrouted_ipis.clear()

    def __repr__(self) -> str:
        return (
            f"Machine({self.num_cores} cores / {self.topology.num_zones} zones,"
            f" {self.memory.size >> 30} GiB)"
        )
