"""Host-owned MMIO devices.

Section IV names device memory-mapped I/O regions as one of the things
nothing stops a misbehaving co-kernel from scribbling on.  This module
provides a concrete victim: a NIC whose descriptor rings live in a
host-owned MMIO window.  A stray write corrupts the rings and the
device stops working for the *host* — the cross-OS/R blast radius in
its most tangible form.  Under Covirt the window is simply absent from
every enclave's EPT.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion, PAGE_SIZE

#: Owner label for device MMIO windows.
def device_owner(name: str) -> str:
    return f"device:{name}"


_DESC = struct.Struct("<IIQ")  # magic, length, buffer address
DESC_MAGIC = 0x4E494331  # 'NIC1'
RING_ENTRIES = 16


@dataclass
class NicStats:
    tx_packets: int = 0
    rx_packets: int = 0
    ring_errors: int = 0


class MmioNic:
    """A NIC with descriptor rings in an MMIO window.

    The window is carved from physical address space and owned by
    ``device:<name>``; the host driver (methods here) reads and writes
    descriptors through ordinary memory accesses, exactly like real
    hardware DMA rings.
    """

    def __init__(self, machine: Machine, name: str = "nic0") -> None:
        self.machine = machine
        self.name = name
        # One page of MMIO at the top of zone 0 (the host keeps it).
        zone0 = machine.topology.zones[0]
        self.window = MemoryRegion(
            zone0.mem_end - 16 * PAGE_SIZE, PAGE_SIZE, zone0.zone_id
        )
        self.stats = NicStats()
        self._initialise_rings()

    @property
    def owner(self) -> str:
        return device_owner(self.name)

    def _desc_addr(self, ring: str, index: int) -> int:
        base = self.window.start + (0 if ring == "tx" else PAGE_SIZE // 2)
        return base + index * _DESC.size

    def _initialise_rings(self) -> None:
        for ring in ("tx", "rx"):
            for index in range(RING_ENTRIES):
                self.machine.memory.write(
                    self._desc_addr(ring, index),
                    _DESC.pack(DESC_MAGIC, 0, 0),
                )

    # -- host driver -----------------------------------------------------

    def check_ring_integrity(self) -> bool:
        """The driver's sanity pass: every descriptor must carry the
        device magic.  A co-kernel scribble trips this."""
        for ring in ("tx", "rx"):
            for index in range(RING_ENTRIES):
                data = self.machine.memory.read(
                    self._desc_addr(ring, index), _DESC.size
                )
                magic, _length, _addr = _DESC.unpack(data)
                if magic != DESC_MAGIC:
                    self.stats.ring_errors += 1
                    return False
        return True

    def transmit(self, payload_len: int) -> bool:
        """Queue one TX descriptor; fails if the rings are corrupt."""
        if not self.check_ring_integrity():
            return False
        index = self.stats.tx_packets % RING_ENTRIES
        self.machine.memory.write(
            self._desc_addr("tx", index),
            _DESC.pack(DESC_MAGIC, payload_len, 0x1000),
        )
        self.stats.tx_packets += 1
        return True

    def receive(self) -> bool:
        if not self.check_ring_integrity():
            return False
        self.stats.rx_packets += 1
        return True
