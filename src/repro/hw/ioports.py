"""Legacy I/O port space.

The co-kernel stack barely touches I/O ports (modern HPC devices are
MMIO), but errant ``out`` instructions to ports owned by host-managed
devices are one of the corruption channels Covirt closes with the VMX
I/O bitmap.  Ports may be backed by simple latched values or by device
handlers registered by the host OS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

PORT_SPACE_SIZE = 0x10000

#: Ports conventionally owned by the platform / host OS in our machine.
SERIAL_COM1 = 0x3F8
PIT_CHANNEL0 = 0x40
KBD_CONTROLLER = 0x64
RTC_INDEX = 0x70
RTC_DATA = 0x71
PCI_CONFIG_ADDR = 0xCF8
PCI_CONFIG_DATA = 0xCFC

HOST_OWNED_PORTS: frozenset[int] = frozenset(
    {SERIAL_COM1, PIT_CHANNEL0, KBD_CONTROLLER, RTC_INDEX, RTC_DATA,
     PCI_CONFIG_ADDR, PCI_CONFIG_DATA}
)


class IoPortError(Exception):
    """Raised on architecturally invalid port accesses."""


@dataclass
class PortAccess:
    port: int
    value: int
    is_write: bool
    core_id: int


class IoPortSpace:
    """The machine-wide 64 KiB port space."""

    def __init__(self) -> None:
        self._latched: dict[int, int] = {}
        self._handlers: dict[int, Callable[[int, bool, int], int]] = {}
        self.access_log: list[PortAccess] = []

    def register_device(
        self, port: int, handler: Callable[[int, bool, int], int]
    ) -> None:
        """Attach a device handler: ``handler(value, is_write, core) -> value``."""
        self._check_port(port)
        self._handlers[port] = handler

    @staticmethod
    def _check_port(port: int) -> None:
        if not 0 <= port < PORT_SPACE_SIZE:
            raise IoPortError(f"port {port:#x} outside port space")

    def read(self, port: int, core_id: int = 0) -> int:
        """IN instruction."""
        self._check_port(port)
        handler = self._handlers.get(port)
        if handler is not None:
            value = handler(0, False, core_id)
        else:
            value = self._latched.get(port, 0xFF)  # floating bus reads high
        self.access_log.append(PortAccess(port, value, False, core_id))
        return value

    def write(self, port: int, value: int, core_id: int = 0) -> None:
        """OUT instruction."""
        self._check_port(port)
        if not 0 <= value <= 0xFFFF_FFFF:
            raise IoPortError(f"port value {value:#x} too wide")
        handler = self._handlers.get(port)
        if handler is not None:
            handler(value, True, core_id)
        else:
            self._latched[port] = value
        self.access_log.append(PortAccess(port, value, True, core_id))

    def peek(self, port: int) -> int:
        return self._latched.get(port, 0xFF)

    def reset(self) -> None:
        self._latched.clear()
        self.access_log.clear()
