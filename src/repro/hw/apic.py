"""Local APIC model: IPI transmission, pending vectors, NMI, timer.

Each core owns a local APIC.  Writing the Interrupt Command Register
(ICR) transmits an IPI through the machine's routing fabric to the
destination core's APIC, which latches the vector as pending and invokes
whatever delivery hook the currently running software layer installed
(the Kitten IRQ dispatcher, or — when Covirt traps external interrupts —
the hypervisor).

This is the *physical* APIC.  Covirt's trap-mode IPI protection never
lets a guest ICR write reach this object directly; the virtual-APIC page
lives in ``repro.vmx.vapic``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.hw.interrupts import (
    FIRST_ALLOCATABLE_VECTOR,
    NMI_VECTOR,
    VECTOR_SPACE_SIZE,
    Interrupt,
    InterruptKind,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.machine import Machine


class DeliveryMode(enum.Enum):
    """ICR delivery modes the stack uses."""

    FIXED = "fixed"
    NMI = "nmi"


@dataclass(frozen=True)
class IpiMessage:
    """An IPI in flight between two APICs."""

    source_core: int
    dest_core: int
    vector: int
    mode: DeliveryMode = DeliveryMode.FIXED

    def __post_init__(self) -> None:
        if self.mode is DeliveryMode.FIXED:
            if not FIRST_ALLOCATABLE_VECTOR <= self.vector < VECTOR_SPACE_SIZE:
                raise ValueError(
                    f"fixed-mode IPI vector {self.vector} outside 32..255"
                )

    def as_interrupt(self) -> Interrupt:
        kind = InterruptKind.NMI if self.mode is DeliveryMode.NMI else InterruptKind.IPI
        vector = NMI_VECTOR if self.mode is DeliveryMode.NMI else self.vector
        return Interrupt(vector=vector, kind=kind, source_core=self.source_core)


@dataclass
class ApicStats:
    """Counters the evaluation harness reads."""

    ipis_sent: int = 0
    ipis_received: int = 0
    nmis_received: int = 0
    timer_ticks: int = 0
    spurious: int = 0


class LocalApic:
    """Per-core local APIC."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._machine: "Machine | None" = None
        #: Vectors latched pending delivery (IRR analogue).
        self.pending: set[int] = set()
        self.nmi_pending: bool = False
        #: Software hook invoked on delivery; installed by the OS layer
        #: or the hypervisor that currently owns the core.
        self.delivery_hook: Callable[[Interrupt], None] | None = None
        #: Periodic timer period in cycles (None = timer masked).  Kitten
        #: keeps this large or masked — LWKs minimise timer noise.
        self.timer_period: int | None = None
        self.stats = ApicStats()
        self._delivered_log: list[Interrupt] = []

    def attach(self, machine: "Machine") -> None:
        self._machine = machine

    # -- transmit side -------------------------------------------------

    def write_icr(
        self, dest_core: int, vector: int, mode: DeliveryMode = DeliveryMode.FIXED
    ) -> IpiMessage:
        """Transmit an IPI.  This is the raw hardware path.

        Software that is subject to Covirt's IPI protection never reaches
        this method with an unchecked message; the VMX layer traps the
        write first.
        """
        if self._machine is None:
            raise RuntimeError("APIC not attached to a machine")
        msg = IpiMessage(self.core_id, dest_core, vector, mode)
        self.stats.ipis_sent += 1
        self._machine.route_ipi(msg)
        return msg

    # -- receive side ----------------------------------------------------

    def deliver(self, interrupt: Interrupt) -> None:
        """Latch an interrupt and hand it to the installed software hook."""
        if interrupt.kind is InterruptKind.NMI:
            self.nmi_pending = True
            self.stats.nmis_received += 1
        else:
            self.pending.add(interrupt.vector)
            if interrupt.kind is InterruptKind.TIMER:
                self.stats.timer_ticks += 1
            else:
                self.stats.ipis_received += 1
        self._delivered_log.append(interrupt)
        if self.delivery_hook is not None:
            self.delivery_hook(interrupt)

    def ack(self, vector: int) -> None:
        """EOI for a fixed vector."""
        self.pending.discard(vector)

    def ack_nmi(self) -> None:
        self.nmi_pending = False

    def delivered(self) -> list[Interrupt]:
        """Everything this APIC has ever delivered (test introspection)."""
        return list(self._delivered_log)

    # -- timer -------------------------------------------------------------

    def configure_timer(self, period_cycles: int | None) -> None:
        """Set the periodic timer (None masks it)."""
        if period_cycles is not None and period_cycles <= 0:
            raise ValueError("timer period must be positive")
        self.timer_period = period_cycles

    def timer_ticks_during(self, cycles: int) -> int:
        """How many timer interrupts fire over an execution of ``cycles``.

        Used analytically by the performance model rather than firing
        one event per tick.
        """
        if self.timer_period is None or cycles <= 0:
            return 0
        return int(cycles // self.timer_period)

    def reset(self) -> None:
        self.pending.clear()
        self.nmi_pending = False
        self.delivery_hook = None
        self.timer_period = None
        self._delivered_log.clear()
        self.stats = ApicStats()
