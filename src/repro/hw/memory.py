"""Physical memory with page-granular ownership.

The machine's DRAM is modelled two ways at once:

* **Ownership** is tracked exactly, via an interval map from physical
  address ranges to an owner label (the host OS, an enclave id, or the
  free pool).  Every protection decision Covirt makes about memory reduces
  to a question against this map, so it is fully functional.
* **Contents** are backed lazily: a 4 KiB numpy page is materialised only
  when something actually reads or writes it.  A 64 GiB machine therefore
  costs nothing until touched.

Addresses and sizes are plain integers in bytes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Hashable, Iterator

import numpy as np

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB
PAGE_SIZE_2M = 1 << 21
PAGE_SIZE_1G = 1 << 30

#: Owner label for unassigned memory.
FREE = "free"


def page_align_down(addr: int) -> int:
    """Round ``addr`` down to a 4 KiB boundary."""
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    """Round ``addr`` up to a 4 KiB boundary."""
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def is_page_aligned(addr: int) -> bool:
    return addr & (PAGE_SIZE - 1) == 0


class OwnershipError(Exception):
    """An operation violated the physical-memory ownership discipline."""


@dataclass(frozen=True)
class MemoryRegion:
    """A page-aligned, contiguous range of physical memory.

    Regions are the unit of resource assignment in the co-kernel stack:
    Pisces hands whole regions to enclaves, XEMEM shares sub-ranges of
    them, and Covirt maps them into EPTs.
    """

    start: int
    size: int
    zone: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")
        if not is_page_aligned(self.start) or not is_page_aligned(self.size):
            raise ValueError(
                f"region [{self.start:#x}, +{self.size:#x}) is not page aligned"
            )

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.start + self.size

    @property
    def num_pages(self) -> int:
        return self.size >> PAGE_SHIFT

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_range(self, start: int, size: int) -> bool:
        return self.start <= start and start + size <= self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.start < other.end and other.start < self.end

    def page_numbers(self) -> range:
        """Physical frame numbers covered by the region."""
        return range(self.start >> PAGE_SHIFT, self.end >> PAGE_SHIFT)

    def split(self, offset: int) -> tuple["MemoryRegion", "MemoryRegion"]:
        """Split into two regions at ``offset`` bytes from the start."""
        if not 0 < offset < self.size or not is_page_aligned(offset):
            raise ValueError(f"bad split offset {offset:#x}")
        return (
            MemoryRegion(self.start, offset, self.zone),
            MemoryRegion(self.start + offset, self.size - offset, self.zone),
        )

    def __repr__(self) -> str:
        return f"MemoryRegion({self.start:#x}..{self.end:#x}, zone={self.zone})"


class IntervalMap:
    """Sorted map from half-open integer intervals to values.

    Maintains the invariants that intervals never overlap, are sorted,
    and adjacent intervals with equal values are coalesced.  This is the
    data structure behind both physical-memory ownership and (via the
    EPT) Covirt's view of an enclave's mappable address space.
    """

    def __init__(self, start: int, end: int, initial: Hashable) -> None:
        if end <= start:
            raise ValueError("empty interval map")
        self._starts: list[int] = [start]
        self._ends: list[int] = [end]
        self._values: list[Hashable] = [initial]
        self.start = start
        self.end = end

    def __len__(self) -> int:
        return len(self._starts)

    def get(self, point: int) -> Hashable:
        """Value at ``point``."""
        if not self.start <= point < self.end:
            raise KeyError(f"point {point:#x} outside map range")
        idx = bisect.bisect_right(self._starts, point) - 1
        return self._values[idx]

    def set(self, start: int, end: int, value: Hashable) -> None:
        """Assign ``value`` over [start, end), splitting as needed."""
        if end <= start:
            raise ValueError("empty assignment")
        if start < self.start or end > self.end:
            raise KeyError(
                f"assignment [{start:#x},{end:#x}) outside map "
                f"[{self.start:#x},{self.end:#x})"
            )
        # Clip surviving fragments of existing intervals, insert the new
        # span, then coalesce equal-valued neighbours.
        pieces: list[tuple[int, int, Hashable]] = []
        for s, e, v in zip(self._starts, self._ends, self._values):
            if e <= start or s >= end:
                pieces.append((s, e, v))
                continue
            if s < start:
                pieces.append((s, start, v))
            if e > end:
                pieces.append((end, e, v))
        pieces.append((start, end, value))
        pieces.sort(key=lambda p: p[0])
        out_s: list[int] = []
        out_e: list[int] = []
        out_v: list[Hashable] = []
        for s, e, v in pieces:
            if out_v and out_v[-1] == v and out_e[-1] == s:
                out_e[-1] = e
            else:
                out_s.append(s)
                out_e.append(e)
                out_v.append(v)
        self._starts, self._ends, self._values = out_s, out_e, out_v

    def intervals(self) -> Iterator[tuple[int, int, Hashable]]:
        """Yield (start, end, value) for every interval, in order."""
        yield from zip(self._starts, self._ends, self._values)

    def intervals_in(self, start: int, end: int) -> Iterator[tuple[int, int, Hashable]]:
        """Yield intervals clipped to [start, end)."""
        for s, e, v in self.intervals():
            if e <= start or s >= end:
                continue
            yield max(s, start), min(e, end), v

    def uniform_value(self, start: int, end: int) -> Hashable | None:
        """If [start, end) maps to a single value, return it, else None."""
        pieces = list(self.intervals_in(start, end))
        if len(pieces) == 1:
            return pieces[0][2]
        first = pieces[0][2]
        return first if all(v == first for _, _, v in pieces) else None

    def find(self, value: Hashable) -> list[tuple[int, int]]:
        """All intervals currently holding ``value``."""
        return [(s, e) for s, e, v in self.intervals() if v == value]

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are broken."""
        assert self._starts[0] == self.start
        assert self._ends[-1] == self.end
        for i in range(len(self._starts)):
            assert self._starts[i] < self._ends[i], "empty interval"
            if i:
                assert self._ends[i - 1] == self._starts[i], "gap/overlap"
                assert self._values[i - 1] != self._values[i], "uncoalesced"


class PhysicalMemory:
    """The machine's DRAM: exact ownership plus lazily backed contents."""

    def __init__(self, size: int) -> None:
        if size <= 0 or not is_page_aligned(size):
            raise ValueError("memory size must be a positive page multiple")
        self.size = size
        self._owners = IntervalMap(0, size, FREE)
        self._pages: dict[int, np.ndarray] = {}
        #: Bytes currently materialised (for tests / introspection).
        self.resident_pages = 0

    # -- ownership ---------------------------------------------------------

    def owner_of(self, addr: int) -> Hashable:
        """Owner label of the page containing ``addr``."""
        return self._owners.get(addr)

    def region_owner(self, region: MemoryRegion) -> Hashable | None:
        """Single owner of the whole region, or None if mixed."""
        return self._owners.uniform_value(region.start, region.end)

    def set_owner(self, region: MemoryRegion, owner: Hashable) -> None:
        """Assign every page of ``region`` to ``owner`` unconditionally."""
        self._owners.set(region.start, region.end, owner)

    def transfer(
        self, region: MemoryRegion, expected: Hashable, new_owner: Hashable
    ) -> None:
        """Move ``region`` from ``expected`` to ``new_owner``.

        Raises :class:`OwnershipError` if any page of the region is not
        currently owned by ``expected`` — this is the check that makes
        double-grants and double-frees structurally impossible.
        """
        current = self._owners.uniform_value(region.start, region.end)
        if current != expected:
            raise OwnershipError(
                f"region {region} owned by {current!r}, expected {expected!r}"
            )
        self._owners.set(region.start, region.end, new_owner)

    def owned_by(self, owner: Hashable) -> list[MemoryRegion]:
        """All regions currently owned by ``owner``."""
        return [
            MemoryRegion(s, e - s) for s, e in self._owners.find(owner)
        ]

    def total_owned(self, owner: Hashable) -> int:
        """Bytes owned by ``owner``."""
        return sum(e - s for s, e in self._owners.find(owner))

    def allocate(
        self,
        size: int,
        owner: Hashable,
        *,
        within: tuple[int, int] | None = None,
        alignment: int = PAGE_SIZE,
    ) -> MemoryRegion:
        """Carve a free region of ``size`` bytes and assign it to ``owner``.

        ``within`` restricts the search to an address window (used for
        NUMA-zone-local allocation); ``alignment`` must be a power of two
        page multiple.
        """
        size = page_align_up(size)
        if alignment < PAGE_SIZE or alignment & (alignment - 1):
            raise ValueError("alignment must be a power-of-two page multiple")
        lo, hi = within if within is not None else (0, self.size)
        for s, e in self._owners.find(FREE):
            s = max(s, lo)
            e = min(e, hi)
            aligned = (s + alignment - 1) & ~(alignment - 1)
            if aligned + size <= e:
                region = MemoryRegion(aligned, size)
                self._owners.set(aligned, aligned + size, owner)
                return region
        raise OwnershipError(
            f"no free region of {size:#x} bytes in window [{lo:#x},{hi:#x})"
        )

    def release(self, region: MemoryRegion, expected: Hashable) -> None:
        """Return a region to the free pool, verifying current ownership."""
        self.transfer(region, expected, FREE)
        self._drop_backing(region)

    # -- contents ----------------------------------------------------------

    def _page(self, frame: int, create: bool) -> np.ndarray | None:
        page = self._pages.get(frame)
        if page is None and create:
            page = np.zeros(PAGE_SIZE, dtype=np.uint8)
            self._pages[frame] = page
            self.resident_pages += 1
        return page

    def _drop_backing(self, region: MemoryRegion) -> None:
        for frame in region.page_numbers():
            if self._pages.pop(frame, None) is not None:
                self.resident_pages -= 1

    def read(self, addr: int, length: int) -> bytes:
        """Read raw bytes; unbacked pages read as zero."""
        if addr < 0 or addr + length > self.size:
            raise ValueError(f"read [{addr:#x},+{length}) out of range")
        out = bytearray(length)
        pos = 0
        while pos < length:
            frame = (addr + pos) >> PAGE_SHIFT
            off = (addr + pos) & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - off)
            page = self._page(frame, create=False)
            if page is not None:
                out[pos : pos + chunk] = page[off : off + chunk].tobytes()
            pos += chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write raw bytes, materialising pages as needed."""
        if addr < 0 or addr + len(data) > self.size:
            raise ValueError(f"write [{addr:#x},+{len(data)}) out of range")
        pos = 0
        while pos < len(data):
            frame = (addr + pos) >> PAGE_SHIFT
            off = (addr + pos) & (PAGE_SIZE - 1)
            chunk = min(len(data) - pos, PAGE_SIZE - off)
            page = self._page(frame, create=True)
            assert page is not None
            page[off : off + chunk] = np.frombuffer(
                data[pos : pos + chunk], dtype=np.uint8
            )
            pos += chunk

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, int(value).to_bytes(8, "little"))

    def check_invariants(self) -> None:
        self._owners.check_invariants()
