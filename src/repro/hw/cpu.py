"""Per-core CPU state.

A :class:`Core` carries the minimum architectural state the co-kernel
stack needs: a TSC (each core advances its own, as on an
invariant-TSC machine), an execution mode (host kernel, hypervisor root
mode, or guest non-root mode), a halt flag, and slots for the devices
the machine attaches (local APIC, MSR file, TLB).

Cores do not fetch/decode instructions; workloads present the simulator
with *phases* (see ``repro.workloads.base``) whose cost the performance
model converts into TSC advancement.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.apic import LocalApic
    from repro.hw.msr import MsrFile
    from repro.hw.tlb import Tlb


def host_cpuid(leaf: int, core_id: int) -> tuple[int, int, int, int]:
    """The simulated part's CPUID surface.

    Shared by the native execution path and Covirt's CPUID emulation so
    tests can assert the guest sees the *identical* processor — the
    zero-abstraction property.
    """
    if leaf == 0x0:
        return (0x16, 0x756E_6547, 0x6C65_746E, 0x4965_6E69)  # GenuineIntel
    if leaf == 0x1:
        # family 6, model 0x4F (Broadwell-EP), stepping 1
        return (0x000406F1, core_id << 24, 0x7FFE_FBFF, 0xBFEB_FBFF)
    if leaf == 0xB:
        return (0, 1, 0x100, core_id)  # topology: one thread per core
    return (0, 0, 0, 0)


class CpuMode(enum.Enum):
    """Which software layer the core is currently executing."""

    #: Running the host Linux OS (or offlined, pre-enclave-boot).
    HOST = "host"
    #: Running VMX root mode — the Covirt hypervisor.
    HYPERVISOR = "hypervisor"
    #: Running VMX non-root mode — the co-kernel guest.
    GUEST = "guest"
    #: Running a co-kernel natively, with no hypervisor interposed.
    NATIVE_GUEST = "native_guest"


class Core:
    """One hardware thread of the simulated machine."""

    def __init__(self, core_id: int, zone: int) -> None:
        self.core_id = core_id
        self.zone = zone
        self.tsc: int = 0
        self.mode: CpuMode = CpuMode.HOST
        self.halted: bool = False
        #: Set once the machine wires up the per-core devices.
        self.apic: "LocalApic | None" = None
        self.msrs: "MsrFile | None" = None
        self.tlb: "Tlb | None" = None
        #: Opaque slot for whichever software context owns the core
        #: (host scheduler, hypervisor instance, kitten kernel, ...).
        self.context: Any = None
        #: Monotonic count of VM entries performed on this core.
        self.vm_entries: int = 0

    def advance(self, cycles: int | float) -> int:
        """Consume ``cycles`` of execution time on this core."""
        if cycles < 0:
            raise ValueError("cannot run a negative number of cycles")
        self.tsc += int(cycles)
        return self.tsc

    def read_tsc(self) -> int:
        """RDTSC — the instruction the paper's latency probes use."""
        return self.tsc

    def sync_tsc(self, value: int) -> None:
        """Bring the TSC up to ``value`` (never backwards)."""
        if value > self.tsc:
            self.tsc = int(value)

    def halt(self) -> None:
        """HLT — parks the core until an interrupt (or teardown) revives it."""
        self.halted = True

    def resume(self) -> None:
        self.halted = False

    def reset(self) -> None:
        """Warm reset: clear execution state, keep device wiring."""
        self.mode = CpuMode.HOST
        self.halted = False
        self.context = None
        self.vm_entries = 0
        if self.tlb is not None:
            self.tlb.flush_all()

    def __repr__(self) -> str:
        return (
            f"Core(id={self.core_id}, zone={self.zone}, mode={self.mode.value},"
            f" tsc={self.tsc}{', halted' if self.halted else ''})"
        )
