"""Model-specific registers.

Covirt's MSR protection interposes on guest RDMSR/WRMSR via the VMX MSR
bitmaps; the physical MSR file modelled here is what those operations
ultimately read and write when permitted.  Only the handful of MSRs the
co-kernel stack actually touches are given architectural defaults, but
the file accepts any index so tests can exercise the "guest pokes a
sensitive MSR it has no business with" failure mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MSR(enum.IntEnum):
    """MSR indices used by the stack (values follow the SDM)."""

    IA32_APIC_BASE = 0x1B
    IA32_FEATURE_CONTROL = 0x3A
    IA32_MISC_ENABLE = 0x1A0
    IA32_PAT = 0x277
    IA32_EFER = 0xC0000080
    IA32_STAR = 0xC0000081
    IA32_LSTAR = 0xC0000082
    IA32_FMASK = 0xC0000084
    IA32_FS_BASE = 0xC0000100
    IA32_GS_BASE = 0xC0000101
    IA32_KERNEL_GS_BASE = 0xC0000102
    IA32_TSC_AUX = 0xC0000103
    # Machine-check bank 0 control: the canonical "you should not be
    # writing this from a co-kernel" register in our fault scenarios.
    IA32_MC0_CTL = 0x400


#: MSRs whose corruption can take down software outside the writer's
#: enclave.  Covirt's MSR protection denies guest writes to these.
SENSITIVE_MSRS: frozenset[int] = frozenset(
    {
        MSR.IA32_APIC_BASE,
        MSR.IA32_FEATURE_CONTROL,
        MSR.IA32_MISC_ENABLE,
        MSR.IA32_MC0_CTL,
    }
)

_DEFAULTS: dict[int, int] = {
    MSR.IA32_APIC_BASE: 0xFEE0_0900,  # enabled, BSP
    MSR.IA32_FEATURE_CONTROL: 0x5,  # locked, VMX enabled
    MSR.IA32_EFER: 0xD01,  # LME|LMA|SCE|NXE
    MSR.IA32_PAT: 0x0007_0406_0007_0406,
    MSR.IA32_MISC_ENABLE: 0x1,
}


class MsrAccessError(Exception):
    """Raised for architecturally invalid MSR accesses (#GP analogue)."""


@dataclass
class MsrAccess:
    """One logged MSR access, for test assertions."""

    index: int
    value: int
    is_write: bool


class MsrFile:
    """The MSR state of one core."""

    def __init__(self, core_id: int) -> None:
        self.core_id = core_id
        self._values: dict[int, int] = dict(_DEFAULTS)
        self.access_log: list[MsrAccess] = []

    def read(self, index: int) -> int:
        """RDMSR."""
        if index < 0 or index > 0xFFFF_FFFF:
            raise MsrAccessError(f"MSR index {index:#x} out of range")
        value = self._values.get(index, 0)
        self.access_log.append(MsrAccess(index, value, is_write=False))
        return value

    def write(self, index: int, value: int) -> None:
        """WRMSR."""
        if index < 0 or index > 0xFFFF_FFFF:
            raise MsrAccessError(f"MSR index {index:#x} out of range")
        if value < 0 or value >= 1 << 64:
            raise MsrAccessError(f"MSR value {value:#x} not a u64")
        self._values[index] = value
        self.access_log.append(MsrAccess(index, value, is_write=True))

    def peek(self, index: int) -> int:
        """Read without logging (for assertions)."""
        return self._values.get(index, 0)

    def reset(self) -> None:
        self._values = dict(_DEFAULTS)
        self.access_log.clear()
