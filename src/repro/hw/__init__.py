"""Simulated hardware substrate.

This package models the physical machine that the paper's testbed provided:
cores with per-core TSCs and local APICs, NUMA-partitioned physical memory
with page-granular ownership, MSR files, I/O port space, per-core TLBs, and
a global cycle clock with a discrete event queue.

The simulation is *functional* where Covirt's protection semantics need it
(who owns which page / vector / MSR / port, what is cached in a TLB) and
*analytic* where only timing matters (TLB miss rates of large workload
phases).  See ``repro.perf.costs`` for the cycle cost model layered on top.
"""

from repro.hw.clock import Clock, EventQueue, CYCLES_PER_SECOND, CYCLES_PER_US
from repro.hw.memory import (
    PAGE_SIZE,
    PAGE_SIZE_2M,
    PAGE_SIZE_1G,
    MemoryRegion,
    PhysicalMemory,
    OwnershipError,
    page_align_down,
    page_align_up,
)
from repro.hw.numa import NumaTopology, NumaZone
from repro.hw.cpu import Core, CpuMode
from repro.hw.apic import LocalApic, IpiMessage, DeliveryMode
from repro.hw.msr import MsrFile, MSR
from repro.hw.ioports import IoPortSpace
from repro.hw.interrupts import (
    Interrupt,
    InterruptKind,
    ExceptionVector,
    ExceptionClass,
    exception_class,
    NMI_VECTOR,
)
from repro.hw.tlb import Tlb, TlbEntry, AccessPattern, estimate_miss_rate
from repro.hw.machine import Machine, MachineConfig

__all__ = [
    "Clock",
    "EventQueue",
    "CYCLES_PER_SECOND",
    "CYCLES_PER_US",
    "PAGE_SIZE",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_1G",
    "MemoryRegion",
    "PhysicalMemory",
    "OwnershipError",
    "page_align_down",
    "page_align_up",
    "NumaTopology",
    "NumaZone",
    "Core",
    "CpuMode",
    "LocalApic",
    "IpiMessage",
    "DeliveryMode",
    "MsrFile",
    "MSR",
    "IoPortSpace",
    "Interrupt",
    "InterruptKind",
    "ExceptionVector",
    "ExceptionClass",
    "exception_class",
    "NMI_VECTOR",
    "Tlb",
    "TlbEntry",
    "AccessPattern",
    "estimate_miss_rate",
    "Machine",
    "MachineConfig",
]
