"""Global cycle clock and discrete event queue.

All timing in the simulator is expressed in CPU cycles of a nominal
1.70 GHz part (the paper's Xeon E5-2603 v4).  Cores keep their own TSC
offsets but share this single notion of simulated time, which is what a
synchronized-invariant-TSC machine provides.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Nominal core frequency of the simulated machine (Xeon E5-2603 v4).
CYCLES_PER_SECOND: int = 1_700_000_000
CYCLES_PER_MS: int = CYCLES_PER_SECOND // 1_000
CYCLES_PER_US: int = CYCLES_PER_SECOND // 1_000_000


def cycles_to_us(cycles: int | float) -> float:
    """Convert a cycle count into microseconds of simulated time."""
    return cycles / CYCLES_PER_US


def us_to_cycles(us: int | float) -> int:
    """Convert microseconds of simulated time into cycles."""
    return int(us * CYCLES_PER_US)


class Clock:
    """Monotonic global cycle counter.

    The clock only moves forward.  Components that need to model elapsed
    work call :meth:`advance`; components that need a timestamp read
    :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before cycle 0")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    def advance(self, cycles: int | float) -> int:
        """Move time forward by ``cycles`` and return the new time."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self._now += int(cycles)
        return self._now

    def advance_to(self, deadline: int) -> int:
        """Move time forward to ``deadline`` (no-op if already past)."""
        if deadline > self._now:
            self._now = int(deadline)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"


@dataclass(order=True)
class _Event:
    when: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """Discrete event queue driven by a :class:`Clock`.

    Events fire in timestamp order; ties break in scheduling order.  The
    queue powers periodic machinery such as APIC timers and deferred
    controller work.
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._heap: list[_Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(
        self, delay: int, callback: Callable[[], Any], *, tag: str = ""
    ) -> _Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = _Event(self.clock.now + int(delay), next(self._seq), callback, tag)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, when: int, callback: Callable[[], Any], *, tag: str = ""
    ) -> _Event:
        """Schedule ``callback`` at absolute cycle ``when``."""
        if when < self.clock.now:
            raise ValueError("cannot schedule events in the past")
        event = _Event(int(when), next(self._seq), callback, tag)
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: _Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancelled = True

    def next_deadline(self) -> int | None:
        """Timestamp of the earliest pending event, or None if empty."""
        self._drop_cancelled()
        return self._heap[0].when if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def pending_summary(self) -> list[tuple[int, int, str]]:
        """``(when, seq, tag)`` for every live pending event, in firing
        order.  Deterministic-scheduling introspection: two runs of the
        same seeded scenario must agree on this at every step, so it
        feeds the fuzz engine's state fingerprint.
        """
        return sorted(
            (ev.when, ev.seq, ev.tag) for ev in self._heap if not ev.cancelled
        )

    def run_until(self, deadline: int) -> int:
        """Fire every event scheduled at or before ``deadline``.

        The clock is advanced to each event's timestamp as it fires and to
        ``deadline`` at the end.  Returns the number of events fired.
        """
        fired = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].when > deadline:
                break
            event = heapq.heappop(self._heap)
            self.clock.advance_to(event.when)
            event.callback()
            fired += 1
        self.clock.advance_to(deadline)
        return fired

    def run_next(self) -> bool:
        """Fire the single earliest event; returns False if none pending."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.when)
        event.callback()
        return True
