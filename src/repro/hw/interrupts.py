"""Interrupt and exception vocabulary of the simulated machine.

The x86 vector space (0..255) is reproduced: vectors 0..31 are reserved
for processor exceptions, vector 2 is the NMI, and 32..255 are freely
allocatable interrupt vectors.  Hobbes treats per-core IPI vectors in the
allocatable range as a globally allocatable application resource; Covirt's
IPI protection polices exactly this space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

#: Number of vectors in the architectural vector space.
VECTOR_SPACE_SIZE = 256
#: First vector available for external interrupts / IPIs.
FIRST_ALLOCATABLE_VECTOR = 32
#: The non-maskable interrupt vector.
NMI_VECTOR = 2


class ExceptionVector(enum.IntEnum):
    """Architectural exception vectors (subset relevant to the paper)."""

    DIVIDE_ERROR = 0
    DEBUG = 1
    NMI = 2
    BREAKPOINT = 3
    OVERFLOW = 4
    BOUND_RANGE = 5
    INVALID_OPCODE = 6
    DEVICE_NOT_AVAILABLE = 7
    DOUBLE_FAULT = 8
    INVALID_TSS = 10
    SEGMENT_NOT_PRESENT = 11
    STACK_FAULT = 12
    GENERAL_PROTECTION = 13
    PAGE_FAULT = 14
    X87_FP = 16
    ALIGNMENT_CHECK = 17
    MACHINE_CHECK = 18
    SIMD_FP = 19


class ExceptionClass(enum.Enum):
    """Architectural exception classes.

    Abort-class exceptions (double fault, machine check) indicate the
    machine state is unrecoverable; Covirt traps these so an aborting
    co-kernel cannot take the node down with it.
    """

    FAULT = "fault"
    TRAP = "trap"
    ABORT = "abort"


_EXCEPTION_CLASSES: dict[int, ExceptionClass] = {
    ExceptionVector.DIVIDE_ERROR: ExceptionClass.FAULT,
    ExceptionVector.DEBUG: ExceptionClass.FAULT,
    ExceptionVector.NMI: ExceptionClass.TRAP,
    ExceptionVector.BREAKPOINT: ExceptionClass.TRAP,
    ExceptionVector.OVERFLOW: ExceptionClass.TRAP,
    ExceptionVector.BOUND_RANGE: ExceptionClass.FAULT,
    ExceptionVector.INVALID_OPCODE: ExceptionClass.FAULT,
    ExceptionVector.DEVICE_NOT_AVAILABLE: ExceptionClass.FAULT,
    ExceptionVector.DOUBLE_FAULT: ExceptionClass.ABORT,
    ExceptionVector.INVALID_TSS: ExceptionClass.FAULT,
    ExceptionVector.SEGMENT_NOT_PRESENT: ExceptionClass.FAULT,
    ExceptionVector.STACK_FAULT: ExceptionClass.FAULT,
    ExceptionVector.GENERAL_PROTECTION: ExceptionClass.FAULT,
    ExceptionVector.PAGE_FAULT: ExceptionClass.FAULT,
    ExceptionVector.X87_FP: ExceptionClass.FAULT,
    ExceptionVector.ALIGNMENT_CHECK: ExceptionClass.FAULT,
    ExceptionVector.MACHINE_CHECK: ExceptionClass.ABORT,
    ExceptionVector.SIMD_FP: ExceptionClass.FAULT,
}


def exception_class(vector: int) -> ExceptionClass:
    """Classify an exception vector; unknown reserved vectors are faults."""
    if vector >= FIRST_ALLOCATABLE_VECTOR:
        raise ValueError(f"vector {vector} is not an exception vector")
    return _EXCEPTION_CLASSES.get(vector, ExceptionClass.FAULT)


def is_abort(vector: int) -> bool:
    """True when ``vector`` is an abort-class exception."""
    return (
        vector < FIRST_ALLOCATABLE_VECTOR
        and exception_class(vector) is ExceptionClass.ABORT
    )


class InterruptKind(enum.Enum):
    """Where an interrupt came from, for routing and accounting."""

    EXCEPTION = "exception"
    EXTERNAL = "external"  # device-generated
    IPI = "ipi"
    NMI = "nmi"
    TIMER = "timer"


@dataclass(frozen=True)
class Interrupt:
    """A single interrupt event as seen by a core."""

    vector: int
    kind: InterruptKind
    source_core: int | None = None
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.vector < VECTOR_SPACE_SIZE:
            raise ValueError(f"vector {self.vector} outside vector space")

    @property
    def is_exception(self) -> bool:
        return self.vector < FIRST_ALLOCATABLE_VECTOR

    @property
    def is_abort(self) -> bool:
        return self.is_exception and is_abort(self.vector)
