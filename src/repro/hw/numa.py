"""NUMA topology of the simulated machine.

The paper's testbed is a dual-socket Xeon with two NUMA zones; enclave
memory is deliberately split across zones in the scaling experiments
(Figs. 6 and 7).  Covirt's zero-abstraction design goal means the guest
sees this topology *unfiltered* — nothing in the virtualization layer may
hide or remap it — so the topology object is shared by host, enclaves,
and hypervisor alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import PAGE_SIZE, is_page_aligned

#: Conventional ACPI SLIT distances.
LOCAL_DISTANCE = 10
REMOTE_DISTANCE = 21


@dataclass(frozen=True)
class NumaZone:
    """One NUMA domain: a memory window plus the cores attached to it."""

    zone_id: int
    mem_start: int
    mem_size: int
    core_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.mem_size <= 0 or not is_page_aligned(self.mem_size):
            raise ValueError("zone memory must be a positive page multiple")
        if not is_page_aligned(self.mem_start):
            raise ValueError("zone memory must be page aligned")

    @property
    def mem_end(self) -> int:
        return self.mem_start + self.mem_size

    def contains_addr(self, addr: int) -> bool:
        return self.mem_start <= addr < self.mem_end

    @property
    def window(self) -> tuple[int, int]:
        """Address window usable as ``PhysicalMemory.allocate(within=...)``."""
        return (self.mem_start, self.mem_end)


class NumaTopology:
    """Zones, core placement, and SLIT-style distances."""

    def __init__(self, zones: list[NumaZone]) -> None:
        if not zones:
            raise ValueError("at least one NUMA zone required")
        ids = [z.zone_id for z in zones]
        if ids != list(range(len(zones))):
            raise ValueError("zone ids must be dense and ordered")
        cores_seen: set[int] = set()
        for zone in zones:
            overlap = cores_seen & set(zone.core_ids)
            if overlap:
                raise ValueError(f"cores {overlap} appear in multiple zones")
            cores_seen |= set(zone.core_ids)
        self.zones = list(zones)
        self._core_to_zone = {
            core: zone.zone_id for zone in zones for core in zone.core_ids
        }

    @classmethod
    def symmetric(
        cls, num_zones: int, cores_per_zone: int, mem_per_zone: int
    ) -> "NumaTopology":
        """Build a homogeneous topology (the common dual-socket case)."""
        zones = []
        for z in range(num_zones):
            zones.append(
                NumaZone(
                    zone_id=z,
                    mem_start=z * mem_per_zone,
                    mem_size=mem_per_zone,
                    core_ids=tuple(
                        range(z * cores_per_zone, (z + 1) * cores_per_zone)
                    ),
                )
            )
        return cls(zones)

    @property
    def num_zones(self) -> int:
        return len(self.zones)

    @property
    def num_cores(self) -> int:
        return len(self._core_to_zone)

    @property
    def total_memory(self) -> int:
        return sum(z.mem_size for z in self.zones)

    @property
    def all_core_ids(self) -> list[int]:
        return sorted(self._core_to_zone)

    def zone_of_core(self, core_id: int) -> int:
        try:
            return self._core_to_zone[core_id]
        except KeyError:
            raise KeyError(f"core {core_id} not in topology") from None

    def zone_of_addr(self, addr: int) -> int:
        for zone in self.zones:
            if zone.contains_addr(addr):
                return zone.zone_id
        raise KeyError(f"address {addr:#x} not in any zone")

    def distance(self, zone_a: int, zone_b: int) -> int:
        """SLIT distance between two zones."""
        if not (0 <= zone_a < self.num_zones and 0 <= zone_b < self.num_zones):
            raise KeyError("unknown zone")
        return LOCAL_DISTANCE if zone_a == zone_b else REMOTE_DISTANCE

    def is_local(self, core_id: int, addr: int) -> bool:
        """True when ``addr`` is in the zone that owns ``core_id``."""
        return self.zone_of_core(core_id) == self.zone_of_addr(addr)

    def __repr__(self) -> str:
        return (
            f"NumaTopology({self.num_zones} zones, {self.num_cores} cores, "
            f"{self.total_memory >> 30} GiB)"
        )
