"""The node-local XEMEM name service.

XEMEM provides a global view of shared memory through segment IDs
managed across the entire system by a node-local name service; this is
it.  It runs in the host OS/R alongside the master control process.
"""

from __future__ import annotations

from repro.xemem.segment import Segment, SegmentError


class NameService:
    """name → segment registry with segid allocation."""

    def __init__(self) -> None:
        self._by_name: dict[str, Segment] = {}
        self._by_segid: dict[int, Segment] = {}
        self._next_segid = 0x1000

    def __len__(self) -> int:
        return len(self._by_segid)

    def allocate_segid(self) -> int:
        segid = self._next_segid
        self._next_segid += 1
        return segid

    def register(self, segment: Segment) -> None:
        if segment.name in self._by_name:
            raise SegmentError(f"segment name {segment.name!r} already exists")
        if segment.segid in self._by_segid:
            raise SegmentError(f"segid {segment.segid:#x} already exists")
        self._by_name[segment.name] = segment
        self._by_segid[segment.segid] = segment

    def lookup(self, name: str) -> Segment:
        try:
            return self._by_name[name]
        except KeyError:
            raise SegmentError(f"no segment named {name!r}") from None

    def by_segid(self, segid: int) -> Segment:
        try:
            return self._by_segid[segid]
        except KeyError:
            raise SegmentError(f"no segment {segid:#x}") from None

    def unregister(self, segid: int) -> Segment:
        segment = self.by_segid(segid)
        del self._by_segid[segid]
        del self._by_name[segment.name]
        segment.alive = False
        return segment

    def segments(self) -> list[Segment]:
        return list(self._by_segid.values())

    def segments_owned_by(self, enclave_id: int) -> list[Segment]:
        return [
            s for s in self._by_segid.values() if s.owner_enclave_id == enclave_id
        ]

    def segments_attached_by(self, enclave_id: int) -> list[Segment]:
        return [
            s for s in self._by_segid.values() if enclave_id in s.attachments
        ]
