"""The XEMEM service: make / get / attach / detach control paths.

This is the second of the two control paths (after Pisces memory
hotplug) that the Covirt controller monitors.  The ordering discipline
from Section IV-C is implemented literally:

* **attach** — the ``pre_attach`` hooks (where Covirt maps the EPT in
  the attaching enclave) fire *before* the page-frame list is
  transmitted to the attaching co-kernel, so by the time the co-kernel
  can touch the memory the nested mapping already exists;
* **detach** — the co-kernel retires its mappings and acknowledges
  first; only then do the ``post_detach`` hooks fire (where Covirt
  unmaps the EPT and flushes TLBs) and only after that does the
  operation complete toward the Hobbes resource manager.

The service also carries the *buggy* forced-removal path used to
reproduce the stale-segment crash anecdote from Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.hw.machine import Machine
from repro.hw.memory import MemoryRegion
from repro.obs import metric_names
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.xemem.nameservice import NameService
from repro.xemem.segment import Attachment, HOST_ENCLAVE_ID, Segment, SegmentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.pisces.enclave import Enclave


@dataclass
class XememHooks:
    """Covirt's (and anyone else's) interposition points."""

    #: fired (attacher_enclave, region) before frame-list transmission.
    pre_attach: list[Callable[["Enclave", MemoryRegion], None]] = field(
        default_factory=list
    )
    #: fired (attacher_enclave, region) after co-kernel ack, before completion.
    post_detach: list[Callable[["Enclave", MemoryRegion], None]] = field(
        default_factory=list
    )


class XememService:
    """Node-wide XEMEM, hosted next to the master control process."""

    def __init__(
        self,
        machine: Machine,
        enclave_resolver: Callable[[int], "Enclave | None"],
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        self.machine = machine
        self.names = NameService()
        self.hooks = XememHooks()
        self.costs = costs
        self._resolve = enclave_resolver
        #: (op, segid, cycles) log for latency studies.
        self.op_log: list[tuple[str, int, int]] = []

    # -- helpers -------------------------------------------------------

    def _enclave(self, enclave_id: int) -> "Enclave | None":
        if enclave_id == HOST_ENCLAVE_ID:
            return None
        enclave = self._resolve(enclave_id)
        if enclave is None:
            raise SegmentError(f"unknown enclave {enclave_id}")
        return enclave

    def _charge(self, enclave_id: int, core_hint: int | None, cycles: int) -> None:
        """Account control-path latency to the calling core's TSC."""
        if core_hint is not None:
            self.machine.core(core_hint).advance(cycles)

    def _note_op(self, op: str, cycles: int) -> None:
        """Fold one control-path operation into the machine-wide
        observability registry (passive — never advances time)."""
        metrics = self.machine.obs.metrics
        metrics.counter(
            metric_names.XEMEM_OPS, "XEMEM control-path operations"
        ).inc(op=op)
        metrics.histogram(
            metric_names.XEMEM_OP_CYCLES, "XEMEM control-path latency (cycles)"
        ).observe(cycles, op=op)

    # -- control paths -------------------------------------------------

    def make(
        self,
        owner_enclave_id: int,
        name: str,
        start: int,
        size: int,
        *,
        core_hint: int | None = None,
    ) -> Segment:
        """Export [start, +size) from the owner's memory as ``name``."""
        with self.machine.obs.tracer.span(
            "xemem.grant",
            category="xemem",
            track="xemem",
            segment=name,
            owner=owner_enclave_id,
            bytes=size,
        ):
            owner = self._enclave(owner_enclave_id)
            if owner is not None and not owner.assignment.owns_addr(start):
                raise SegmentError(
                    f"enclave {owner_enclave_id} does not own {start:#x}"
                )
            segment = Segment(
                self.names.allocate_segid(), name, owner_enclave_id, start, size
            )
            self.names.register(segment)
            self._charge(
                owner_enclave_id, core_hint, self.costs.xemem_control_rtt
            )
            self.op_log.append(
                ("make", segment.segid, self.costs.xemem_control_rtt)
            )
            self._note_op("grant", self.costs.xemem_control_rtt)
            return segment

    def get(self, name: str, *, core_hint: int | None = None) -> int:
        """Name-service lookup → segid."""
        segment = self.names.lookup(name)
        if core_hint is not None:
            self.machine.core(core_hint).advance(self.costs.xemem_control_rtt // 2)
        return segment.segid

    def attach(
        self, attacher_enclave_id: int, segid: int, *, core_hint: int | None = None
    ) -> Attachment:
        """Attach a segment into an enclave's address space."""
        with self.machine.obs.tracer.span(
            "xemem.attach",
            category="xemem",
            track="xemem",
            segid=segid,
            attacher=attacher_enclave_id,
        ):
            segment = self.names.by_segid(segid)
            attacher = self._enclave(attacher_enclave_id)
            covirt = bool(
                attacher is not None and attacher.virt_context is not None
            )
            region = segment.region
            if attacher is not None:
                # 1. Hooks first: under Covirt, the EPT mapping now exists.
                for hook in self.hooks.pre_attach:
                    hook(attacher, region)
                # 2. Transmit the page-frame list to the attaching co-kernel,
                #    which installs it in its memory map and page tables.
                assert attacher.kernel is not None
                attacher.kernel.map_shared(region)
            attachment = segment.attach_for(attacher_enclave_id)
            cycles = self.costs.xemem_attach_cycles(segment.size, covirt=covirt)
            self._charge(attacher_enclave_id, core_hint, cycles)
            self.op_log.append(("attach", segid, cycles))
            self._note_op("attach", cycles)
            return attachment

    def detach(
        self, attacher_enclave_id: int, segid: int, *, core_hint: int | None = None
    ) -> None:
        """Detach; the co-kernel acks before the hypervisor unmaps."""
        with self.machine.obs.tracer.span(
            "xemem.detach",
            category="xemem",
            track="xemem",
            segid=segid,
            attacher=attacher_enclave_id,
        ):
            segment = self.names.by_segid(segid)
            attacher = self._enclave(attacher_enclave_id)
            covirt = bool(
                attacher is not None and attacher.virt_context is not None
            )
            region = segment.region
            num_cores = (
                len(attacher.assignment.core_ids) if attacher is not None else 0
            )
            if attacher is not None:
                # 1. Co-kernel retires its mappings and acknowledges.
                assert attacher.kernel is not None
                attacher.kernel.unmap_shared(region)
                # 2. Only then: Covirt unmap + flush.
                for hook in self.hooks.post_detach:
                    hook(attacher, region)
            segment.detach_for(attacher_enclave_id)
            cycles = self.costs.xemem_detach_cycles(
                segment.size, covirt=covirt, num_cores=num_cores
            )
            self._charge(attacher_enclave_id, core_hint, cycles)
            self.op_log.append(("detach", segid, cycles))
            self._note_op("detach", cycles)

    def remove(self, segid: int) -> None:
        """Owner destroys a segment; all attachments must be gone."""
        segment = self.names.by_segid(segid)
        if segment.attachments:
            raise SegmentError(
                f"segment {segid:#x} still attached by "
                f"{sorted(segment.attachments)}"
            )
        self.names.unregister(segid)

    def force_remove_buggy(self, segid: int) -> list[int]:
        """The Section-V bug: the host reclaims a segment while remote
        attachments still exist, and the cleanup path never tells the
        attaching co-kernels.

        The *hypervisor-side* bookkeeping is done correctly (the
        ``post_detach`` hooks fire — Covirt's controller sits on the
        reclaim path itself), but the co-kernels' memory maps retain the
        stale range.  Returns the enclave ids left holding stale state.
        """
        segment = self.names.by_segid(segid)
        stale: list[int] = []
        for enclave_id in list(segment.attachments):
            attacher = self._enclave(enclave_id)
            if attacher is not None:
                for hook in self.hooks.post_detach:
                    hook(attacher, segment.region)
                stale.append(enclave_id)
            segment.detach_for(enclave_id)
        self.names.unregister(segid)
        return stale
