"""XEMEM segments and attachments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.memory import MemoryRegion, is_page_aligned

#: Enclave id used for the host OS/R in XEMEM bookkeeping.
HOST_ENCLAVE_ID = 0


class SegmentError(Exception):
    """XEMEM control-path failure."""


@dataclass
class Attachment:
    """One enclave's attachment of a segment."""

    segid: int
    enclave_id: int
    #: Address at which the attacher sees the memory.  Identity in our
    #: co-kernel world: shared physical frames appear at their physical
    #: addresses, which is what makes zero-copy (and zero-abstraction
    #: virtualization) possible.
    local_addr: int

    def covers(self, addr: int, length: int, size: int) -> bool:
        return self.local_addr <= addr and addr + length <= self.local_addr + size


@dataclass
class Segment:
    """An exported shared-memory segment."""

    segid: int
    name: str
    owner_enclave_id: int
    start: int
    size: int
    attachments: dict[int, Attachment] = field(default_factory=dict)
    alive: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0 or not is_page_aligned(self.start) or not is_page_aligned(self.size):
            raise SegmentError(
                f"segment [{self.start:#x},+{self.size:#x}) must be page aligned"
            )

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def region(self) -> MemoryRegion:
        return MemoryRegion(self.start, self.size)

    def attach_for(self, enclave_id: int) -> Attachment:
        if not self.alive:
            raise SegmentError(f"segment {self.segid} has been removed")
        if enclave_id in self.attachments:
            raise SegmentError(
                f"enclave {enclave_id} already attached to segment {self.segid}"
            )
        attachment = Attachment(self.segid, enclave_id, self.start)
        self.attachments[enclave_id] = attachment
        return attachment

    def detach_for(self, enclave_id: int) -> Attachment:
        try:
            return self.attachments.pop(enclave_id)
        except KeyError:
            raise SegmentError(
                f"enclave {enclave_id} not attached to segment {self.segid}"
            ) from None
