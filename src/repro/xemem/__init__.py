"""XEMEM cross-enclave shared memory (simulated).

XEMEM extends SGI/Cray XPMEM across OS/R boundaries: a process exports a
range of its address space as a named *segment*; processes in any other
enclave look the name up in a node-local name service and attach the
segment into their own address space.  Attach/detach churn is the
dominant dynamic-memory traffic in a Hobbes system and therefore the
control path Covirt's Fig. 4 experiment measures.
"""

from repro.xemem.segment import Segment, Attachment, SegmentError
from repro.xemem.nameservice import NameService
from repro.xemem.api import XememService, XememHooks

__all__ = [
    "Segment",
    "Attachment",
    "SegmentError",
    "NameService",
    "XememService",
    "XememHooks",
]
