"""One-shot reproduction verification.

Runs every experiment and checks the paper's *shape claims* as explicit
bands — the same bands the test suite pins, but packaged as a single
report a reader can run (``python -m repro verify``) to see
paper-vs-measured at a glance.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.harness import experiments as ex
from repro.harness.experiments import ExperimentResult
from repro.harness.report import format_rows


def _pct(cell: str) -> float:
    match = re.match(r"([+-]?\d+(\.\d+)?)", str(cell).strip())
    assert match, f"not numeric: {cell!r}"
    return float(match.group(1))


@dataclass
class Claim:
    """One paper claim with an acceptance band."""

    figure: str
    claim: str
    band: str
    measure: Callable[[ExperimentResult], float]
    low: float
    high: float

    def evaluate(self, result: ExperimentResult) -> tuple[float, bool]:
        value = self.measure(result)
        return value, self.low <= value <= self.high


def _config_overhead(result: ExperimentResult, config: str) -> float:
    rows = dict(zip(result.column("config"), result.column("overhead")))
    return _pct(rows[config])


def _worst_overhead(result: ExperimentResult, where: str | None = None,
                    key_col: str = "problem") -> float:
    values = []
    for row in result.rows:
        record = dict(zip(result.headers, row))
        if where is not None and record.get(key_col) != where:
            continue
        values.append(_pct(record["overhead"]))
    return max(values)


CLAIMS: list[tuple[str, Callable[[], ExperimentResult], list[Claim]]] = [
    (
        "fig3",
        lambda: ex.run_fig3_selfish(duration_seconds=10.0),
        [
            Claim(
                "Fig. 3", "noise profiles show little variation",
                "detour-count spread = 0",
                lambda r: float(
                    max(r.column("detours")) - min(r.column("detours"))
                ),
                0.0, 0.0,
            )
        ],
    ),
    (
        "fig4",
        lambda: ex.run_fig4_xemem(sizes_mb=[1, 16, 256, 1024]),
        [
            Claim(
                "Fig. 4", "attach overhead little-to-none, shrinking",
                "delta at 1 GB < 1 %",
                lambda r: _pct(r.column("delta")[-1]),
                -1.0, 1.0,
            )
        ],
    ),
    (
        "fig5a",
        ex.run_fig5_stream,
        [
            Claim(
                "Fig. 5a", "STREAM: no noticeable overhead",
                "worst config < 0.5 %",
                lambda r: max(_pct(c) for c in r.column("overhead")),
                0.0, 0.5,
            )
        ],
    ),
    (
        "fig5b",
        ex.run_fig5_randomaccess,
        [
            Claim(
                "Fig. 5b", "memory protection adds ~1.8 %",
                "1.0–2.5 %",
                lambda r: _config_overhead(r, "covirt-mem"),
                1.0, 2.5,
            ),
            Claim(
                "Fig. 5b", "worst case (mem+IPI) ~3.1 %",
                "2.5–4.0 %",
                lambda r: _config_overhead(r, "covirt-mem+ipi"),
                2.5, 4.0,
            ),
        ],
    ),
    (
        "fig6",
        ex.run_fig6_minife,
        [
            Claim(
                "Fig. 6", "MiniFE: little to no overhead, all layouts",
                "worst < 0.75 %",
                lambda r: max(_pct(c) for c in r.column("overhead")),
                0.0, 0.75,
            )
        ],
    ),
    (
        "fig7",
        ex.run_fig7_hpcg,
        [
            Claim(
                "Fig. 7", "HPCG worst case ~1.4 %",
                "0.8–2.0 %",
                lambda r: max(_pct(c) for c in r.column("overhead")),
                0.8, 2.0,
            )
        ],
    ),
    (
        "fig8",
        ex.run_fig8_lammps,
        [
            Claim(
                "Fig. 8", "lj/eam/chain similar across configs",
                "worst of the three < 2 %",
                lambda r: max(
                    _worst_overhead(r, problem)
                    for problem in ("lj", "eam", "chain")
                ),
                0.0, 2.0,
            ),
            Claim(
                "Fig. 8", "chute most sensitive, still minimal",
                "2–8 %",
                lambda r: _worst_overhead(r, "chute"),
                2.0, 8.0,
            ),
        ],
    ),
]


def run_verification() -> tuple[str, bool]:
    """Run all claims; returns (report text, all passed)."""
    rows = []
    all_ok = True
    for _name, driver, claims in CLAIMS:
        result = driver()
        for claim in claims:
            value, ok = claim.evaluate(result)
            all_ok &= ok
            rows.append(
                [
                    claim.figure,
                    claim.claim,
                    claim.band,
                    f"{value:.2f}",
                    "PASS" if ok else "FAIL",
                ]
            )
    report = format_rows(
        ["figure", "paper claim", "accepted band", "measured", "verdict"],
        rows,
        title="Reproduction verification (paper shape claims)",
    )
    return report, all_ok
