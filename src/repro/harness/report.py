"""Small reporting helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence


def overhead_pct(value: float, baseline: float) -> float:
    """Relative overhead of ``value`` over ``baseline``, in percent.

    For lower-is-better metrics pass elapsed times; for higher-is-better
    metrics pass the *baseline's* figure first via ``-overhead_pct``.
    """
    if baseline == 0:
        return 0.0
    return (value / baseline - 1.0) * 100.0


def format_rows(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned text table (what the bench targets print)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
