"""A ready-to-use evaluation environment.

Bundles the full stack — machine, host OS, Hobbes MCP, Covirt
controller, workload engine — and provides the enclave layouts the
paper's evaluation sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import CovirtController
from repro.core.features import CovirtConfig
from repro.hobbes.master import MasterControlProcess
from repro.hw.machine import Machine, MachineConfig
from repro.hw.memory import page_align_up
from repro.linuxhost.host import LinuxHost
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.pisces.enclave import Enclave
from repro.pisces.resources import ResourceSpec
from repro.recovery.policy import RecoveryPolicy
from repro.recovery.supervisor import RecoverySupervisor, SupervisedService
from repro.workloads.engine import ExecutionEngine

GiB = 1 << 30

#: The enclave memory size used throughout the evaluation (Section V).
EVALUATION_MEMORY = 14 * GiB


@dataclass(frozen=True)
class Layout:
    """One of the paper's CPU-core/NUMA-zone hardware layouts."""

    label: str
    cores_per_zone: dict[int, int]
    mem_per_zone: dict[int, int]

    def spec(self, name: str = "eval") -> ResourceSpec:
        return ResourceSpec(
            cores_per_zone=dict(self.cores_per_zone),
            mem_per_zone={
                z: page_align_up(m) for z, m in self.mem_per_zone.items()
            },
            name=name,
        )


def _split_mem(total: int, zones: list[int]) -> dict[int, int]:
    share = page_align_up(total // len(zones))
    return {z: share for z in zones}


#: Figs. 6 & 7: (1) single core in one zone, (2) 4 cores across 2 zones,
#: (3) 4 cores in one zone, (4) 8 cores across 2 zones.  Memory is held
#: at 14 GB and split evenly across zones (all in zone 0 for layout 1,
#: which runs "entirely in one NUMA domain").
EVALUATION_LAYOUTS: list[Layout] = [
    Layout("1c/1n", {0: 1}, _split_mem(EVALUATION_MEMORY, [0])),
    Layout("4c/2n", {0: 2, 1: 2}, _split_mem(EVALUATION_MEMORY, [0, 1])),
    Layout("4c/1n", {0: 4}, _split_mem(EVALUATION_MEMORY, [0, 1])),
    Layout("8c/2n", {0: 4, 1: 4}, _split_mem(EVALUATION_MEMORY, [0, 1])),
]

#: Microbenchmarks run on a single-core configuration (Section V-A),
#: with the standard 14 GB split across the zones.
MICROBENCH_LAYOUT = Layout(
    "1c/1n", {0: 1}, _split_mem(EVALUATION_MEMORY, [0, 1])
)


class CovirtEnvironment:
    """The full simulated testbed."""

    def __init__(
        self,
        machine_config: MachineConfig | None = None,
        costs: CostModel = DEFAULT_COSTS,
        synchronous_updates: bool = False,
    ) -> None:
        self.machine = Machine(machine_config or MachineConfig.paper_testbed())
        self.host = LinuxHost(self.machine)
        self.mcp = MasterControlProcess(self.machine, self.host, costs=costs)
        self.controller = CovirtController(
            self.mcp, costs=costs, synchronous_updates=synchronous_updates
        )
        self.engine = ExecutionEngine(self.machine, costs=costs)
        self.costs = costs
        #: Recovery layer: supervises enclaves registered through
        #: :meth:`launch_supervised` (or ``recovery.supervise``).
        self.recovery = RecoverySupervisor(
            self.machine, self.host, self.mcp, self.controller
        )

    def launch(
        self,
        layout: Layout,
        config: CovirtConfig | None,
        name: str = "eval",
    ) -> Enclave:
        """Boot an enclave with the given layout and protection config
        (None = native)."""
        return self.controller.launch(layout.spec(name), config)

    def launch_supervised(
        self,
        layout: Layout,
        config: CovirtConfig | None,
        policy: RecoveryPolicy | None = None,
        name: str = "eval",
    ) -> SupervisedService:
        """Boot an enclave and place it under recovery supervision.
        Returns the service handle — ``service.enclave`` tracks the
        current incarnation across restarts."""
        enclave = self.launch(layout, config, name)
        return self.recovery.supervise(
            enclave, policy=policy, config=config, name=name
        )

    def teardown(self, enclave: Enclave) -> None:
        from repro.pisces.enclave import EnclaveState

        if enclave.state is EnclaveState.RUNNING:
            self.mcp.shutdown_enclave(enclave.enclave_id)
        elif enclave.state is EnclaveState.FAILED:
            # Already reclaimed by the fault path; nothing to do.
            pass
