"""Experiment drivers: one per table/figure in the paper's evaluation.

Each driver builds (or receives) a :class:`CovirtEnvironment`, runs the
paper's sweep, and returns structured rows plus a rendered table whose
columns match what the figure reports.  The pytest-benchmark targets in
``benchmarks/`` wrap these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.features import CovirtConfig, EVALUATION_CONFIGS
from repro.harness.env import (
    CovirtEnvironment,
    EVALUATION_LAYOUTS,
    MICROBENCH_LAYOUT,
    Layout,
)
from repro.harness.report import format_rows, overhead_pct
from repro.hw.clock import CYCLES_PER_US
from repro.hw.memory import page_align_up
from repro.workloads.base import Workload, WorkloadResult
from repro.workloads.hpcg import Hpcg
from repro.workloads.lammps import LAMMPS_PROBLEMS, Lammps
from repro.workloads.minife import MiniFE
from repro.workloads.randomaccess import RandomAccess
from repro.workloads.registry import format_table1
from repro.workloads.selfish import SelfishDetour
from repro.workloads.stream import Stream

MiB = 1 << 20


def experiment_rng(name: str):
    """The named RNG stream an experiment draws from.

    All harness-level randomness goes through here (one stream per
    experiment, derived from the repo-wide default seed) so any sweep
    is reproducible from the stream name printed in its notes.
    """
    from repro.fuzz.rng import named_stream

    return named_stream(f"experiments.{name}")


@dataclass
class ExperimentResult:
    """Rows + rendered table for one experiment."""

    experiment: str
    headers: list[str]
    rows: list[list[Any]]
    notes: str = ""

    def render(self) -> str:
        table = format_rows(self.headers, self.rows, title=self.experiment)
        return f"{table}\n{self.notes}" if self.notes else table

    def column(self, name: str) -> list[Any]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form: one record per row."""
        return {
            "experiment": self.experiment,
            "notes": self.notes,
            "records": [dict(zip(self.headers, row)) for row in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, default=str)

    def save(self, directory: str | Path, name: str) -> Path:
        """Write the JSON artifact to ``directory/name.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.json"
        path.write_text(self.to_json() + "\n")
        return path


# -- Table I -----------------------------------------------------------


def run_table1(validate_kernels: bool = False) -> ExperimentResult:
    """Table I: benchmark versions and parameters.

    With ``validate_kernels=True`` also runs every benchmark's
    reference kernel from its deterministic named RNG stream, so the
    table doubles as a smoke test of the numerical cores."""
    from repro.workloads.registry import BENCHMARK_TABLE

    rows = [list(w.table_row()) for w in BENCHMARK_TABLE]
    notes = format_table1()
    if validate_kernels:
        lines = []
        for w in BENCHMARK_TABLE:
            rng = experiment_rng(f"table1.{w.name}")
            results = w.reference_kernel(rng.numpy_generator())
            lines.append(
                f"{w.name}: kernel ok ({len(results)} checks; {rng.describe()})"
            )
        notes += "\n" + "\n".join(lines)
    return ExperimentResult(
        experiment="Table I: Benchmark Versions and Parameters",
        headers=["Benchmark Name", "Version", "Parameters"],
        rows=rows,
        notes=notes,
    )


# -- Fig. 3: Selfish Detour ------------------------------------------------


def run_fig3_selfish(duration_seconds: float = 10.0) -> ExperimentResult:
    """Fig. 3: noise profile per Covirt configuration.

    Expected shape: detour *counts* identical in every configuration
    (virtualization adds no noise events), durations shifted by at most
    the exit cost on interrupt-virtualizing configs.
    """
    workload = SelfishDetour(duration_seconds)
    rows = []
    for label, _config in EVALUATION_CONFIGS:
        trace = workload.sample(label)
        rows.append(
            [
                label,
                trace.count,
                round(trace.max_detour_us(), 3),
                f"{trace.noise_fraction * 100:.5f}%",
            ]
        )
    return ExperimentResult(
        experiment="Fig. 3: Selfish-Detour noise profile",
        headers=["config", "detours", "max detour (us)", "noise fraction"],
        rows=rows,
        notes="Counts identical across configs: virtualization adds no noise events.",
    )


# -- Fig. 4: XEMEM attach latency ----------------------------------------


def run_fig4_xemem(
    env: CovirtEnvironment | None = None,
    sizes_mb: list[int] | None = None,
) -> ExperimentResult:
    """Fig. 4: XEMEM attach latency vs region size, Covirt on/off.

    Two enclaves per mode (owner exports, attacher attaches); latency is
    TSC-sampled on the attaching core around the attach call, exactly as
    the paper measures it.
    """
    sizes_mb = sizes_mb or [1, 4, 16, 64, 256, 1024]
    results: dict[str, list[float]] = {}
    for mode_label, config in [
        ("covirt-off", None),
        ("covirt-on", CovirtConfig.memory_only()),
    ]:
        # Fresh environment per mode: enclaves occupy most of the machine.
        e = CovirtEnvironment()
        owner_layout = Layout(
            "owner", {0: 1}, {0: 4 * 1024 * MiB}
        )
        attacher_layout = Layout(
            "attacher", {1: 1}, {1: 2 * 1024 * MiB}
        )
        owner = e.controller.launch(owner_layout.spec("owner"), config)
        attacher = e.controller.launch(attacher_layout.spec("attacher"), config)
        okernel = owner.kernel
        assert okernel is not None
        task = okernel.spawn("exporter", mem_bytes=page_align_up(1100 * MiB))
        base = task.slices[0].start
        attach_core = attacher.assignment.core_ids[0]
        core = e.machine.core(attach_core)
        latencies = []
        for i, size_mb in enumerate(sizes_mb):
            size = size_mb * MiB
            seg = e.mcp.xemem.make(
                owner.enclave_id, f"region-{i}", base, size
            )
            t0 = core.read_tsc()
            e.mcp.xemem.attach(
                attacher.enclave_id, seg.segid, core_hint=attach_core
            )
            t1 = core.read_tsc()
            latencies.append((t1 - t0) / CYCLES_PER_US)
            e.mcp.xemem.detach(
                attacher.enclave_id, seg.segid, core_hint=attach_core
            )
            e.mcp.xemem.remove(seg.segid)
        results[mode_label] = latencies
    rows = [
        [
            f"{size} MB",
            round(off, 1),
            round(on, 1),
            f"{overhead_pct(on, off):+.2f}%",
        ]
        for size, off, on in zip(
            sizes_mb, results["covirt-off"], results["covirt-on"]
        )
    ]
    return ExperimentResult(
        experiment="Fig. 4: XEMEM attach delay",
        headers=["region size", "no covirt (us)", "covirt (us)", "delta"],
        rows=rows,
        notes="Covirt's EPT update rides the existing control path: curves overlap.",
    )


# -- generic config sweep ---------------------------------------------------


def _sweep_configs(
    workload: Workload,
    layout: Layout,
    env: CovirtEnvironment | None = None,
) -> list[WorkloadResult]:
    """Run one workload × every evaluation config on fresh enclaves."""
    results = []
    for label, config in EVALUATION_CONFIGS:
        e = env if env is not None else CovirtEnvironment()
        enclave = e.launch(layout, config, name=f"{workload.name}-{label}")
        results.append(e.engine.run(workload, enclave))
        e.teardown(enclave)
    return results


def _overhead_rows(results: list[WorkloadResult]) -> list[list[Any]]:
    native = results[0]
    rows = []
    for res in results:
        rows.append(
            [
                res.config_label,
                res.layout_label,
                round(res.fom, 3),
                f"{res.overhead_vs(native) * 100:+.2f}%",
            ]
        )
    return rows


# -- Fig. 5: STREAM and RandomAccess ---------------------------------------


def run_fig5_stream(env: CovirtEnvironment | None = None) -> ExperimentResult:
    """Fig. 5a: STREAM across configs — no noticeable overhead."""
    results = _sweep_configs(Stream(), MICROBENCH_LAYOUT, env)
    return ExperimentResult(
        experiment="Fig. 5a: STREAM (triad MB/s, 1 core)",
        headers=["config", "layout", "MB/s", "overhead"],
        rows=_overhead_rows(results),
        notes="Sequential traffic amortises EPT walks: all configs ~native.",
    )


def run_fig5_randomaccess(
    env: CovirtEnvironment | None = None,
) -> ExperimentResult:
    """Fig. 5b: RandomAccess — worst case ~3.1 % (mem+IPI), ~1.8 % (mem)."""
    results = _sweep_configs(RandomAccess(), MICROBENCH_LAYOUT, env)
    return ExperimentResult(
        experiment="Fig. 5b: RandomAccess (GUP/s, 1 core)",
        headers=["config", "layout", "GUP/s", "overhead"],
        rows=_overhead_rows(results),
        notes="TLB-hostile updates expose the nested-walk cost.",
    )


# -- Figs. 6 & 7: mini-app scaling over layouts ----------------------------


def _run_scaling(workload_factory, title, fom_label) -> ExperimentResult:
    rows: list[list[Any]] = []
    for layout in EVALUATION_LAYOUTS:
        native_result: WorkloadResult | None = None
        for label, config in EVALUATION_CONFIGS:
            env = CovirtEnvironment()
            enclave = env.launch(layout, config)
            result = env.engine.run(workload_factory(), enclave)
            env.teardown(enclave)
            if native_result is None:
                native_result = result
            rows.append(
                [
                    layout.label,
                    label,
                    round(result.fom, 2),
                    f"{result.overhead_vs(native_result) * 100:+.2f}%",
                ]
            )
    return ExperimentResult(
        experiment=title,
        headers=["layout", "config", fom_label, "overhead"],
        rows=rows,
    )


def run_fig6_minife() -> ExperimentResult:
    """Fig. 6: MiniFE over core/NUMA layouts — no noticeable overhead."""
    return _run_scaling(
        MiniFE, "Fig. 6: MiniFE scaling over CPU-core/NUMA-zone layouts",
        "CG MFLOP/s",
    )


def run_fig7_hpcg() -> ExperimentResult:
    """Fig. 7: HPCG over layouts — constant ~1.4 % worst-case penalty."""
    return _run_scaling(
        Hpcg, "Fig. 7: HPCG scaling over CPU-core/NUMA-zone layouts",
        "GFLOP/s",
    )


# -- Fig. 8: LAMMPS ---------------------------------------------------------


def run_fig8_lammps() -> ExperimentResult:
    """Fig. 8: LAMMPS loop times, 8 cores / 2 zones.

    Expected shape: lj/eam/chain near-identical across configs; chute
    the most protection-sensitive, with native / covirt-none fastest.
    """
    layout = EVALUATION_LAYOUTS[3]  # 8c/2n
    rows: list[list[Any]] = []
    for problem in LAMMPS_PROBLEMS:
        native: WorkloadResult | None = None
        for label, config in EVALUATION_CONFIGS:
            env = CovirtEnvironment()
            enclave = env.launch(layout, config)
            result = env.engine.run(Lammps(problem), enclave)
            env.teardown(enclave)
            if native is None:
                native = result
            rows.append(
                [
                    problem,
                    label,
                    round(result.fom, 2),
                    f"{result.overhead_vs(native) * 100:+.2f}%",
                ]
            )
    return ExperimentResult(
        experiment="Fig. 8: LAMMPS loop times (s, lower is better), 8c/2n",
        headers=["problem", "config", "loop time (s)", "overhead"],
        rows=rows,
        notes="chute is the protection-sensitive outlier, as in the paper.",
    )


# -- ablations (design choices DESIGN.md calls out; beyond the paper) -------


def run_ablation_coalescing() -> ExperimentResult:
    """EPT large-page coalescing on/off: entry counts and the
    RandomAccess overhead that 4K-only tables would cost."""
    from repro.core.features import Feature
    from repro.hw.memory import PAGE_SIZE, PAGE_SIZE_1G, PAGE_SIZE_2M

    # A 1 GiB enclave keeps the 4K-only table at ~256k entries while
    # still dwarfing the RandomAccess working set.
    layout = Layout("1c/1n", {0: 1}, {0: 1 << 30})
    rows: list[list[Any]] = []
    native = None
    for label, coalesce in [("2M/1G coalescing", True), ("4K-only", False)]:
        config = CovirtConfig(
            features=Feature.MEMORY | Feature.EXCEPTIONS,
            ept_coalescing=coalesce,
        )
        env = CovirtEnvironment()
        if native is None:
            base = env.launch(layout, None, "native")
            native = env.engine.run(RandomAccess(), base)
            env.teardown(base)
        enclave = env.launch(layout, config)
        counts = enclave.virt_context.ept.entry_counts()
        result = env.engine.run(RandomAccess(), enclave)
        env.teardown(enclave)
        rows.append(
            [
                label,
                counts[PAGE_SIZE_1G],
                counts[PAGE_SIZE_2M],
                counts[PAGE_SIZE],
                f"{result.overhead_vs(native) * 100:+.2f}%",
            ]
        )
    return ExperimentResult(
        experiment="Ablation: EPT page coalescing (RandomAccess, 1 core)",
        headers=["EPT mode", "1G entries", "2M entries", "4K entries",
                 "overhead vs native"],
        rows=rows,
        notes="Large pages shrink both the table and the nested-walk cost.",
    )


def run_ablation_ipi_mode() -> ExperimentResult:
    """Trap-and-emulate vs posted-interrupt delivery (Section IV-C)."""
    from repro.core.features import Feature, IpiMode
    from repro.workloads.lammps import Lammps

    rows: list[list[Any]] = []
    for mode in (IpiMode.POSTED, IpiMode.TRAP):
        config = CovirtConfig(
            features=Feature.MEMORY | Feature.IPI | Feature.EXCEPTIONS,
            ipi_mode=mode,
        )
        for workload in (RandomAccess(), Lammps("chute")):
            env = CovirtEnvironment()
            native_enclave = env.launch(MICROBENCH_LAYOUT, None, "native")
            native = env.engine.run(workload, native_enclave)
            env.teardown(native_enclave)
            enclave = env.launch(MICROBENCH_LAYOUT, config)
            # Drive a doorbell through the real delivery engine so the
            # exit/posted counters reflect the mode.
            env.mcp.channels[enclave.enclave_id].host_send("ping", None)
            counters = enclave.virt_context.aggregate_counters()
            result = env.engine.run(workload, enclave)
            env.teardown(enclave)
            rows.append(
                [
                    mode.value,
                    workload.name,
                    f"{result.overhead_vs(native) * 100:+.2f}%",
                    counters.exits.get("external_interrupt", 0),
                    counters.posted_deliveries,
                ]
            )
    return ExperimentResult(
        experiment="Ablation: IPI protection delivery mode",
        headers=["mode", "workload", "overhead vs native",
                 "recv exits/doorbell", "posted/doorbell"],
        rows=rows,
        notes="Posted interrupts remove the receive-side exit entirely.",
    )


def run_motivation_fullvirt() -> ExperimentResult:
    """The Section-I motivation, quantified: Covirt vs a conventional VM.

    Traditional virtualization would also isolate co-kernels, but at the
    cost the community rejected; this sweep shows the factor."""
    from repro.baselines.fullvirt import TraditionalVmm
    from repro.hw.clock import CYCLES_PER_US

    vmm = TraditionalVmm()
    rows: list[list[Any]] = []
    for workload_factory in (Stream, RandomAccess, Hpcg):
        workload = workload_factory()
        env = CovirtEnvironment()
        native_enclave = env.launch(MICROBENCH_LAYOUT, None, "native")
        native = env.engine.run(workload, native_enclave)
        env.teardown(native_enclave)
        covirt_enclave = env.launch(
            MICROBENCH_LAYOUT, CovirtConfig.memory_ipi(), "covirt"
        )
        covirt = env.engine.run(workload_factory(), covirt_enclave)
        env.teardown(covirt_enclave)
        fullvirt = vmm.run(workload_factory(), ncores=1)
        rows.append(
            [
                workload.name,
                f"{covirt.overhead_vs(native) * 100:+.2f}%",
                f"{fullvirt.overhead_vs(native) * 100:+.2f}%",
            ]
        )
    # IPC: one 4 KiB message across the OS/R boundary.
    ipc = vmm.ipc_message_cost(4096)
    rows.append(
        [
            "IPC (4 KiB msg)",
            f"{vmm.covirt_message_cost(4096) / CYCLES_PER_US:.2f} us",
            f"{ipc.total / CYCLES_PER_US:.2f} us",
        ]
    )
    # Dynamic memory: a 64 MiB attach.
    rows.append(
        [
            "attach 64 MiB",
            f"{DEFAULT_COSTS_ATTACH(64):.1f} us",
            f"{vmm.attach_latency_cycles(64 << 20, vcpus=1) / CYCLES_PER_US:.1f} us",
        ]
    )
    return ExperimentResult(
        experiment="Motivation: Covirt vs traditional virtualization",
        headers=["metric", "covirt (vs native)", "traditional VM (vs native)"],
        rows=rows,
        notes="Conventional VMs isolate too — at the overhead co-kernels reject.",
    )


def DEFAULT_COSTS_ATTACH(size_mb: int) -> float:
    """Covirt-side attach latency in microseconds (cost model)."""
    from repro.perf.costs import DEFAULT_COSTS

    return DEFAULT_COSTS.xemem_attach_cycles(
        size_mb << 20, covirt=True
    ) / CYCLES_PER_US


def run_isolation_corun() -> ExperimentResult:
    """Performance isolation under co-running enclaves (the co-kernel
    premise Covirt must not break): interference flows only through the
    shared memory system, and protection features don't change it."""
    from repro.workloads.selfish import SelfishDetour

    GiB_ = 1 << 30
    rows: list[list[Any]] = []
    for label, config in [("native", None), ("covirt-mem+ipi", CovirtConfig.memory_ipi())]:
        solo_env = CovirtEnvironment()
        solo = solo_env.engine.run(
            Stream(),
            solo_env.launch(Layout("2c/z0", {0: 2}, {0: 2 * GiB_}), config, "solo"),
        )
        scenarios = [
            ("vs STREAM, same zone", Layout("2c/z0", {0: 2}, {0: 2 * GiB_}),
             Stream()),
            ("vs STREAM, other zone", Layout("2c/z1", {1: 2}, {1: 2 * GiB_}),
             Stream()),
            ("vs spin loop, same zone", Layout("2c/z0", {0: 2}, {0: 2 * GiB_}),
             SelfishDetour(1.0)),
        ]
        for desc, other_layout, other_workload in scenarios:
            env = CovirtEnvironment()
            subject = env.launch(
                Layout("2c/z0", {0: 2}, {0: 2 * GiB_}), config, "subject"
            )
            neighbour = env.launch(other_layout, config, "neighbour")
            results = env.engine.run_concurrent(
                [(Stream(), subject), (other_workload, neighbour)]
            )
            slowdown = results[0].elapsed_cycles / solo.elapsed_cycles - 1.0
            rows.append([label, desc, f"{slowdown * 100:+.2f}%"])
    return ExperimentResult(
        experiment="Isolation: STREAM enclave vs co-running neighbours",
        headers=["config", "neighbour", "slowdown vs solo"],
        rows=rows,
        notes="Only same-zone memory pressure interferes; Covirt changes nothing.",
    )


def run_integration_spectrum() -> ExperimentResult:
    """Section III-A's integration axis, quantified: the cost of one
    delegated system call under each co-kernel architecture, native and
    under Covirt memory protection."""
    from repro.harness.env import CovirtEnvironment as _Env
    from repro.hw.clock import CYCLES_PER_US
    from repro.kitten.syscalls import Syscall

    GiB_ = 1 << 30
    rows: list[list[Any]] = []
    for label, config in [("native", None), ("covirt-mem", CovirtConfig.memory_only())]:
        # Hobbes/Pisces: channel round trip to the host proxy.
        env = _Env()
        enclave = env.launch(
            Layout("2c", {0: 1, 1: 1}, {0: GiB_, 1: GiB_}), config, "hobbes"
        )
        task = enclave.kernel.spawn("app")
        core = env.machine.core(enclave.assignment.core_ids[0])
        t0 = core.read_tsc()
        fd = enclave.kernel.syscall(task, Syscall.OPEN, "/etc/hostname")
        enclave.kernel.syscall(task, Syscall.READ, fd, 64)
        hobbes_us = (core.read_tsc() - t0) / 2 / CYCLES_PER_US
        rows.append([label, "Pisces/Hobbes (channel)", round(hobbes_us, 2)])
        # IHK/McKernel: proxy process.
        from repro.ihk import IhkModule

        env = _Env()
        ihk = IhkModule(env.machine, env.host)
        env.controller.interpose_on(ihk)
        os_index = ihk.reserve({0: 1, 1: 1}, {0: GiB_, 1: GiB_})
        mcos = env.controller.launch_via(lambda: ihk.boot(os_index), config)
        process = mcos.kernel.spawn_process("app")
        core = env.machine.core(mcos.assignment.core_ids[0])
        t0 = core.read_tsc()
        fd = mcos.kernel.syscall(process, Syscall.OPEN, "/etc/hostname")
        mcos.kernel.syscall(process, Syscall.READ, fd, 64)
        ihk_us = (core.read_tsc() - t0) / 2 / CYCLES_PER_US
        rows.append([label, "IHK/McKernel (proxy process)", round(ihk_us, 2)])
        # mOS: in-kernel trampoline.
        from repro.mos import MosStack

        env = _Env()
        mos = MosStack(env.machine, env.host)
        env.controller.interpose_on(mos)
        partition = env.controller.launch_via(
            lambda: mos.designate({0: 2}, {0: 2 * GiB_}), config
        )
        lwk = partition.kernel
        process = lwk.spawn_process("app")
        core = env.machine.core(partition.assignment.core_ids[0])
        t0 = core.read_tsc()
        fd = lwk.syscall(process, Syscall.OPEN, "/etc/hostname")
        lwk.syscall(process, Syscall.READ, fd, 64)
        mos_us = (core.read_tsc() - t0) / 2 / CYCLES_PER_US
        rows.append([label, "mOS (in-kernel trampoline)", round(mos_us, 2)])
    return ExperimentResult(
        experiment="Integration spectrum: one delegated syscall (us)",
        headers=["config", "architecture", "syscall latency (us)"],
        rows=rows,
        notes="Higher integration → cheaper delegation; Covirt's cost is"
        " architecture-independent.",
    )


def run_sensitivity() -> ExperimentResult:
    """Robustness of the headline result to the calibrated constants.

    Sweeps the two most influential cost-model inputs — the nested-walk
    increment and the VM-exit round trip — across a 4x range and reports
    the RandomAccess overheads.  The *qualitative* conclusions (ordering
    of configurations, sub-5 % magnitudes at plausible constants) should
    hold everywhere in the neighbourhood of the calibration."""
    from dataclasses import replace

    from repro.perf.costs import DEFAULT_COSTS

    rows: list[list[Any]] = []
    for walk_scale in (0.5, 1.0, 2.0):
        for exit_scale in (0.5, 1.0, 2.0):
            costs = replace(
                DEFAULT_COSTS,
                ept_extra_4k=DEFAULT_COSTS.ept_extra_4k * walk_scale,
                ept_extra_2m=DEFAULT_COSTS.ept_extra_2m * walk_scale,
                ept_extra_1g=DEFAULT_COSTS.ept_extra_1g * walk_scale,
                vm_exit_round_trip=int(
                    DEFAULT_COSTS.vm_exit_round_trip * exit_scale
                ),
            )
            overheads = {}
            env = CovirtEnvironment(costs=costs)
            native = env.engine.run(
                RandomAccess(), env.launch(MICROBENCH_LAYOUT, None, "n")
            )
            for label, config in EVALUATION_CONFIGS[2:]:  # mem, mem+ipi
                env_c = CovirtEnvironment(costs=costs)
                result = env_c.engine.run(
                    RandomAccess(), env_c.launch(MICROBENCH_LAYOUT, config)
                )
                overheads[label] = result.overhead_vs(native) * 100
            rows.append(
                [
                    f"x{walk_scale}",
                    f"x{exit_scale}",
                    f"{overheads['covirt-mem']:+.2f}%",
                    f"{overheads['covirt-mem+ipi']:+.2f}%",
                    "yes"
                    if overheads["covirt-mem"] < overheads["covirt-mem+ipi"] < 10
                    else "NO",
                ]
            )
    return ExperimentResult(
        experiment="Sensitivity: RandomAccess overhead vs cost-model constants",
        headers=["EPT-walk scale", "exit-cost scale", "covirt-mem",
                 "covirt-mem+ipi", "ordering holds"],
        rows=rows,
        notes="Qualitative conclusions survive 4x swings in the calibration.",
    )


def run_ablation_async_config(attaches: int = 16) -> ExperimentResult:
    """Asynchronous (command-queue) vs synchronous configuration updates.

    The synchronous variant interrupts every enclave core on each grant
    — the conventional-hypervisor behaviour Covirt's split architecture
    avoids."""
    rows: list[list[Any]] = []
    for label, synchronous in [("asynchronous (Covirt)", False),
                               ("synchronous (conventional)", True)]:
        env = CovirtEnvironment(synchronous_updates=synchronous)
        owner = env.controller.launch(
            Layout("owner", {0: 1}, {0: 2048 * MiB}).spec("owner"),
            CovirtConfig.memory_only(),
        )
        attacher = env.controller.launch(
            Layout("attacher", {1: 2}, {1: 1024 * MiB}).spec("attacher"),
            CovirtConfig.memory_only(),
        )
        task = owner.kernel.spawn("exporter", mem_bytes=64 * MiB)
        core = attacher.assignment.core_ids[0]
        t0 = env.machine.core(core).read_tsc()
        for i in range(attaches):
            seg = env.mcp.xemem.make(
                owner.enclave_id, f"s{i}", task.slices[0].start, 16 * MiB
            )
            env.mcp.xemem.attach(attacher.enclave_id, seg.segid, core_hint=core)
            env.mcp.xemem.detach(attacher.enclave_id, seg.segid, core_hint=core)
            env.mcp.xemem.remove(seg.segid)
        elapsed_us = (env.machine.core(core).read_tsc() - t0) / CYCLES_PER_US
        counters = attacher.virt_context.aggregate_counters()
        rows.append(
            [
                label,
                attaches,
                round(elapsed_us, 1),
                counters.commands_serviced,
                counters.exits.get("exception_or_nmi", 0),
            ]
        )
    return ExperimentResult(
        experiment="Ablation: asynchronous vs synchronous config updates",
        headers=["controller mode", "attach/detach cycles", "elapsed (us)",
                 "commands serviced", "NMI exits"],
        rows=rows,
        notes="Async updates interrupt guests only on unmap (TLB flush);"
        " sync mode also interrupts on every grant.",
    )
