"""Experiment harness: one driver per paper table/figure."""

from repro.harness.env import CovirtEnvironment, EVALUATION_LAYOUTS
from repro.harness.experiments import (
    run_table1,
    run_fig3_selfish,
    run_fig4_xemem,
    run_fig5_stream,
    run_fig5_randomaccess,
    run_fig6_minife,
    run_fig7_hpcg,
    run_fig8_lammps,
)
from repro.harness.report import format_rows, overhead_pct

__all__ = [
    "CovirtEnvironment",
    "EVALUATION_LAYOUTS",
    "run_table1",
    "run_fig3_selfish",
    "run_fig4_xemem",
    "run_fig5_stream",
    "run_fig5_randomaccess",
    "run_fig6_minife",
    "run_fig7_hpcg",
    "run_fig8_lammps",
    "format_rows",
    "overhead_pct",
]
