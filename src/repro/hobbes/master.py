"""The Hobbes master control process (MCP).

The MCP is the host-side brain of the co-kernel system: it drives
enclave lifecycle through the Pisces kernel module, owns the global
vector namespace and the XEMEM service, runs the syscall-forwarding
proxy, and — critically for Covirt — is the component whose control
paths the Covirt controller module hooks into.

It is also the fault-handling authority: when a Covirt hypervisor
terminates an enclave, the MCP reclaims the enclave's resources and
notifies every component that had dependencies on it (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.hobbes.channels import CommandChannel
from repro.hobbes.client import HobbesClient
from repro.hobbes.forwarding import SyscallForwarder
from repro.hobbes.registry import VectorAllocator
from repro.hw.machine import Machine
from repro.kitten.syscalls import SyscallError
from repro.linuxhost.host import LinuxHost
from repro.perf.costs import CostModel, DEFAULT_COSTS
from repro.pisces.enclave import Enclave, EnclaveState, FaultRecord
from repro.pisces.kmod import PiscesKmod
from repro.pisces.resources import ResourceSpec
from repro.xemem.api import XememService
from repro.xemem.segment import HOST_ENCLAVE_ID


@dataclass
class DependentNotification:
    """Record of a dependency-failure notification sent by the MCP."""

    enclave_id: int  # the notified party (HOST_ENCLAVE_ID for the host)
    about_enclave_id: int  # the failed party
    what: str


class MasterControlProcess:
    """The Hobbes MCP."""

    def __init__(
        self,
        machine: Machine,
        host: LinuxHost,
        costs: CostModel = DEFAULT_COSTS,
    ) -> None:
        self.machine = machine
        self.host = host
        self.kmod = PiscesKmod(machine, host)
        self.vectors = VectorAllocator()
        self.xemem = XememService(machine, self._resolve_enclave, costs=costs)
        self.forwarder = SyscallForwarder()
        self.channels: dict[int, CommandChannel] = {}
        self.notifications: list[DependentNotification] = []
        #: Fired (enclave_id, FaultRecord) after :meth:`enclave_failed`
        #: has severed dependencies and reclaimed resources.  The
        #: recovery supervisor subscribes here (in addition to the
        #: Covirt controller's fault hook) so terminations that never
        #: passed through a hypervisor are still supervised.
        self.on_enclave_failed: list[Any] = []
        #: Slot the Covirt controller occupies once activated.
        self.covirt_controller: Any = None

    def _resolve_enclave(self, enclave_id: int) -> Enclave | None:
        return self.kmod.enclaves.get(enclave_id)

    def _host_core(self) -> int:
        return min(self.host.online_cores)

    # -- lifecycle -----------------------------------------------------

    def launch_enclave(self, spec: ResourceSpec) -> Enclave:
        """create → boot → wire the runtime (channel + client)."""
        enclave = self.kmod.create_enclave(spec)
        self.kmod.boot_enclave(enclave.enclave_id)
        self._wire_runtime(enclave)
        return enclave

    def _wire_runtime(self, enclave: Enclave) -> None:
        host_core = self._host_core()
        enclave_bsp = enclave.assignment.core_ids[0]
        to_enclave = self.vectors.allocate(
            dest_core=enclave_bsp,
            dest_enclave_id=enclave.enclave_id,
            allowed_senders={HOST_ENCLAVE_ID},
            purpose=f"channel doorbell → enclave {enclave.enclave_id}",
        )
        to_host = self.vectors.allocate(
            dest_core=host_core,
            dest_enclave_id=HOST_ENCLAVE_ID,
            allowed_senders={enclave.enclave_id},
            purpose=f"channel doorbell → host from enclave {enclave.enclave_id}",
        )
        channel = CommandChannel(
            self.machine, enclave, host_core, to_enclave, to_host
        )
        self.channels[enclave.enclave_id] = channel
        assert enclave.kernel is not None
        enclave.kernel.hobbes_client = HobbesClient(self, enclave, channel)

    def shutdown_enclave(self, enclave_id: int) -> None:
        """Orderly teardown of a running enclave."""
        self._release_dependencies(enclave_id, notify=False)
        self.kmod.destroy_enclave(enclave_id)

    # -- syscall forwarding ---------------------------------------------

    def service_forwarding(self, channel: CommandChannel) -> Any:
        """Drain one forwarded syscall from a channel and execute it."""
        msg = channel.host_recv()
        if msg is None:
            raise SyscallError(5, "forwarding: empty channel")  # EIO
        _tid, syscall, args = msg.payload
        return self.forwarder.execute(syscall, args)

    # -- fault handling ------------------------------------------------

    def enclave_failed(self, enclave_id: int, fault: FaultRecord) -> list[
        DependentNotification
    ]:
        """A Covirt hypervisor terminated an enclave.

        The MCP (1) ensures the enclave is parked, (2) severs every
        dependency other components had on it — channels, XEMEM
        segments, vector grants — notifying the dependents, and
        (3) reclaims the hardware resources back to the host.
        Returns the notifications sent.
        """
        enclave = self.kmod.enclave(enclave_id)
        if enclave.state is not EnclaveState.FAILED:
            self.kmod.terminate_enclave(enclave_id, fault)
        before = len(self.notifications)
        self._release_dependencies(enclave_id, notify=True)
        self.kmod.reclaim_enclave(enclave_id)
        sent = self.notifications[before:]
        for hook in list(self.on_enclave_failed):
            hook(enclave_id, fault)
        return sent

    def relaunch_enclave(self, spec: ResourceSpec) -> Enclave:
        """Launch a successor enclave for a failed service.

        Identical to :meth:`launch_enclave` today — the point of the
        separate entry is that relaunches go through the *same* create →
        boot → wire path as first launches (so Covirt interposition,
        channel doorbells, and registry wiring are all re-established),
        which is what makes a recovered enclave indistinguishable from a
        fresh one.
        """
        return self.launch_enclave(spec)

    def notify_recovered(
        self, enclave_id: int, about_enclave_id: int, what: str
    ) -> DependentNotification:
        """Tell a dependent that a service it was told had died is back
        (the counterpart of the failure notifications above)."""
        note = DependentNotification(enclave_id, about_enclave_id, what)
        self.notifications.append(note)
        return note

    def dependents_notified_about(self, enclave_id: int) -> list[int]:
        """Who was told ``enclave_id`` failed (for re-notification)."""
        seen: list[int] = []
        for note in self.notifications:
            if note.about_enclave_id == enclave_id and note.enclave_id not in seen:
                seen.append(note.enclave_id)
        return seen

    def _release_dependencies(self, enclave_id: int, *, notify: bool) -> None:
        # 1. Channels.
        channel = self.channels.pop(enclave_id, None)
        if channel is not None:
            channel.close()
            if notify:
                self.notifications.append(
                    DependentNotification(
                        HOST_ENCLAVE_ID, enclave_id, "channel closed"
                    )
                )
        # 2. Segments the dead enclave had attached: detach bookkeeping.
        for segment in self.xemem.names.segments_attached_by(enclave_id):
            segment.detach_for(enclave_id)
        # 3. Segments the dead enclave owned: every attacher must drop
        #    them (proper detach path, so memmaps and EPTs stay in sync).
        for segment in self.xemem.names.segments_owned_by(enclave_id):
            for attacher_id in list(segment.attachments):
                self.xemem.detach(attacher_id, segment.segid)
                if notify:
                    self.notifications.append(
                        DependentNotification(
                            attacher_id,
                            enclave_id,
                            f"segment {segment.name!r} revoked",
                        )
                    )
            self.xemem.names.unregister(segment.segid)
        # 4. Vector grants naming the enclave.
        for grant in self.vectors.grants_involving(enclave_id):
            self.vectors.revoke(grant)
            if notify and grant.dest_enclave_id != enclave_id:
                self.notifications.append(
                    DependentNotification(
                        grant.dest_enclave_id,
                        enclave_id,
                        f"vector {grant.vector}@core{grant.dest_core} revoked",
                    )
                )
