"""The global IPI-vector namespace.

In Hobbes, per-core IPI vectors are a *globally allocatable application
resource* (Section IV-C): any component may be granted the right to
signal a specific core on a specific vector, across OS/R boundaries.
The allocator is the system-wide source of truth that Covirt's IPI
whitelists are derived from, via the grant/revoke hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.hw.interrupts import FIRST_ALLOCATABLE_VECTOR

#: Vectors below this are reserved for fixed platform uses (timer,
#: spurious, Covirt's PIV notification vector, ...).
FIRST_DYNAMIC_VECTOR = 48
LAST_DYNAMIC_VECTOR = 239


class RegistryError(Exception):
    pass


@dataclass(frozen=True)
class VectorGrant:
    """The right, held by ``allowed_senders``, to IPI ``dest_core`` on
    ``vector``."""

    vector: int
    dest_core: int
    dest_enclave_id: int
    allowed_senders: frozenset[int]
    purpose: str = ""


class VectorAllocator:
    """Allocates (vector, dest core) signalling rights."""

    def __init__(self) -> None:
        #: (dest_core, vector) → grant
        self._grants: dict[tuple[int, int], VectorGrant] = {}
        self.on_grant: list[Callable[[VectorGrant], None]] = []
        self.on_revoke: list[Callable[[VectorGrant], None]] = []

    def allocate(
        self,
        dest_core: int,
        dest_enclave_id: int,
        allowed_senders: set[int],
        purpose: str = "",
        vector: int | None = None,
    ) -> VectorGrant:
        """Grant a vector on ``dest_core``; picks a free one unless pinned."""
        if vector is None:
            vector = self._find_free(dest_core)
        elif not FIRST_DYNAMIC_VECTOR <= vector <= LAST_DYNAMIC_VECTOR:
            raise RegistryError(f"vector {vector} outside dynamic range")
        if (dest_core, vector) in self._grants:
            raise RegistryError(
                f"vector {vector} on core {dest_core} already granted"
            )
        grant = VectorGrant(
            vector, dest_core, dest_enclave_id, frozenset(allowed_senders), purpose
        )
        self._grants[(dest_core, vector)] = grant
        for hook in self.on_grant:
            hook(grant)
        return grant

    def _find_free(self, dest_core: int) -> int:
        for vector in range(FIRST_DYNAMIC_VECTOR, LAST_DYNAMIC_VECTOR + 1):
            if (dest_core, vector) not in self._grants:
                return vector
        raise RegistryError(f"vector space exhausted on core {dest_core}")

    def revoke(self, grant: VectorGrant) -> None:
        if self._grants.pop((grant.dest_core, grant.vector), None) is None:
            raise RegistryError(
                f"grant {grant.vector}@core{grant.dest_core} not active"
            )
        for hook in self.on_revoke:
            hook(grant)

    def grant_for(self, dest_core: int, vector: int) -> VectorGrant | None:
        return self._grants.get((dest_core, vector))

    def may_send(self, sender_enclave_id: int, dest_core: int, vector: int) -> bool:
        """Ground truth the IPI whitelists mirror."""
        grant = self._grants.get((dest_core, vector))
        return grant is not None and sender_enclave_id in grant.allowed_senders

    def grants_involving(self, enclave_id: int) -> list[VectorGrant]:
        """Grants that name ``enclave_id`` as destination or sender."""
        return [
            g
            for g in self._grants.values()
            if g.dest_enclave_id == enclave_id or enclave_id in g.allowed_senders
        ]

    def active_grants(self) -> list[VectorGrant]:
        return list(self._grants.values())
