"""System-call forwarding: the host-side proxy.

Heavyweight syscalls issued by LWK tasks are shipped over the command
channel to a proxy on the host, executed against the host OS, and the
result shipped back.  The host "Linux" behind the proxy is a small
in-memory filesystem + descriptor table — enough to exercise the
delegation path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.kitten.syscalls import EINVAL, Syscall, SyscallError


class FakeLinuxFs:
    """The host filesystem delegated syscalls operate on."""

    def __init__(self) -> None:
        self.files: dict[str, bytes] = {
            "/etc/hostname": b"hobbes-node-0\n",
            "/proc/version": b"Linux version 5.x (repro host)\n",
        }
        self._fds: dict[int, tuple[str, int]] = {}  # fd -> (path, offset)
        self._next_fd = 3

    def open(self, path: str) -> int:
        if path not in self.files:
            raise SyscallError(2, f"ENOENT: {path}")  # ENOENT
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = (path, 0)
        return fd

    def read(self, fd: int, count: int) -> bytes:
        if fd not in self._fds:
            raise SyscallError(9, f"EBADF: {fd}")  # EBADF
        path, offset = self._fds[fd]
        data = self.files[path][offset : offset + count]
        self._fds[fd] = (path, offset + len(data))
        return data

    def close(self, fd: int) -> None:
        if self._fds.pop(fd, None) is None:
            raise SyscallError(9, f"EBADF: {fd}")

    def stat(self, path: str) -> dict[str, int]:
        if path not in self.files:
            raise SyscallError(2, f"ENOENT: {path}")
        return {"size": len(self.files[path])}

    @property
    def open_fds(self) -> int:
        return len(self._fds)


@dataclass
class ForwardingStats:
    round_trips: int = 0
    by_syscall: dict[str, int] = field(default_factory=dict)


class SyscallForwarder:
    """The host-side proxy process."""

    def __init__(self, fs: FakeLinuxFs | None = None) -> None:
        self.fs = fs or FakeLinuxFs()
        self.stats = ForwardingStats()

    def execute(self, syscall: Syscall, args: tuple[Any, ...]) -> Any:
        """Run one delegated syscall on the host."""
        self.stats.round_trips += 1
        self.stats.by_syscall[syscall.name] = (
            self.stats.by_syscall.get(syscall.name, 0) + 1
        )
        if syscall is Syscall.OPEN:
            return self.fs.open(args[0])
        if syscall is Syscall.READ:
            return self.fs.read(args[0], args[1])
        if syscall is Syscall.CLOSE:
            self.fs.close(args[0])
            return 0
        if syscall is Syscall.STAT:
            return self.fs.stat(args[0])
        if syscall is Syscall.SOCKET:
            raise SyscallError(EINVAL, "sockets not modelled on this host")
        raise SyscallError(EINVAL, f"{syscall.name} is not a delegated syscall")
