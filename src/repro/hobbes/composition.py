"""Declarative application composition across enclaves.

Hobbes' design goal is *application composition*: "a consistent
high-level API for composing applications that can automatically adapt
to arbitrary enclave topologies" (Section I).  This module is that API
for the reproduction: describe components and the data couplings
between them; ``deploy`` materialises enclaves, XEMEM segments, and
doorbell vectors — and when the requested topology doesn't fit the
machine, components are transparently co-located in shared enclaves,
with couplings working identically either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.features import CovirtConfig
from repro.hw.memory import OwnershipError, page_align_up
from repro.kitten.syscalls import Syscall
from repro.pisces.enclave import Enclave, EnclaveState
from repro.pisces.kmod import PiscesError
from repro.pisces.resources import ResourceSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import CovirtController
    from repro.kitten.task import Task

MiB = 1 << 20


class CompositionError(Exception):
    pass


@dataclass(frozen=True)
class ComponentSpec:
    """One process of the composed application."""

    name: str
    cores_per_zone: dict[int, int]
    mem_per_zone: dict[int, int]
    task_mem_bytes: int = 4 * MiB
    kernel_type: str = "kitten"
    #: None = native; otherwise the Covirt protection for its enclave.
    protection: CovirtConfig | None = None

    def resource_spec(self) -> ResourceSpec:
        return ResourceSpec(
            cores_per_zone=dict(self.cores_per_zone),
            mem_per_zone={
                z: page_align_up(m) for z, m in self.mem_per_zone.items()
            },
            name=self.name,
            kernel_type=self.kernel_type,
        )


@dataclass(frozen=True)
class CouplingSpec:
    """A one-way data path between two components."""

    name: str
    producer: str
    consumer: str
    buffer_bytes: int = MiB
    doorbell: bool = True


@dataclass
class DeployedCoupling:
    """A materialised coupling."""

    spec: CouplingSpec
    segid: int
    buffer_addr: int
    doorbell_vector: int | None
    #: True when producer and consumer ended up in the same enclave
    #: (intra-enclave coupling needs no cross-OS/R machinery).
    colocated: bool
    messages: int = 0


@dataclass
class _Placement:
    enclave: Enclave
    task: "Task"


class Composition:
    """A composed application description."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.components: dict[str, ComponentSpec] = {}
        self.couplings: list[CouplingSpec] = []

    def add_component(self, spec: ComponentSpec) -> "Composition":
        if spec.name in self.components:
            raise CompositionError(f"duplicate component {spec.name!r}")
        self.components[spec.name] = spec
        return self

    def couple(
        self,
        producer: str,
        consumer: str,
        *,
        name: str | None = None,
        buffer_bytes: int = MiB,
        doorbell: bool = True,
    ) -> "Composition":
        for endpoint in (producer, consumer):
            if endpoint not in self.components:
                raise CompositionError(f"unknown component {endpoint!r}")
        self.couplings.append(
            CouplingSpec(
                name or f"{producer}->{consumer}",
                producer,
                consumer,
                buffer_bytes,
                doorbell,
            )
        )
        return self

    def deploy(self, controller: "CovirtController") -> "DeployedComposition":
        """Materialise the application on the machine.

        Components get dedicated enclaves when resources allow; when an
        enclave cannot be carved, the component is co-located into an
        already-deployed enclave with a compatible kernel and
        protection configuration — the topology adapts, the application
        does not.
        """
        deployed = DeployedComposition(self, controller)
        try:
            for spec in self.components.values():
                deployed._place(spec)
            for coupling in self.couplings:
                deployed._wire(coupling)
        except Exception:
            deployed.teardown()
            raise
        return deployed


class DeployedComposition:
    """A running composed application."""

    def __init__(self, composition: Composition, controller: "CovirtController") -> None:
        self.composition = composition
        self.controller = controller
        self.mcp = controller.mcp
        self.placements: dict[str, _Placement] = {}
        self.couplings: dict[str, DeployedCoupling] = {}
        self._owned_enclaves: list[int] = []

    # -- placement -------------------------------------------------------

    def _place(self, spec: ComponentSpec) -> None:
        try:
            enclave = self.controller.launch(spec.resource_spec(), spec.protection)
            self._owned_enclaves.append(enclave.enclave_id)
        except (PiscesError, OwnershipError) as exc:
            enclave = self._find_colocation_host(spec)
            if enclave is None:
                raise CompositionError(
                    f"cannot place component {spec.name!r}: {exc}"
                ) from exc
        assert enclave.kernel is not None
        task = enclave.kernel.spawn(spec.name, mem_bytes=spec.task_mem_bytes)
        self.placements[spec.name] = _Placement(enclave, task)

    def _find_colocation_host(self, spec: ComponentSpec) -> Enclave | None:
        """An already-placed enclave this component may share."""
        for placement in self.placements.values():
            enclave = placement.enclave
            if enclave.state is not EnclaveState.RUNNING:
                continue
            if enclave.spec.kernel_type != spec.kernel_type:
                continue
            ctx = self.controller.context_for(enclave.enclave_id)
            have = ctx.config if ctx else None
            if have != spec.protection:
                continue
            return enclave
        return None

    def enclave_of(self, component: str) -> Enclave:
        return self.placements[component].enclave

    def task_of(self, component: str) -> "Task":
        return self.placements[component].task

    def colocated(self, a: str, b: str) -> bool:
        return (
            self.enclave_of(a).enclave_id == self.enclave_of(b).enclave_id
        )

    # -- wiring ------------------------------------------------------------

    def _wire(self, spec: CouplingSpec) -> None:
        producer = self.placements[spec.producer]
        consumer = self.placements[spec.consumer]
        kernel = producer.enclave.kernel
        assert kernel is not None
        buffer_bytes = page_align_up(spec.buffer_bytes)
        if producer.task.memory_bytes < buffer_bytes:
            raise CompositionError(
                f"coupling {spec.name!r}: producer task has "
                f"{producer.task.memory_bytes} bytes, needs {buffer_bytes}"
            )
        buffer_addr = producer.task.slices[0].start
        segid = kernel.syscall(
            producer.task,
            Syscall.XEMEM_MAKE,
            f"{self.composition.name}/{spec.name}",
            buffer_addr,
            buffer_bytes,
        )
        colocated = self.colocated(spec.producer, spec.consumer)
        if not colocated:
            ckernel = consumer.enclave.kernel
            assert ckernel is not None
            ckernel.syscall(consumer.task, Syscall.XEMEM_ATTACH, segid)
        vector: int | None = None
        if spec.doorbell and not colocated:
            dest_core = consumer.enclave.assignment.core_ids[0]
            grant = self.mcp.vectors.allocate(
                dest_core=dest_core,
                dest_enclave_id=consumer.enclave.enclave_id,
                allowed_senders={producer.enclave.enclave_id},
                purpose=f"coupling {spec.name}",
            )
            vector = grant.vector
        self.couplings[spec.name] = DeployedCoupling(
            spec=spec,
            segid=segid,
            buffer_addr=buffer_addr,
            doorbell_vector=vector,
            colocated=colocated,
        )

    # -- data flow ---------------------------------------------------------

    def send(self, coupling_name: str, payload: bytes) -> None:
        """Producer writes into the shared buffer and rings the doorbell."""
        coupling = self.couplings[coupling_name]
        if len(payload) > page_align_up(coupling.spec.buffer_bytes):
            raise CompositionError(f"payload exceeds {coupling.spec.name} buffer")
        producer = self.placements[coupling.spec.producer]
        consumer = self.placements[coupling.spec.consumer]
        pcore = producer.enclave.assignment.core_ids[0]
        assert producer.enclave.port is not None
        producer.enclave.port.write(pcore, coupling.buffer_addr, payload)
        if coupling.doorbell_vector is not None:
            producer.enclave.port.send_ipi(
                pcore,
                consumer.enclave.assignment.core_ids[0],
                coupling.doorbell_vector,
            )
        coupling.messages += 1

    def receive(self, coupling_name: str, length: int) -> bytes:
        """Consumer reads the shared buffer through its own port."""
        coupling = self.couplings[coupling_name]
        consumer = self.placements[coupling.spec.consumer]
        ccore = consumer.enclave.assignment.core_ids[0]
        assert consumer.enclave.port is not None
        return consumer.enclave.port.read(ccore, coupling.buffer_addr, length)

    # -- lifecycle -----------------------------------------------------

    def component_states(self) -> dict[str, str]:
        return {
            name: placement.enclave.state.value
            for name, placement in self.placements.items()
        }

    def teardown(self) -> None:
        """Orderly shutdown of every enclave this deployment created."""
        for enclave_id in reversed(self._owned_enclaves):
            enclave = self.mcp.kmod.enclaves.get(enclave_id)
            if enclave is None:
                continue
            if enclave.state is EnclaveState.RUNNING:
                self.mcp.shutdown_enclave(enclave_id)
            elif enclave.state is EnclaveState.FAILED:
                pass  # already reclaimed by the fault path
        self._owned_enclaves.clear()
        self.placements.clear()
        self.couplings.clear()
