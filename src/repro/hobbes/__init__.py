"""The Hobbes OS/R runtime (simulated).

Hobbes composes applications across enclaves: a master control process
on the host coordinates enclave lifecycle, a global IPI-vector namespace
provides cross-enclave signalling, shared-memory command channels carry
control traffic, and a system-call forwarding service lets LWK processes
offload heavyweight operations to Linux.
"""

from repro.hobbes.registry import VectorAllocator, VectorGrant, RegistryError
from repro.hobbes.channels import CommandChannel, ChannelClosed
from repro.hobbes.forwarding import SyscallForwarder, FakeLinuxFs
from repro.hobbes.client import HobbesClient
from repro.hobbes.master import MasterControlProcess, DependentNotification
from repro.hobbes.composition import (
    ComponentSpec,
    Composition,
    CompositionError,
    CouplingSpec,
    DeployedComposition,
)

__all__ = [
    "VectorAllocator",
    "VectorGrant",
    "RegistryError",
    "CommandChannel",
    "ChannelClosed",
    "SyscallForwarder",
    "FakeLinuxFs",
    "HobbesClient",
    "MasterControlProcess",
    "DependentNotification",
    "ComponentSpec",
    "Composition",
    "CompositionError",
    "CouplingSpec",
    "DeployedComposition",
]
