"""The enclave-side Hobbes runtime client.

One :class:`HobbesClient` is attached to each enclave's Kitten kernel
at launch.  It is the glue the kernel calls into for everything that
crosses the OS/R boundary: delegated syscalls, XEMEM control calls, and
attachment bookkeeping for user-access checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.kitten.syscalls import Syscall, SyscallError, EINVAL
from repro.kitten.task import Task
from repro.xemem.segment import SegmentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hobbes.channels import CommandChannel
    from repro.hobbes.master import MasterControlProcess
    from repro.pisces.enclave import Enclave


class HobbesClient:
    """Per-enclave runtime stub."""

    def __init__(
        self,
        mcp: "MasterControlProcess",
        enclave: "Enclave",
        channel: "CommandChannel",
    ) -> None:
        self.mcp = mcp
        self.enclave = enclave
        self.channel = channel
        self.forwarded = 0

    def _charge_rtt(self) -> None:
        core = self.machine_core()
        core.advance(self.mcp.xemem.costs.channel_rtt)

    def machine_core(self):
        return self.mcp.machine.core(self.enclave.assignment.core_ids[0])

    # -- syscall forwarding ---------------------------------------------

    def forward_syscall(self, task: Task, syscall: Syscall, args: tuple) -> Any:
        """Ship a delegated syscall to the host proxy over the channel."""
        self.channel.enclave_send("syscall", (task.tid, syscall, args))
        self._charge_rtt()
        # The proxy runs on the host; the MCP services the queue inline.
        result = self.mcp.service_forwarding(self.channel)
        self.forwarded += 1
        return result

    # -- XEMEM ---------------------------------------------------------

    def xemem_syscall(self, task: Task, syscall: Syscall, args: tuple) -> Any:
        eid = self.enclave.enclave_id
        core = self.enclave.assignment.core_ids[0]
        if syscall is Syscall.XEMEM_MAKE:
            name, start, size = args
            if not task.owns_addr(start, size):
                raise SyscallError(EINVAL, "xemem_make: range not owned by task")
            segment = self.mcp.xemem.make(eid, name, start, size, core_hint=core)
            return segment.segid
        if syscall is Syscall.XEMEM_GET:
            (name,) = args
            return self.mcp.xemem.get(name, core_hint=core)
        if syscall is Syscall.XEMEM_ATTACH:
            (segid,) = args
            attachment = self.mcp.xemem.attach(eid, segid, core_hint=core)
            task.attachments[segid] = attachment.local_addr
            return attachment.local_addr
        if syscall is Syscall.XEMEM_DETACH:
            (segid,) = args
            self.mcp.xemem.detach(eid, segid, core_hint=core)
            task.attachments.pop(segid, None)
            return 0
        raise SyscallError(EINVAL, f"{syscall.name} is not an XEMEM call")

    def attachment_covers(self, task: Task, addr: int, length: int) -> bool:
        """Does one of the task's attachments cover [addr, +length)?"""
        for segid in task.attachments:
            try:
                segment = self.mcp.xemem.names.by_segid(segid)
            except SegmentError:
                continue
            if segment.start <= addr and addr + length <= segment.end:
                return True
        return False
