"""Cross-enclave command channels.

A command channel is a shared-memory ring pair between the host (master
control process) and an enclave, with IPI doorbells in both directions.
It carries control traffic: syscall forwarding, XEMEM control calls,
and MCP coordination.  The doorbell vectors come from the global vector
allocator — which makes channel signalling subject to Covirt's IPI
whitelists like any other cross-enclave IPI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.hw.apic import DeliveryMode
from repro.obs import metric_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.hobbes.registry import VectorGrant
    from repro.hw.machine import Machine
    from repro.pisces.enclave import Enclave


class ChannelClosed(Exception):
    """The peer is gone (enclave terminated, channel torn down)."""


@dataclass
class ChannelMessage:
    seq: int
    kind: str
    payload: Any


class CommandChannel:
    """Host ↔ enclave control channel."""

    def __init__(
        self,
        machine: "Machine",
        enclave: "Enclave",
        host_core: int,
        to_enclave_grant: "VectorGrant",
        to_host_grant: "VectorGrant",
    ) -> None:
        self.machine = machine
        self.enclave = enclave
        self.host_core = host_core
        self.to_enclave_grant = to_enclave_grant
        self.to_host_grant = to_host_grant
        self._to_enclave: deque[ChannelMessage] = deque()
        self._to_host: deque[ChannelMessage] = deque()
        self._seq = 0
        self.open = True
        self.doorbells_sent = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _require_open(self) -> None:
        if not self.open:
            raise ChannelClosed(
                f"channel to enclave {self.enclave.enclave_id} is closed"
            )

    def _note_msg(self, direction: str, kind: str) -> None:
        """Count one channel message (passive — never advances time)."""
        self.machine.obs.metrics.counter(
            metric_names.HOBBES_MSGS, "Hobbes command-channel messages"
        ).inc(
            direction=direction,
            kind=kind,
            enclave=self.enclave.enclave_id,
        )

    # -- host side -------------------------------------------------------

    def host_send(self, kind: str, payload: Any) -> None:
        """MCP → enclave, with an IPI doorbell into the enclave."""
        self._require_open()
        with self.machine.obs.tracer.span(
            "hobbes.cmd",
            category="hobbes",
            track="hobbes",
            direction="to_enclave",
            kind=kind,
            enclave=self.enclave.enclave_id,
        ):
            self._to_enclave.append(
                ChannelMessage(self._next_seq(), kind, payload)
            )
            # The doorbell is a real IPI from a host core: it traverses the
            # fabric and, on a Covirt enclave, the virtualization layer.
            apic = self.machine.core(self.host_core).apic
            assert apic is not None
            apic.write_icr(
                self.to_enclave_grant.dest_core,
                self.to_enclave_grant.vector,
                DeliveryMode.FIXED,
            )
            self.doorbells_sent += 1
            self._note_msg("to_enclave", kind)

    def host_recv(self) -> ChannelMessage | None:
        return self._to_host.popleft() if self._to_host else None

    # -- enclave side ----------------------------------------------------

    def enclave_send(self, kind: str, payload: Any) -> None:
        """Enclave → MCP; the doorbell goes through the enclave's port so
        Covirt's IPI filtering applies to it."""
        self._require_open()
        with self.machine.obs.tracer.span(
            "hobbes.cmd",
            category="hobbes",
            track="hobbes",
            direction="to_host",
            kind=kind,
            enclave=self.enclave.enclave_id,
        ):
            self._to_host.append(
                ChannelMessage(self._next_seq(), kind, payload)
            )
            assert self.enclave.port is not None
            src_core = self.enclave.assignment.core_ids[0]
            self.enclave.port.send_ipi(
                src_core, self.to_host_grant.dest_core, self.to_host_grant.vector
            )
            self.doorbells_sent += 1
            self._note_msg("to_host", kind)

    def enclave_recv(self) -> ChannelMessage | None:
        return self._to_enclave.popleft() if self._to_enclave else None

    def close(self) -> None:
        self.open = False
        self._to_enclave.clear()
        self._to_host.clear()

    @property
    def pending_to_host(self) -> int:
        return len(self._to_host)

    @property
    def pending_to_enclave(self) -> int:
        return len(self._to_enclave)
