"""TCASM-style asynchronous shared-memory data exchange.

The Hobbes papers route application data through higher-level I/O
libraries — ADIOS and TCASM — layered on XEMEM, so that composed
applications exchange *versioned snapshots* rather than raw bytes:
the producer publishes a new version when a computation step completes;
consumers always read a complete, consistent version (never a torn
write), asynchronously and without blocking the producer.

This module reproduces that abstraction.  A :class:`VersionedStream`
owns an XEMEM segment laid out as a version header plus two buffer
slots (double buffering): publish fills the inactive slot, then flips
the header atomically.  Everything travels through the enclaves' access
ports, so Covirt's protections apply to this traffic like any other.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hw.memory import page_align_up
from repro.kitten.syscalls import Syscall

if TYPE_CHECKING:  # pragma: no cover
    from repro.hobbes.master import MasterControlProcess
    from repro.pisces.enclave import Enclave
    from repro.kitten.task import Task

#: Header: magic, version, active slot, slot size, payload length, crc32.
_HEADER = struct.Struct("<IQIIIi")
HEADER_BYTES = 64
STREAM_MAGIC = 0x7CA5_0001


class StreamError(Exception):
    pass


@dataclass
class StreamStats:
    publishes: int = 0
    reads: int = 0
    torn_reads_prevented: int = 0


class VersionedStream:
    """A producer-side versioned publication buffer."""

    def __init__(
        self,
        mcp: "MasterControlProcess",
        producer: "Enclave",
        producer_task: "Task",
        name: str,
        slot_bytes: int,
    ) -> None:
        self.mcp = mcp
        self.producer = producer
        self.slot_bytes = page_align_up(slot_bytes)
        total = page_align_up(HEADER_BYTES + 2 * self.slot_bytes)
        if producer_task.memory_bytes < total:
            raise StreamError(
                f"producer task needs {total} bytes for stream {name!r}"
            )
        self.base = producer_task.slices[0].start
        kernel = producer.kernel
        assert kernel is not None
        self.segid = kernel.syscall(
            producer_task, Syscall.XEMEM_MAKE, f"tcasm/{name}", self.base, total
        )
        self.name = name
        self.version = 0
        self.stats = StreamStats()
        self._write_header(active_slot=0, length=0, crc=0)

    # -- producer side ---------------------------------------------------

    def _pcore(self) -> int:
        return self.producer.assignment.core_ids[0]

    def _write_header(self, active_slot: int, length: int, crc: int) -> None:
        assert self.producer.port is not None
        header = _HEADER.pack(
            STREAM_MAGIC, self.version, active_slot, self.slot_bytes, length, crc
        ).ljust(HEADER_BYTES, b"\x00")
        self.producer.port.write(self._pcore(), self.base, header)

    def _slot_addr(self, slot: int) -> int:
        return self.base + HEADER_BYTES + slot * self.slot_bytes

    def publish(self, payload: bytes) -> int:
        """Write a new version into the inactive slot, then flip.

        Readers concurrently consuming the active slot are unaffected;
        the flip is the last write, so a reader either sees the old
        complete version or the new complete version.
        """
        if len(payload) > self.slot_bytes:
            raise StreamError(
                f"payload {len(payload)} exceeds slot {self.slot_bytes}"
            )
        assert self.producer.port is not None
        next_slot = (self.version + 1) % 2
        self.producer.port.write(
            self._pcore(), self._slot_addr(next_slot), payload
        )
        self.version += 1
        self._write_header(
            active_slot=next_slot,
            length=len(payload),
            crc=zlib.crc32(payload) & 0x7FFF_FFFF,
        )
        self.stats.publishes += 1
        return self.version


class StreamReader:
    """A consumer-side attachment to a versioned stream."""

    def __init__(
        self,
        mcp: "MasterControlProcess",
        consumer: "Enclave",
        consumer_task: "Task",
        name: str,
    ) -> None:
        self.mcp = mcp
        self.consumer = consumer
        kernel = consumer.kernel
        assert kernel is not None
        self.segid = kernel.syscall(consumer_task, Syscall.XEMEM_GET, f"tcasm/{name}")
        self.base = kernel.syscall(
            consumer_task, Syscall.XEMEM_ATTACH, self.segid
        )
        self.task = consumer_task
        self.last_version_seen = 0
        self.stats = StreamStats()

    def _ccore(self) -> int:
        return self.consumer.assignment.core_ids[0]

    def _read(self, addr: int, length: int) -> bytes:
        assert self.consumer.port is not None
        return self.consumer.port.read(self._ccore(), addr, length)

    def read_latest(self) -> tuple[int, bytes] | None:
        """Fetch the newest complete version (None until first publish).

        Re-reads the header after the payload: if the producer flipped
        mid-read, retry — the classic seqlock discipline that makes the
        exchange asynchronous yet consistent.
        """
        for _ in range(4):  # bounded retries; one flip per read max
            header = self._read(self.base, _HEADER.size)
            magic, version, slot, slot_bytes, length, crc = _HEADER.unpack(header)
            if magic != STREAM_MAGIC:
                raise StreamError("stream header corrupt")
            if version == 0:
                return None
            payload = self._read(
                self.base + HEADER_BYTES + slot * slot_bytes, length
            )
            header2 = self._read(self.base, _HEADER.size)
            if header2 == header:
                if zlib.crc32(payload) & 0x7FFF_FFFF != crc:
                    raise StreamError("stream payload corrupt")
                self.last_version_seen = version
                self.stats.reads += 1
                return version, payload
            self.stats.torn_reads_prevented += 1
        raise StreamError("publisher outpaced reader repeatedly")

    def has_new_version(self) -> bool:
        header = self._read(self.base, _HEADER.size)
        _, version, *_ = _HEADER.unpack(header)
        return version > self.last_version_seen

    def detach(self) -> None:
        kernel = self.consumer.kernel
        assert kernel is not None
        kernel.syscall(self.task, Syscall.XEMEM_DETACH, self.segid)
