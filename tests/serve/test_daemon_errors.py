"""Protocol error paths against a live daemon (satellite coverage):
malformed JSON, unknown methods, over-quota launches, oversized
payloads, and client disconnects mid-request — each must produce a
typed error (or a clean drop) and leave the registry consistent."""

from __future__ import annotations

import time

import pytest

from repro.serve.protocol import (
    E_BUSY,
    E_INVALID_PARAMS,
    E_INVALID_REQUEST,
    E_NO_SUCH_SESSION,
    E_PARSE,
    E_PAYLOAD_TOO_LARGE,
    E_QUOTA,
    E_UNKNOWN_METHOD,
    MAX_LINE_BYTES,
    ServeError,
    encode_request,
)


def _expect(client, method, params, code):
    with pytest.raises(ServeError) as exc:
        client.request(method, params)
    assert exc.value.code == code
    return exc.value


class TestMalformedInput:
    def test_malformed_json_gets_parse_error_with_null_id(self, client):
        response = client.send_raw(b"{this is not json}\n")
        assert response["ok"] is False
        assert response["id"] is None
        assert response["error"]["code"] == E_PARSE

    def test_non_object_line_is_invalid_request(self, client):
        response = client.send_raw(b"[1, 2, 3]\n")
        assert response["error"]["code"] == E_INVALID_REQUEST

    def test_string_id_is_invalid_request(self, client):
        response = client.send_raw(
            b'{"id": "seven", "method": "ping", "params": {}}\n'
        )
        assert response["error"]["code"] == E_INVALID_REQUEST

    def test_connection_survives_garbage(self, client):
        client.send_raw(b"\x00\x01garbage\n")
        assert client.ping()["pong"] is True


class TestUnknownMethod:
    def test_unknown_method_lists_the_real_ones(self, client):
        err = _expect(client, "session.teleport", {}, E_UNKNOWN_METHOD)
        assert "session.launch" in err.message


class TestInvalidParams:
    def test_bad_scenario(self, client):
        _expect(client, "session.launch", {"scenario": "nope"},
                E_INVALID_PARAMS)

    def test_bool_is_not_an_integer(self, client):
        _expect(client, "session.launch", {"seed": True}, E_INVALID_PARAMS)

    def test_missing_session_id(self, client):
        _expect(client, "session.step", {"steps": 1}, E_INVALID_PARAMS)

    def test_unknown_session(self, client):
        _expect(client, "session.step", {"session_id": "s999", "steps": 1},
                E_NO_SUCH_SESSION)


class TestQuotas:
    def test_over_quota_launch_sheds_and_registry_stays_consistent(
        self, client, quota
    ):
        for _ in range(quota.max_sessions):
            client.launch(seed=1)
        _expect(client, "session.launch", {"scenario": "baseline", "seed": 1},
                E_QUOTA)
        stats = client.stats()
        assert stats["registry"]["sessions"] == quota.max_sessions
        assert stats["registry"]["launched"] == quota.max_sessions

    def test_global_cap_sheds_busy(self, make_client, daemon, quota):
        # Fill the daemon-wide cap (5) across three tenants, then shed.
        a, b, c = (make_client(t) for t in ("qa", "qb", "qc"))
        for cl, count in ((a, 2), (b, 2), (c, 1)):
            for _ in range(count):
                cl.launch(seed=1)
        _expect(c, "session.launch", {"scenario": "baseline", "seed": 1},
                E_BUSY)

    def test_step_budget_quota(self, client, quota):
        sid = client.launch(seed=1)["session_id"]
        _expect(client, "session.step",
                {"session_id": sid, "steps": quota.max_steps_per_request + 1},
                E_QUOTA)

    def test_run_budget_quota(self, client, quota):
        sid = client.launch(seed=1)["session_id"]
        _expect(client, "session.run",
                {"session_id": sid,
                 "cycles": quota.max_cycles_per_request + 1},
                E_QUOTA)

    def test_pipelined_runs_past_pending_quota_shed_busy(
        self, client, quota
    ):
        sid = client.launch(seed=1)["session_id"]
        budget = quota.max_cycles_per_request  # many slices each
        for rid in (101, 102, 103):
            client._sock.sendall(encode_request(
                rid, "session.run", {"session_id": sid, "cycles": budget}
            ))
        # The shed answer arrives first: errors reply immediately while
        # admitted runs only answer when their whole budget completes.
        import json

        first = json.loads(client._recv_line())
        assert first["id"] == 103
        assert first["error"]["code"] == E_BUSY
        remaining = sorted(
            (json.loads(client._recv_line()) for _ in range(2)),
            key=lambda r: r["id"],
        )
        assert [r["id"] for r in remaining] == [101, 102]
        assert all(r["ok"] for r in remaining)


class TestOversizedPayload:
    def test_oversized_line_typed_error_then_connection_usable(self, client):
        blob = b'{"id": 1, "method": "ping", "params": {"x": "' \
            + b"A" * (MAX_LINE_BYTES + 100) + b'"}}\n'
        response = client.send_raw(blob)
        assert response["ok"] is False
        assert response["error"]["code"] == E_PAYLOAD_TOO_LARGE
        # The oversized line was discarded through its newline: the same
        # connection keeps working.
        assert client.ping()["pong"] is True


class TestDisconnectMidRequest:
    def test_disconnect_mid_run_drops_job_and_keeps_registry_consistent(
        self, daemon, make_client, quota
    ):
        doomed = make_client("t-dc")
        sid = doomed.launch(seed=5)["session_id"]
        doomed._sock.sendall(encode_request(
            1, "session.run",
            {"session_id": sid, "cycles": quota.max_cycles_per_request},
        ))
        doomed.close()  # vanish without reading the reply
        deadline = time.monotonic() + 20
        survivor = make_client("t-dc")
        while time.monotonic() < deadline:
            stats = survivor.stats()
            if (stats["scheduler"]["cancelled_jobs"] >= 1
                    and stats["scheduler"]["pending_jobs"] == 0):
                break
            time.sleep(0.05)
        else:
            pytest.fail("job was never cancelled after disconnect")
        # The session is still registered, consistent, and drivable.
        assert stats["registry"]["sessions"] == 1
        doc = survivor.inspect(sid)
        assert doc["state"] == "running"
        survivor.step(sid, steps=1)
        survivor.kill(sid)
