"""Registry unit tests: quotas, admission, tenant scoping."""

from __future__ import annotations

import pytest

from repro.serve.protocol import (
    E_BUSY,
    E_NO_SUCH_SESSION,
    E_QUOTA,
    ServeError,
)
from repro.serve.registry import SessionRegistry, TenantQuota


@pytest.fixture
def registry() -> SessionRegistry:
    return SessionRegistry(
        quota=TenantQuota(max_sessions=2), max_total_sessions=3
    )


class TestAdmission:
    def test_launch_assigns_scoped_ids(self, registry):
        a = registry.launch("alice", "baseline", 1)
        b = registry.launch("bob", "baseline", 2)
        assert a.session_id != b.session_id
        assert registry.get("alice", a.session_id) is a
        assert registry.get("bob", b.session_id) is b

    def test_tenant_quota_sheds_with_typed_error(self, registry):
        registry.launch("alice", "baseline", 1)
        registry.launch("alice", "baseline", 2)
        with pytest.raises(ServeError) as exc:
            registry.launch("alice", "baseline", 3)
        assert exc.value.code == E_QUOTA
        # Another tenant is unaffected by alice's quota.
        registry.launch("bob", "baseline", 4)

    def test_global_cap_sheds_busy(self, registry):
        registry.launch("alice", "baseline", 1)
        registry.launch("alice", "baseline", 2)
        registry.launch("bob", "baseline", 3)
        with pytest.raises(ServeError) as exc:
            registry.launch("carol", "baseline", 4)
        assert exc.value.code == E_BUSY

    def test_kill_frees_quota(self, registry):
        a = registry.launch("alice", "baseline", 1)
        registry.launch("alice", "baseline", 2)
        registry.kill("alice", a.session_id)
        registry.launch("alice", "baseline", 3)  # admitted again
        assert len(registry) == 2
        assert registry.killed == 1


class TestTenantScoping:
    def test_foreign_session_id_is_indistinguishable_from_missing(
        self, registry
    ):
        a = registry.launch("alice", "baseline", 1)
        with pytest.raises(ServeError) as foreign:
            registry.get("bob", a.session_id)
        with pytest.raises(ServeError) as missing:
            registry.get("bob", "s999")
        assert foreign.value.code == E_NO_SUCH_SESSION
        assert missing.value.code == E_NO_SUCH_SESSION
        # Identical shape: nothing in the error reveals existence.
        assert type(foreign.value.to_error()) is type(missing.value.to_error())
        assert set(foreign.value.to_error()) == set(missing.value.to_error())

    def test_foreign_kill_rejected_and_session_survives(self, registry):
        a = registry.launch("alice", "baseline", 1)
        with pytest.raises(ServeError):
            registry.kill("bob", a.session_id)
        assert registry.get("alice", a.session_id) is a


class TestSummary:
    def test_summary_counts(self, registry):
        registry.launch("alice", "baseline", 1)
        b = registry.launch("bob", "baseline", 2)
        registry.kill("bob", b.session_id)
        summary = registry.summary()
        assert summary["sessions"] == 1
        assert summary["launched"] == 2
        assert summary["killed"] == 1
        assert summary["by_tenant"] == {"alice": 1}
        assert summary["parked"] == 0
